//! Relation-layer profiling counters.
//!
//! Same design as `coral_term::profile`: a thread-local `Cell` holding a
//! `Copy` counter block, compiled out without the `profile` feature, and
//! costing one thread-local load and a branch when compiled in but not
//! collecting.

/// Whether counters are compiled in (`profile` cargo feature).
pub const AVAILABLE: bool = cfg!(feature = "profile");

/// Relation-layer counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Lookups answered through an argument/pattern index.
    pub index_probes: u64,
    /// Lookups that fell back to a full filtered scan.
    pub full_scans: u64,
    /// Subsidiary-relation mark advances (new delta generations, §3.2).
    pub mark_advances: u64,
}

impl Counters {
    /// All-zero counters (usable in const-initialized thread-locals).
    pub const ZERO: Counters = Counters {
        index_probes: 0,
        full_scans: 0,
        mark_advances: 0,
    };
}

/// Fold a counter delta (e.g. one captured on a worker thread) into this
/// thread's counters, so work done on frozen snapshots by the parallel
/// evaluator is neither lost nor double-counted. No-op unless collection
/// is enabled on the calling thread.
pub fn add(d: Counters) {
    bump(|c| {
        c.index_probes += d.index_probes;
        c.full_scans += d.full_scans;
        c.mark_advances += d.mark_advances;
    });
}

#[cfg(feature = "profile")]
mod imp {
    use super::Counters;
    use std::cell::Cell;

    // Const-initialized, Drop-free cells: access is a direct TLS load
    // with no lazy-init branch, and the disabled path never copies the
    // counter block.
    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static COUNTERS: Cell<Counters> = const { Cell::new(Counters::ZERO) };
    }

    #[inline]
    pub(crate) fn bump(f: impl FnOnce(&mut Counters)) {
        if ENABLED.with(|e| e.get()) {
            COUNTERS.with(|c| {
                let mut v = c.get();
                f(&mut v);
                c.set(v);
            });
        }
    }

    pub fn set_enabled(on: bool) {
        ENABLED.with(|e| e.set(on));
    }

    pub fn enabled() -> bool {
        ENABLED.with(|e| e.get())
    }

    pub fn reset() {
        COUNTERS.with(|c| c.set(Counters::ZERO));
    }

    pub fn snapshot() -> Counters {
        COUNTERS.with(|c| c.get())
    }
}

#[cfg(feature = "profile")]
pub(crate) use imp::bump;
#[cfg(feature = "profile")]
pub use imp::{enabled, reset, set_enabled, snapshot};

#[cfg(not(feature = "profile"))]
mod imp_off {
    use super::Counters;

    #[inline(always)]
    pub(crate) fn bump(_f: impl FnOnce(&mut Counters)) {}

    pub fn set_enabled(_on: bool) {}

    pub fn enabled() -> bool {
        false
    }

    pub fn reset() {}

    pub fn snapshot() -> Counters {
        Counters::default()
    }
}

#[cfg(not(feature = "profile"))]
pub(crate) use imp_off::bump;
#[cfg(not(feature = "profile"))]
pub use imp_off::{enabled, reset, set_enabled, snapshot};
