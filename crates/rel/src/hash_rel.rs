//! In-memory hash relations with marks, indices and aggregate selections.
//!
//! This is the workhorse relation of the system, implementing three
//! paper mechanisms:
//!
//! * **Marks and subsidiary relations** (§3.2): "the ability to get marks
//!   into a relation, and distinguish between facts inserted after a mark
//!   was obtained and facts inserted before … The implementation of this
//!   extension involves creating subsidiary relations, one corresponding
//!   to each interval between marks, and transparently providing the
//!   union of the subsidiary relations corresponding to the desired range
//!   of marks." Every variant of semi-naive evaluation in `coral-core`
//!   reads deltas through [`HashRelation::scan_range`]. "A benefit of this
//!   organization is that it does not interfere with the indexing
//!   mechanisms … the indexing mechanisms are used on each subsidiary
//!   relation" — each subsidiary here carries its own hash buckets.
//!
//! * **Argument-form and pattern-form indices** (§3.3): multi-attribute
//!   hash indices, with terms containing variables hashed to the special
//!   `var` bucket so non-ground facts remain reachable; pattern-form
//!   indices retrieve "precisely those facts that match a specified
//!   pattern", e.g. the first argument matching `[X|[1,2,3]]`.
//!
//! * **Aggregate selections** (§5.5.2): insert-time groupwise `min`/
//!   `max`/`any` pruning. Inserting a costlier fact is refused; inserting
//!   a cheaper fact evicts the now-dominated group members. This is what
//!   makes the Figure 3 shortest-path program terminate on cyclic graphs.

use crate::error::{RelError, RelResult};
use crate::relation::{iter_from_vec, DupSemantics, IndexSpec, Relation, TupleIter};
use coral_term::bindenv::EnvSet;
use coral_term::term::VarId;
use coral_term::{match_args, unify, Term, Tuple};
use std::cell::RefCell;
use std::cmp::Ordering;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A position in the mark sequence: the boundary *before* subsidiary
/// relation `0.0`. `Mark(0)` precedes everything.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Mark(pub usize);

/// Kind of aggregate selection (§5.5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggSelKind {
    /// Keep only tuples whose target column is groupwise minimal.
    Min,
    /// Keep only tuples whose target column is groupwise maximal.
    Max,
    /// Keep one arbitrary witness per group (`any(P)` — the LDL-style
    /// choice of §5.5.2).
    Any,
}

/// An insert-time aggregate selection attached to a relation.
///
/// `@aggregate_selection p(X,Y,P,C) (X,Y) min(C)` becomes
/// `group_cols = [0,1]`, `kind = Min`, `target_col = 3`.
#[derive(Clone, Debug)]
pub struct AggregateSelection {
    /// Columns forming the group key.
    pub group_cols: Vec<usize>,
    /// The selection kind.
    pub kind: AggSelKind,
    /// The column minimized/maximized, or the `any` witness column.
    pub target_col: usize,
}

/// Tuple address: (subsidiary, position).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct Addr {
    sub: u32,
    pos: u32,
}

// ---------------------------------------------------------------------
// Fast hashing (FxHash-style multiply-rotate), per the perf guide: the
// default SipHash is needlessly slow for in-memory index keys.
// ---------------------------------------------------------------------

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Default)]
struct FxHasher(u64);

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }
    fn write_u8(&mut self, b: u8) {
        self.0 = (self.0.rotate_left(5) ^ b as u64).wrapping_mul(SEED);
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(SEED);
    }
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

pub(crate) fn term_key_hash(t: &Term) -> u64 {
    let mut h = FxHasher::default();
    t.hash(&mut h);
    h.finish()
}

/// The bucket component for terms containing variables — the paper's
/// special `var` hash value.
const VAR_COMPONENT: u64 = 0x76_61_72_5f_76_61_72_21; // "var_var!"

pub(crate) fn combine(components: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for &c in components {
        h.write_u64(c);
    }
    h.finish()
}

// ---------------------------------------------------------------------
// Index definitions and per-subsidiary index data
// ---------------------------------------------------------------------

enum IndexDef {
    Args(Vec<usize>),
    Pattern {
        pattern: Vec<Term>,
        key_vars: Vec<VarId>,
        nvars: u32,
    },
}

impl IndexDef {
    fn same_as(&self, other: &IndexDef) -> bool {
        match (self, other) {
            (IndexDef::Args(a), IndexDef::Args(b)) => a == b,
            (
                IndexDef::Pattern {
                    pattern: p1,
                    key_vars: k1,
                    ..
                },
                IndexDef::Pattern {
                    pattern: p2,
                    key_vars: k2,
                    ..
                },
            ) => p1 == p2 && k1 == k2,
            _ => false,
        }
    }
}

impl IndexDef {
    /// The key components for a stored tuple, or `None` if the tuple is
    /// unreachable through this index (pattern indices only).
    fn components_for_tuple(&self, tuple: &Tuple) -> Option<Vec<u64>> {
        match self {
            IndexDef::Args(cols) => Some(
                cols.iter()
                    .map(|&c| {
                        let t = &tuple.args()[c];
                        if t.is_ground() {
                            term_key_hash(t)
                        } else {
                            VAR_COMPONENT
                        }
                    })
                    .collect(),
            ),
            IndexDef::Pattern {
                pattern,
                key_vars,
                nvars,
            } => {
                // Unify the index pattern with the tuple; tuples that do
                // not unify cannot match any instance of the pattern and
                // are simply not indexed here.
                let mut envs = EnvSet::new();
                let ep = envs.push_frame(*nvars as usize);
                let et = envs.push_frame(tuple.nvars() as usize);
                for (p, t) in pattern.iter().zip(tuple.args()) {
                    if !unify(&mut envs, p, ep, t, et) {
                        return None;
                    }
                }
                Some(
                    key_vars
                        .iter()
                        .map(|kv| {
                            let resolved = envs.resolve(&Term::Var(*kv), ep);
                            if resolved.is_ground() {
                                term_key_hash(&resolved)
                            } else {
                                VAR_COMPONENT
                            }
                        })
                        .collect(),
                )
            }
        }
    }

    /// The ground key components for a *query* pattern, if this index is
    /// applicable (all indexed positions / key variables bound to ground
    /// terms by the query).
    fn components_for_query(&self, query: &[Term]) -> Option<Vec<u64>> {
        match self {
            IndexDef::Args(cols) => {
                let mut out = Vec::with_capacity(cols.len());
                for &c in cols {
                    let t = &query[c];
                    if t.is_ground() {
                        out.push(term_key_hash(t));
                    } else {
                        return None;
                    }
                }
                Some(out)
            }
            IndexDef::Pattern {
                pattern,
                key_vars,
                nvars,
            } => {
                let mut envs = EnvSet::new();
                let ep = envs.push_frame(*nvars as usize);
                let mut qvars = 0;
                for q in query {
                    qvars = qvars.max(q.var_bound());
                }
                let eq = envs.push_frame(qvars as usize);
                for (p, q) in pattern.iter().zip(query) {
                    if !unify(&mut envs, p, ep, q, eq) {
                        return None;
                    }
                }
                let mut out = Vec::with_capacity(key_vars.len());
                for kv in key_vars {
                    let resolved = envs.resolve(&Term::Var(*kv), ep);
                    if resolved.is_ground() {
                        out.push(term_key_hash(&resolved));
                    } else {
                        return None;
                    }
                }
                Some(out)
            }
        }
    }

    fn width(&self) -> usize {
        match self {
            IndexDef::Args(cols) => cols.len(),
            IndexDef::Pattern { key_vars, .. } => key_vars.len(),
        }
    }
}

#[derive(Default, Clone)]
struct IndexData {
    buckets: HashMap<u64, Vec<u32>>,
    /// Whether any stored key used the `var` component (enables the
    /// combination enumeration on lookup).
    has_var_keys: bool,
}

#[derive(Default, Clone)]
struct Subsidiary {
    tuples: Vec<Option<Tuple>>,
    live: usize,
    indexes: Vec<IndexData>,
}

struct AggGroup {
    best: Term,
    addrs: Vec<Addr>,
}

struct Inner {
    /// Subsidiaries are `Arc`-shared with [`RelSnapshot`]s: mutation goes
    /// through `Arc::make_mut`, so the open (refcount-1) subsidiary is
    /// updated in place while any subsidiary a live snapshot still holds
    /// is copied on write — snapshots are immutable and lock-free.
    subs: Vec<Arc<Subsidiary>>,
    defs: Vec<Arc<IndexDef>>,
    dup: DupSemantics,
    /// Exact-duplicate map (Set modes only). `Arc`-shared with snapshots
    /// for worker-side duplicate prefiltering; mutated via `make_mut`.
    seen: Arc<HashMap<Tuple, Addr>>,
    /// Addresses of stored non-ground tuples, for subsumption checks and
    /// conservative lookups.
    nonground: Vec<Addr>,
    aggsels: Vec<AggregateSelection>,
    agg_state: Vec<HashMap<Tuple, AggGroup>>,
    live: usize,
    /// Planner statistics, maintained incrementally by `insert` /
    /// `delete_addr` (see coral-stats).
    stats: coral_stats::RelStats,
}

/// The in-memory hash relation (§3.2).
pub struct HashRelation {
    arity: usize,
    inner: RefCell<Inner>,
}

impl HashRelation {
    /// An empty hash relation with CORAL's default subsumption-checking
    /// set semantics.
    pub fn new(arity: usize) -> HashRelation {
        HashRelation::with_semantics(arity, DupSemantics::SetSubsuming)
    }

    /// An empty hash relation with explicit duplicate semantics.
    pub fn with_semantics(arity: usize, dup: DupSemantics) -> HashRelation {
        HashRelation {
            arity,
            inner: RefCell::new(Inner {
                subs: vec![Arc::new(Subsidiary::default())],
                defs: Vec::new(),
                dup,
                seen: Arc::new(HashMap::new()),
                nonground: Vec::new(),
                aggsels: Vec::new(),
                agg_state: Vec::new(),
                live: 0,
                stats: coral_stats::RelStats::new(arity),
            }),
        }
    }

    /// Attach an aggregate selection. Must be called while the relation
    /// is empty (selections are insert-time filters).
    pub fn add_aggregate_selection(&self, sel: AggregateSelection) -> RelResult<()> {
        let mut inner = self.inner.borrow_mut();
        if inner.live != 0 {
            return Err(RelError::BadIndex(
                "aggregate selections must be declared before facts are inserted".into(),
            ));
        }
        for &c in sel.group_cols.iter().chain([&sel.target_col]) {
            if c >= self.arity {
                return Err(RelError::BadIndex(format!(
                    "aggregate selection column {c} out of range for arity {}",
                    self.arity
                )));
            }
        }
        inner.aggsels.push(sel);
        inner.agg_state.push(HashMap::new());
        Ok(())
    }

    /// Place a mark: facts inserted afterwards are distinguishable from
    /// facts inserted before (§3.2). Returns the boundary.
    pub fn mark(&self) -> Mark {
        let mut inner = self.inner.borrow_mut();
        // Avoid piling up empty subsidiaries.
        if inner.subs.last().map(|s| s.tuples.is_empty()) == Some(true) {
            return Mark(inner.subs.len() - 1);
        }
        crate::profile::bump(|c| c.mark_advances += 1);
        let ndefs = inner.defs.len();
        inner.subs.push(Arc::new(Subsidiary {
            tuples: Vec::new(),
            live: 0,
            indexes: (0..ndefs).map(|_| IndexData::default()).collect(),
        }));
        Mark(inner.subs.len() - 1)
    }

    /// The boundary after everything currently inserted.
    pub fn current_mark(&self) -> Mark {
        let inner = self.inner.borrow();
        let last = inner.subs.last().unwrap();
        if last.tuples.is_empty() {
            Mark(inner.subs.len() - 1)
        } else {
            Mark(inner.subs.len())
        }
    }

    /// Number of live tuples inserted in `[from, to)` (`to = None` means
    /// "to the end").
    pub fn len_range(&self, from: Mark, to: Option<Mark>) -> usize {
        let inner = self.inner.borrow();
        let end = to.map(|m| m.0).unwrap_or(inner.subs.len());
        inner.subs[from.0.min(inner.subs.len())..end.min(inner.subs.len())]
            .iter()
            .map(|s| s.live)
            .sum()
    }

    /// Scan the union of the subsidiaries in `[from, to)`.
    pub fn scan_range(&self, from: Mark, to: Option<Mark>) -> TupleIter {
        let inner = self.inner.borrow();
        let end = to.map(|m| m.0).unwrap_or(inner.subs.len());
        let mut out = Vec::new();
        for s in &inner.subs[from.0.min(inner.subs.len())..end.min(inner.subs.len())] {
            out.extend(s.tuples.iter().filter_map(|t| t.clone()));
        }
        iter_from_vec(out)
    }

    /// Scan the union of the subsidiaries in `[from, to)` into a
    /// columnar batch, in the same insertion order [`scan_range`] uses.
    ///
    /// [`scan_range`]: HashRelation::scan_range
    pub fn scan_range_columnar(&self, from: Mark, to: Option<Mark>) -> crate::ColumnarBatch {
        let inner = self.inner.borrow();
        let end = to.map(|m| m.0).unwrap_or(inner.subs.len());
        let rows = inner.subs[from.0.min(inner.subs.len())..end.min(inner.subs.len())]
            .iter()
            .flat_map(|s| s.tuples.iter().filter_map(|t| t.clone()));
        crate::ColumnarBatch::from_tuples(self.arity, rows)
    }

    /// Insert every row of a columnar batch, in row order, through the
    /// ordinary [`Relation::insert`] path — duplicate semantics,
    /// subsumption, aggregate selections, index maintenance and the
    /// thread-local tuple meter all apply exactly once per row, so batch
    /// inserts are indistinguishable from the equivalent tuple-at-a-time
    /// loop. Returns how many rows were actually inserted.
    pub fn insert_batch(&self, batch: &crate::ColumnarBatch) -> RelResult<u64> {
        let mut inserted = 0;
        for row in 0..batch.len() {
            if self.insert(batch.row_tuple(row))? {
                inserted += 1;
            }
        }
        Ok(inserted)
    }

    /// Indexed candidate lookup restricted to the subsidiaries in
    /// `[from, to)`.
    pub fn lookup_range(&self, pattern: &[Term], from: Mark, to: Option<Mark>) -> TupleIter {
        let inner = self.inner.borrow();
        let end = to
            .map(|m| m.0)
            .unwrap_or(inner.subs.len())
            .min(inner.subs.len());
        let start = from.0.min(end);
        iter_from_vec(lookup_slice(&inner.defs, &inner.subs, pattern, start, end))
    }

    fn check_arity(&self, t: &Tuple) -> RelResult<()> {
        if t.arity() != self.arity {
            return Err(RelError::Arity {
                expected: self.arity,
                got: t.arity(),
            });
        }
        Ok(())
    }

    /// Remove the tuple at `addr` from all bookkeeping (the slot becomes
    /// a tombstone; index entries are skipped lazily).
    fn delete_addr(inner: &mut Inner, addr: Addr) -> Option<Tuple> {
        let sub = Arc::make_mut(&mut inner.subs[addr.sub as usize]);
        let tuple = sub.tuples[addr.pos as usize].take()?;
        sub.live -= 1;
        inner.live -= 1;
        inner.stats.on_delete(tuple.args());
        crate::meter::add_deleted(1);
        Arc::make_mut(&mut inner.seen).remove(&tuple);
        if !tuple.is_ground() {
            if let Some(i) = inner.nonground.iter().position(|a| *a == addr) {
                inner.nonground.swap_remove(i);
            }
        }
        for (sel, state) in inner.aggsels.iter().zip(inner.agg_state.iter_mut()) {
            let key = tuple.project(&sel.group_cols);
            if let Some(group) = state.get_mut(&key) {
                if let Some(i) = group.addrs.iter().position(|a| *a == addr) {
                    group.addrs.swap_remove(i);
                }
                if group.addrs.is_empty() {
                    state.remove(&key);
                }
            }
        }
        Some(tuple)
    }

    /// Freeze the current contents into an immutable, `Sync`
    /// [`RelSnapshot`]: O(#subsidiaries) `Arc` clones, no tuple copying.
    /// Subsequent inserts/deletes/index retrofits on the relation leave
    /// the snapshot untouched (copy-on-write through `Arc::make_mut`).
    pub fn snapshot(&self) -> RelSnapshot {
        let inner = self.inner.borrow();
        RelSnapshot {
            arity: self.arity,
            subs: inner.subs.clone(),
            defs: inner.defs.clone(),
            seen: Arc::clone(&inner.seen),
            dup: inner.dup,
        }
    }

    /// The relation's duplicate semantics.
    pub fn dup_semantics(&self) -> DupSemantics {
        self.inner.borrow().dup
    }

    /// Whether any insert-time aggregate selection is attached.
    pub fn has_aggregate_selections(&self) -> bool {
        !self.inner.borrow().aggsels.is_empty()
    }

    /// The currently defined indices as respecifiable [`IndexSpec`]s
    /// (used to replicate indexing onto per-worker delta chunks).
    pub fn index_specs(&self) -> Vec<IndexSpec> {
        self.inner
            .borrow()
            .defs
            .iter()
            .map(|d| match &**d {
                IndexDef::Args(cols) => IndexSpec::Args(cols.clone()),
                IndexDef::Pattern {
                    pattern, key_vars, ..
                } => IndexSpec::Pattern {
                    pattern: pattern.clone(),
                    key_vars: key_vars.clone(),
                },
            })
            .collect()
    }
}

/// Indexed candidate lookup over a slice of subsidiaries — the one code
/// path shared by [`HashRelation`] (under its `RefCell` borrow) and
/// [`RelSnapshot`] (lock-free), so index selection, the var-bucket
/// enumeration and the `index_probes`/`full_scans` counters behave
/// identically on both. Counters land in the calling thread's cells:
/// exactly one probe or scan is counted per lookup, whether it runs on
/// the live relation or on a frozen snapshot in a worker.
fn lookup_slice(
    defs: &[Arc<IndexDef>],
    subs: &[Arc<Subsidiary>],
    pattern: &[Term],
    start: usize,
    end: usize,
) -> Vec<Tuple> {
    // Choose the widest applicable index.
    let mut best: Option<(usize, Vec<u64>)> = None;
    for (i, def) in defs.iter().enumerate() {
        if let Some(components) = def.components_for_query(pattern) {
            let better = match &best {
                None => true,
                Some((b, _)) => def.width() > defs[*b].width(),
            };
            if better {
                best = Some((i, components));
            }
        }
    }
    crate::profile::bump(|c| {
        if best.is_some() {
            c.index_probes += 1;
        } else {
            c.full_scans += 1;
        }
    });
    let mut out = Vec::new();
    match best {
        Some((idx, components)) => {
            for s in &subs[start..end] {
                let data = &s.indexes[idx];
                // Exact-key bucket.
                if let Some(poss) = data.buckets.get(&combine(&components)) {
                    for &p in poss {
                        if let Some(t) = &s.tuples[p as usize] {
                            out.push(t.clone());
                        }
                    }
                }
                // Var-bucket combinations, only if some stored key
                // contains the var component.
                if data.has_var_keys {
                    let k = components.len();
                    let mut combo = components.clone();
                    for mask in 1u32..(1 << k) {
                        for (j, c) in combo.iter_mut().enumerate() {
                            *c = if mask & (1 << j) != 0 {
                                VAR_COMPONENT
                            } else {
                                components[j]
                            };
                        }
                        if let Some(poss) = data.buckets.get(&combine(&combo)) {
                            for &p in poss {
                                if let Some(t) = &s.tuples[p as usize] {
                                    out.push(t.clone());
                                }
                            }
                        }
                    }
                }
            }
        }
        None => {
            // No applicable index: filtered scan, keeping non-ground
            // tuples as candidates (they may unify with anything).
            for s in &subs[start..end] {
                for t in s.tuples.iter().flatten() {
                    if !t.is_ground() || match_args(pattern, t.args()).is_some() {
                        out.push(t.clone());
                    }
                }
            }
        }
    }
    out
}

/// An immutable, lock-free view of a [`HashRelation`] at one instant:
/// the frozen subsidiary list (with per-subsidiary index data), the
/// index definitions in effect, and the exact-duplicate map. `Send` and
/// `Sync` — the parallel semi-naive evaluator hands clones to worker
/// threads, which probe it without any locking while the coordinator's
/// relation keeps evolving behind its `RefCell`.
#[derive(Clone)]
pub struct RelSnapshot {
    arity: usize,
    subs: Vec<Arc<Subsidiary>>,
    defs: Vec<Arc<IndexDef>>,
    seen: Arc<HashMap<Tuple, Addr>>,
    dup: DupSemantics,
}

impl RelSnapshot {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The boundary after everything in the snapshot (same convention as
    /// [`HashRelation::current_mark`]).
    pub fn end_mark(&self) -> Mark {
        let last = self.subs.last().unwrap();
        if last.tuples.is_empty() {
            Mark(self.subs.len() - 1)
        } else {
            Mark(self.subs.len())
        }
    }

    fn clamp(&self, from: Mark, to: Option<Mark>) -> (usize, usize) {
        let end = to
            .map(|m| m.0)
            .unwrap_or(self.subs.len())
            .min(self.subs.len());
        (from.0.min(end), end)
    }

    /// Live tuples inserted in `[from, to)`.
    pub fn len_range(&self, from: Mark, to: Option<Mark>) -> usize {
        let (start, end) = self.clamp(from, to);
        self.subs[start..end].iter().map(|s| s.live).sum()
    }

    /// Eagerly scan the union of the subsidiaries in `[from, to)`, in
    /// insertion order (the order the serial delta scan would produce).
    pub fn scan_range(&self, from: Mark, to: Option<Mark>) -> Vec<Tuple> {
        let (start, end) = self.clamp(from, to);
        let mut out = Vec::new();
        for s in &self.subs[start..end] {
            out.extend(s.tuples.iter().filter_map(|t| t.clone()));
        }
        out
    }

    /// Columnar view of the rows in `[from, to)`, in the same insertion
    /// order [`RelSnapshot::scan_range`] uses. The parallel fixpoint
    /// coordinator uses this to hand workers flat chunks instead of
    /// `Vec<Tuple>`.
    pub fn scan_range_columnar(&self, from: Mark, to: Option<Mark>) -> crate::ColumnarBatch {
        let (start, end) = self.clamp(from, to);
        let rows = self.subs[start..end]
            .iter()
            .flat_map(|s| s.tuples.iter().filter_map(|t| t.clone()));
        crate::ColumnarBatch::from_tuples(self.arity, rows)
    }

    /// Indexed candidate lookup restricted to `[from, to)`; counts one
    /// `index_probes` or `full_scans` on the calling thread, exactly as
    /// the live relation's lookup does.
    pub fn lookup_range(&self, pattern: &[Term], from: Mark, to: Option<Mark>) -> Vec<Tuple> {
        let (start, end) = self.clamp(from, to);
        lookup_slice(&self.defs, &self.subs, pattern, start, end)
    }

    /// Indexed candidate lookup over the whole snapshot.
    pub fn lookup(&self, pattern: &[Term]) -> Vec<Tuple> {
        self.lookup_range(pattern, Mark(0), None)
    }

    /// Whether an exact variant of `tuple` was already stored when the
    /// snapshot was taken (always `false` for multiset relations, whose
    /// duplicate map is not maintained). Workers use this to prefilter
    /// rederivations of old facts before the serial merge.
    pub fn contains_exact(&self, tuple: &Tuple) -> bool {
        self.dup != DupSemantics::Multiset && self.seen.contains_key(tuple)
    }

    /// The snapshotted relation's duplicate semantics.
    pub fn dup_semantics(&self) -> DupSemantics {
        self.dup
    }
}

// The whole point of the snapshot: workers on other threads may probe it
// concurrently. (Tuples and terms are immutable and Arc-backed.)
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<RelSnapshot>()
};

impl Relation for HashRelation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        self.inner.borrow().live
    }

    fn insert(&self, tuple: Tuple) -> RelResult<bool> {
        self.check_arity(&tuple)?;
        let mut inner = self.inner.borrow_mut();
        // Duplicate / subsumption checks (§4.2).
        match inner.dup {
            DupSemantics::Multiset => {}
            DupSemantics::Set => {
                if inner.seen.contains_key(&tuple) {
                    return Ok(false);
                }
            }
            DupSemantics::SetSubsuming => {
                if inner.seen.contains_key(&tuple) {
                    return Ok(false);
                }
                for addr in &inner.nonground {
                    if let Some(existing) = &inner.subs[addr.sub as usize].tuples[addr.pos as usize]
                    {
                        if existing.subsumes(&tuple) {
                            return Ok(false);
                        }
                    }
                }
            }
        }
        // Aggregate selections: all must admit the tuple; improvements
        // evict dominated group members.
        let mut evict: Vec<Addr> = Vec::new();
        for (i, sel) in inner.aggsels.iter().enumerate() {
            let key = tuple.project(&sel.group_cols);
            let newval = &tuple.args()[sel.target_col];
            match inner.agg_state[i].get(&key) {
                None => {}
                Some(group) => match sel.kind {
                    AggSelKind::Any => return Ok(false),
                    AggSelKind::Min => match newval.order_cmp(&group.best) {
                        Ordering::Greater => return Ok(false),
                        Ordering::Equal => {}
                        Ordering::Less => evict.extend(group.addrs.iter().copied()),
                    },
                    AggSelKind::Max => match newval.order_cmp(&group.best) {
                        Ordering::Less => return Ok(false),
                        Ordering::Equal => {}
                        Ordering::Greater => evict.extend(group.addrs.iter().copied()),
                    },
                },
            }
        }
        evict.sort_by_key(|a| (a.sub, a.pos));
        evict.dedup();
        for addr in evict {
            Self::delete_addr(&mut inner, addr);
        }
        // Append to the open subsidiary. `make_mut` mutates in place when
        // the subsidiary is unshared (the common case) and copies on
        // write when a live snapshot still holds it.
        tuple.intern_ground();
        let inner = &mut *inner;
        let sub_idx = inner.subs.len() - 1;
        let pos = inner.subs[sub_idx].tuples.len() as u32;
        let addr = Addr {
            sub: sub_idx as u32,
            pos,
        };
        // Index maintenance on the open subsidiary.
        {
            let defs = &inner.defs;
            let open = Arc::make_mut(&mut inner.subs[sub_idx]);
            for (i, def) in defs.iter().enumerate() {
                if let Some(components) = def.components_for_tuple(&tuple) {
                    let has_var = components.contains(&VAR_COMPONENT);
                    let data = &mut open.indexes[i];
                    data.buckets
                        .entry(combine(&components))
                        .or_default()
                        .push(pos);
                    data.has_var_keys |= has_var;
                }
            }
        }
        if inner.dup != DupSemantics::Multiset {
            Arc::make_mut(&mut inner.seen).insert(tuple.clone(), addr);
        }
        if !tuple.is_ground() {
            inner.nonground.push(addr);
        }
        for (sel, state) in inner.aggsels.iter().zip(inner.agg_state.iter_mut()) {
            let key = tuple.project(&sel.group_cols);
            let newval = tuple.args()[sel.target_col].clone();
            state
                .entry(key)
                .and_modify(|g| {
                    g.addrs.push(addr);
                    g.best = newval.clone();
                })
                .or_insert_with(|| AggGroup {
                    best: newval.clone(),
                    addrs: vec![addr],
                });
        }
        inner.stats.on_insert(tuple.args());
        let open = Arc::make_mut(&mut inner.subs[sub_idx]);
        open.tuples.push(Some(tuple));
        open.live += 1;
        inner.live += 1;
        crate::meter::add_tuples(1);
        Ok(true)
    }

    fn delete(&self, tuple: &Tuple) -> RelResult<bool> {
        self.check_arity(tuple)?;
        let mut inner = self.inner.borrow_mut();
        let addr = if inner.dup != DupSemantics::Multiset {
            inner.seen.get(tuple).copied()
        } else {
            // Multiset: linear search for one copy.
            let mut found = None;
            'outer: for (si, s) in inner.subs.iter().enumerate() {
                for (pi, t) in s.tuples.iter().enumerate() {
                    if t.as_ref() == Some(tuple) {
                        found = Some(Addr {
                            sub: si as u32,
                            pos: pi as u32,
                        });
                        break 'outer;
                    }
                }
            }
            found
        };
        match addr {
            Some(addr) => Ok(Self::delete_addr(&mut inner, addr).is_some()),
            None => Ok(false),
        }
    }

    fn scan(&self) -> TupleIter {
        self.scan_range(Mark(0), None)
    }

    fn lookup(&self, pattern: &[Term]) -> TupleIter {
        let inner = self.inner.borrow();
        let end = inner.subs.len();
        iter_from_vec(lookup_slice(&inner.defs, &inner.subs, pattern, 0, end))
    }

    fn make_index(&self, spec: IndexSpec) -> RelResult<()> {
        let mut inner = self.inner.borrow_mut();
        let def = match spec {
            IndexSpec::Args(cols) => {
                if cols.is_empty() {
                    return Err(RelError::BadIndex("empty column list".into()));
                }
                if let Some(&c) = cols.iter().find(|&&c| c >= self.arity) {
                    return Err(RelError::BadIndex(format!(
                        "column {c} out of range for arity {}",
                        self.arity
                    )));
                }
                IndexDef::Args(cols)
            }
            IndexSpec::Pattern { pattern, key_vars } => {
                if pattern.len() != self.arity {
                    return Err(RelError::BadIndex(format!(
                        "pattern has {} terms, relation arity is {}",
                        pattern.len(),
                        self.arity
                    )));
                }
                if key_vars.is_empty() {
                    return Err(RelError::BadIndex("empty key variable list".into()));
                }
                let mut nvars = 0;
                for p in &pattern {
                    nvars = nvars.max(p.var_bound());
                }
                for kv in &key_vars {
                    if kv.0 >= nvars {
                        return Err(RelError::BadIndex(format!(
                            "key variable V{} does not occur in the pattern",
                            kv.0
                        )));
                    }
                }
                IndexDef::Pattern {
                    pattern,
                    key_vars,
                    nvars,
                }
            }
        };
        // Creating the same index twice is a no-op (the optimizer may
        // request it once per module call).
        if inner.defs.iter().any(|d| d.same_as(&def)) {
            return Ok(());
        }
        // Retrofit the index onto existing subsidiaries ("indices can
        // also be created at a later time", §2). Copy-on-write: a
        // subsidiary still held by a live snapshot is cloned rather than
        // mutated, so the snapshot keeps seeing exactly the index set it
        // was frozen with (its `defs` list matches its per-subsidiary
        // index data by position).
        for s in &mut inner.subs {
            let mut data = IndexData::default();
            for (pos, t) in s.tuples.iter().enumerate() {
                if let Some(t) = t {
                    if let Some(components) = def.components_for_tuple(t) {
                        data.has_var_keys |= components.contains(&VAR_COMPONENT);
                        data.buckets
                            .entry(combine(&components))
                            .or_default()
                            .push(pos as u32);
                    }
                }
            }
            Arc::make_mut(s).indexes.push(data);
        }
        inner.defs.push(Arc::new(def));
        Ok(())
    }

    fn describe(&self) -> String {
        let inner = self.inner.borrow();
        format!(
            "hash relation, arity {}, {} tuples, {} subsidiaries, {} indices, {:?}",
            self.arity,
            inner.live,
            inner.subs.len(),
            inner.defs.len(),
            inner.dup
        )
    }

    fn stats(&self) -> Option<coral_stats::RelStats> {
        Some(self.inner.borrow().stats.clone())
    }

    fn analyze(&self) -> RelResult<()> {
        let mut inner = self.inner.borrow_mut();
        let rows: Vec<Tuple> = inner
            .subs
            .iter()
            .flat_map(|s| s.tuples.iter().filter_map(|t| t.clone()))
            .collect();
        inner.stats = coral_stats::RelStats::analyze(self.arity, rows.iter().map(|t| t.args()));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Term::int(a), Term::int(b)])
    }

    #[test]
    fn insert_dedup_and_scan() {
        let r = HashRelation::new(2);
        assert!(r.insert(t2(1, 2)).unwrap());
        assert!(r.insert(t2(3, 4)).unwrap());
        assert!(!r.insert(t2(1, 2)).unwrap());
        assert_eq!(r.len(), 2);
        let mut all: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        all.sort_by(|a, b| a.args()[0].order_cmp(&b.args()[0]));
        assert_eq!(all, vec![t2(1, 2), t2(3, 4)]);
    }

    #[test]
    fn marks_separate_generations() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        let m1 = r.mark();
        r.insert(t2(2, 2)).unwrap();
        r.insert(t2(3, 3)).unwrap();
        let m2 = r.mark();
        r.insert(t2(4, 4)).unwrap();

        let old: Vec<Tuple> = r
            .scan_range(Mark(0), Some(m1))
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(old, vec![t2(1, 1)]);
        let delta: Vec<Tuple> = r.scan_range(m1, Some(m2)).map(|x| x.unwrap()).collect();
        assert_eq!(delta, vec![t2(2, 2), t2(3, 3)]);
        let newest: Vec<Tuple> = r.scan_range(m2, None).map(|x| x.unwrap()).collect();
        assert_eq!(newest, vec![t2(4, 4)]);
        assert_eq!(r.len_range(m1, Some(m2)), 2);
        assert_eq!(r.len_range(Mark(0), None), 4);
    }

    #[test]
    fn duplicate_check_spans_all_subsidiaries() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        r.mark();
        assert!(!r.insert(t2(1, 1)).unwrap(), "dup check crosses marks");
    }

    #[test]
    fn repeated_marks_do_not_pile_up() {
        let r = HashRelation::new(2);
        let a = r.mark();
        let b = r.mark();
        assert_eq!(a, b);
        r.insert(t2(1, 1)).unwrap();
        let c = r.mark();
        assert!(c > b);
    }

    #[test]
    fn arg_index_lookup() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        for i in 0..100 {
            r.insert(t2(i % 10, i)).unwrap();
        }
        let hits: Vec<Tuple> = r
            .lookup(&[Term::int(3), Term::var(0)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(hits.len(), 10);
        assert!(hits.iter().all(|t| t.args()[0] == Term::int(3)));
    }

    #[test]
    fn index_added_later_covers_existing_tuples() {
        let r = HashRelation::new(2);
        for i in 0..50 {
            r.insert(t2(i % 5, i)).unwrap();
        }
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        let hits = r.lookup(&[Term::int(2), Term::var(0)]).count();
        assert_eq!(hits, 10);
    }

    #[test]
    fn index_works_across_marks() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(t2(1, 10)).unwrap();
        let m = r.mark();
        r.insert(t2(1, 11)).unwrap();
        r.insert(t2(2, 20)).unwrap();
        let all = r.lookup(&[Term::int(1), Term::var(0)]).count();
        assert_eq!(all, 2);
        let recent: Vec<Tuple> = r
            .lookup_range(&[Term::int(1), Term::var(0)], m, None)
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(recent, vec![t2(1, 11)]);
    }

    #[test]
    fn var_bucket_keeps_nonground_reachable() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(Tuple::new(vec![Term::var(0), Term::int(9)]))
            .unwrap();
        r.insert(t2(5, 5)).unwrap();
        // Query bound on column 0 must still surface the var fact.
        let hits = r.lookup(&[Term::int(5), Term::var(0)]).count();
        assert_eq!(hits, 2);
        let hits = r.lookup(&[Term::int(777), Term::var(0)]).count();
        assert_eq!(hits, 1, "only the var fact");
    }

    #[test]
    fn multi_column_index() {
        let r = HashRelation::new(3);
        r.make_index(IndexSpec::Args(vec![0, 2])).unwrap();
        for i in 0..60i64 {
            r.insert(Tuple::new(vec![
                Term::int(i % 3),
                Term::int(i),
                Term::int(i % 4),
            ]))
            .unwrap();
        }
        let hits: Vec<Tuple> = r
            .lookup(&[Term::int(1), Term::var(0), Term::int(2)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(hits.len(), 5);
        assert!(hits
            .iter()
            .all(|t| t.args()[0] == Term::int(1) && t.args()[2] == Term::int(2)));
    }

    #[test]
    fn pattern_index_on_subterm() {
        // emp(Name, addr(Street, City)) indexed on (Name, City) — §5.5.1.
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Pattern {
            pattern: vec![
                Term::var(0),
                Term::apps("addr", vec![Term::var(1), Term::var(2)]),
            ],
            key_vars: vec![VarId(0), VarId(2)],
        })
        .unwrap();
        let emp = |n: &str, s: &str, c: &str| {
            Tuple::new(vec![
                Term::str(n),
                Term::apps("addr", vec![Term::str(s), Term::str(c)]),
            ])
        };
        r.insert(emp("john", "main st", "madison")).unwrap();
        r.insert(emp("john", "oak ave", "chicago")).unwrap();
        r.insert(emp("mary", "elm dr", "madison")).unwrap();
        // "employees named john who stay in madison, without knowing
        // their street".
        let q = vec![
            Term::str("john"),
            Term::apps("addr", vec![Term::var(0), Term::str("madison")]),
        ];
        let hits: Vec<Tuple> = r.lookup(&q).map(|x| x.unwrap()).collect();
        assert_eq!(hits, vec![emp("john", "main st", "madison")]);
    }

    #[test]
    fn pattern_index_excludes_non_unifying_tuples() {
        let r = HashRelation::new(1);
        r.make_index(IndexSpec::Pattern {
            pattern: vec![Term::cons(Term::var(0), Term::var(1))],
            key_vars: vec![VarId(0)],
        })
        .unwrap();
        r.insert(Tuple::new(vec![Term::list(vec![
            Term::int(5),
            Term::int(1),
        ])]))
        .unwrap();
        r.insert(Tuple::new(vec![Term::str("not-a-list")])).unwrap();
        let q = vec![Term::cons(Term::int(5), Term::var(0))];
        let hits = r.lookup(&q).count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn subsumption_semantics() {
        let r = HashRelation::new(2);
        r.insert(Tuple::new(vec![Term::var(0), Term::int(1)]))
            .unwrap();
        assert!(!r.insert(t2(9, 1)).unwrap(), "subsumed by p(X, 1)");
        assert!(r.insert(t2(9, 2)).unwrap());
        // Plain Set semantics admits the instance.
        let r2 = HashRelation::with_semantics(2, DupSemantics::Set);
        r2.insert(Tuple::new(vec![Term::var(0), Term::int(1)]))
            .unwrap();
        assert!(r2.insert(t2(9, 1)).unwrap());
    }

    #[test]
    fn multiset_semantics_keeps_duplicates() {
        let r = HashRelation::with_semantics(2, DupSemantics::Multiset);
        assert!(r.insert(t2(1, 1)).unwrap());
        assert!(r.insert(t2(1, 1)).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.delete(&t2(1, 1)).unwrap());
        assert_eq!(r.len(), 1);
        assert!(r.delete(&t2(1, 1)).unwrap());
        assert!(!r.delete(&t2(1, 1)).unwrap());
    }

    #[test]
    fn aggregate_selection_min() {
        // path(X, Y, P, C) with (X, Y) min(C) — Figure 3's selection.
        let r = HashRelation::new(4);
        r.add_aggregate_selection(AggregateSelection {
            group_cols: vec![0, 1],
            kind: AggSelKind::Min,
            target_col: 3,
        })
        .unwrap();
        let path = |x: i64, y: i64, p: &str, c: i64| {
            Tuple::new(vec![Term::int(x), Term::int(y), Term::str(p), Term::int(c)])
        };
        assert!(r.insert(path(1, 2, "via-a", 10)).unwrap());
        // Costlier path discarded.
        assert!(!r.insert(path(1, 2, "via-b", 15)).unwrap());
        assert_eq!(r.len(), 1);
        // Cheaper path evicts the old one.
        assert!(r.insert(path(1, 2, "via-c", 5)).unwrap());
        assert_eq!(r.len(), 1);
        let only: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        assert_eq!(only, vec![path(1, 2, "via-c", 5)]);
        // Equal cost is kept (a tie).
        assert!(r.insert(path(1, 2, "via-d", 5)).unwrap());
        assert_eq!(r.len(), 2);
        // Different group unaffected.
        assert!(r.insert(path(1, 3, "via-e", 100)).unwrap());
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn aggregate_selection_max() {
        let r = HashRelation::new(2);
        r.add_aggregate_selection(AggregateSelection {
            group_cols: vec![0],
            kind: AggSelKind::Max,
            target_col: 1,
        })
        .unwrap();
        assert!(r.insert(t2(1, 5)).unwrap());
        assert!(!r.insert(t2(1, 3)).unwrap());
        assert!(r.insert(t2(1, 9)).unwrap());
        let only: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        assert_eq!(only, vec![t2(1, 9)]);
    }

    #[test]
    fn aggregate_selection_any_keeps_one_witness() {
        // @aggregate_selection path(X,Y,P,C)(X,Y,C) any(P): one witness
        // path per (X, Y, C).
        let r = HashRelation::new(4);
        r.add_aggregate_selection(AggregateSelection {
            group_cols: vec![0, 1, 3],
            kind: AggSelKind::Any,
            target_col: 2,
        })
        .unwrap();
        let path = |x: i64, y: i64, p: &str, c: i64| {
            Tuple::new(vec![Term::int(x), Term::int(y), Term::str(p), Term::int(c)])
        };
        assert!(r.insert(path(1, 2, "p1", 5)).unwrap());
        assert!(!r.insert(path(1, 2, "p2", 5)).unwrap());
        assert!(r.insert(path(1, 2, "p3", 6)).unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn min_and_any_compose_like_figure_3() {
        // Figure 3 uses both: min(C) over (X,Y) and any(P) over (X,Y,C).
        let r = HashRelation::new(4);
        r.add_aggregate_selection(AggregateSelection {
            group_cols: vec![0, 1],
            kind: AggSelKind::Min,
            target_col: 3,
        })
        .unwrap();
        r.add_aggregate_selection(AggregateSelection {
            group_cols: vec![0, 1, 3],
            kind: AggSelKind::Any,
            target_col: 2,
        })
        .unwrap();
        let path = |p: &str, c: i64| {
            Tuple::new(vec![Term::int(1), Term::int(2), Term::str(p), Term::int(c)])
        };
        assert!(r.insert(path("a", 10)).unwrap());
        assert!(!r.insert(path("b", 10)).unwrap(), "any(P) rejects tie");
        assert!(r.insert(path("c", 4)).unwrap(), "improvement accepted");
        assert_eq!(r.len(), 1);
        let only: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        assert_eq!(only, vec![path("c", 4)]);
    }

    #[test]
    fn aggsel_after_facts_is_rejected() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        assert!(r
            .add_aggregate_selection(AggregateSelection {
                group_cols: vec![0],
                kind: AggSelKind::Min,
                target_col: 1,
            })
            .is_err());
    }

    #[test]
    fn delete_cleans_seen_map() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        assert!(r.delete(&t2(1, 1)).unwrap());
        assert!(r.insert(t2(1, 1)).unwrap(), "reinsert after delete");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_fires_stats_and_meter_symmetrically() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        r.insert(t2(2, 2)).unwrap();
        assert_eq!(r.stats().unwrap().cardinality(), 2);
        let del = crate::meter::tuples_deleted();
        assert!(r.delete(&t2(1, 1)).unwrap());
        assert_eq!(
            r.stats().unwrap().cardinality(),
            1,
            "stats on_delete mirrors on_insert"
        );
        assert_eq!(crate::meter::tuples_deleted() - del, 1);
        // A miss neither charges the meter nor moves stats.
        assert!(!r.delete(&t2(7, 7)).unwrap());
        assert_eq!(r.stats().unwrap().cardinality(), 1);
        assert_eq!(crate::meter::tuples_deleted() - del, 1);
    }

    #[test]
    fn deleted_tuples_invisible_to_index_lookup() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(t2(1, 1)).unwrap();
        r.insert(t2(1, 2)).unwrap();
        r.delete(&t2(1, 1)).unwrap();
        let hits: Vec<Tuple> = r
            .lookup(&[Term::int(1), Term::var(0)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(hits, vec![t2(1, 2)]);
    }

    #[test]
    fn snapshot_frozen_against_inserts_deletes_and_retrofit() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(t2(1, 10)).unwrap();
        r.insert(t2(2, 20)).unwrap();
        let m = r.mark();
        r.insert(t2(1, 11)).unwrap();
        let snap = r.snapshot();
        // Mutate the live relation in every way after the freeze.
        r.insert(t2(1, 12)).unwrap();
        r.delete(&t2(1, 10)).unwrap();
        r.make_index(IndexSpec::Args(vec![1])).unwrap();
        // The snapshot still sees exactly the freeze-time contents.
        assert_eq!(snap.len_range(Mark(0), None), 3);
        let hits = snap.lookup(&[Term::int(1), Term::var(0)]);
        assert_eq!(hits.len(), 2, "snapshot: (1,10) and (1,11), not (1,12)");
        assert!(hits.contains(&t2(1, 10)), "deleted later, frozen here");
        // Ranged reads respect marks.
        assert_eq!(snap.scan_range(m, None), vec![t2(1, 11)]);
        assert_eq!(
            snap.lookup_range(&[Term::int(1), Term::var(0)], m, None),
            vec![t2(1, 11)]
        );
        // The live relation reflects all mutations (and the retrofitted
        // index covers pre-snapshot tuples).
        assert_eq!(r.len(), 3);
        let live: Vec<Tuple> = r
            .lookup(&[Term::var(0), Term::int(11)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(live, vec![t2(1, 11)]);
    }

    #[test]
    fn snapshot_contains_exact_prefilters_old_facts() {
        let r = HashRelation::new(2);
        r.insert(t2(1, 1)).unwrap();
        let snap = r.snapshot();
        assert!(snap.contains_exact(&t2(1, 1)));
        assert!(!snap.contains_exact(&t2(2, 2)));
        r.insert(t2(2, 2)).unwrap();
        assert!(!snap.contains_exact(&t2(2, 2)), "frozen duplicate map");
        // Multiset relations never prefilter.
        let m = HashRelation::with_semantics(2, DupSemantics::Multiset);
        m.insert(t2(1, 1)).unwrap();
        assert!(!m.snapshot().contains_exact(&t2(1, 1)));
    }

    #[cfg(feature = "profile")]
    #[test]
    fn snapshot_lookup_counts_one_probe() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(t2(1, 10)).unwrap();
        let snap = r.snapshot();
        crate::profile::set_enabled(true);
        crate::profile::reset();
        snap.lookup(&[Term::int(1), Term::var(0)]);
        let c = crate::profile::snapshot();
        assert_eq!((c.index_probes, c.full_scans), (1, 0));
        snap.lookup(&[Term::var(0), Term::var(1)]);
        let c = crate::profile::snapshot();
        assert_eq!((c.index_probes, c.full_scans), (1, 1));
        // Folding a worker delta adds on top.
        crate::profile::add(crate::profile::Counters {
            index_probes: 5,
            full_scans: 2,
            mark_advances: 0,
        });
        let c = crate::profile::snapshot();
        assert_eq!((c.index_probes, c.full_scans), (6, 3));
        crate::profile::set_enabled(false);
        crate::profile::reset();
    }

    #[test]
    fn snapshot_index_specs_round_trip() {
        let r = HashRelation::new(2);
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.make_index(IndexSpec::Pattern {
            pattern: vec![Term::var(0), Term::var(1)],
            key_vars: vec![VarId(1)],
        })
        .unwrap();
        let specs = r.index_specs();
        assert_eq!(specs.len(), 2);
        // Respecifying them on a fresh relation is accepted and useful.
        let chunk = HashRelation::with_semantics(2, DupSemantics::Multiset);
        for spec in specs {
            chunk.make_index(spec).unwrap();
        }
        chunk.insert(t2(3, 4)).unwrap();
        assert_eq!(chunk.lookup(&[Term::int(3), Term::var(0)]).count(), 1);
    }

    #[test]
    fn bad_index_specs_rejected() {
        let r = HashRelation::new(2);
        assert!(r.make_index(IndexSpec::Args(vec![])).is_err());
        assert!(r.make_index(IndexSpec::Args(vec![5])).is_err());
        assert!(r
            .make_index(IndexSpec::Pattern {
                pattern: vec![Term::var(0)],
                key_vars: vec![VarId(0)],
            })
            .is_err());
        assert!(r
            .make_index(IndexSpec::Pattern {
                pattern: vec![Term::var(0), Term::var(1)],
                key_vars: vec![VarId(7)],
            })
            .is_err());
    }
}
