//! Per-tuple derivation counts for counting-based incremental
//! maintenance.
//!
//! A maintained non-recursive stratum keeps, for every derived tuple,
//! the number of distinct rule derivations producing it. Base deltas
//! adjust counts instead of re-running the stratum; a tuple is present
//! iff its count is positive, so the interesting events are the
//! *presence transitions* `0 → n` (the tuple appears) and `n → 0` (it
//! disappears). Counts are unsigned and deliberately saturate at zero:
//! a decrement below zero means the store no longer agrees with the
//! data (a lost derivation, a crash mid-propagation) and is reported as
//! [`CountChange::Underflow`] so the caller can mark the maintained
//! state stale and fall back to recomputation — never answer from a
//! silently wrong relation.

use crate::encoding::{decode_tuple_wire, encode_tuple_wire};
use coral_term::Tuple;
use std::collections::HashMap;

/// What a count adjustment did to the tuple's presence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CountChange {
    /// Count went `0 → positive`: the tuple just became derivable.
    Appeared,
    /// Count went `positive → 0`: the tuple lost its last derivation.
    Disappeared,
    /// Count moved (or stayed) strictly within the positive range, or
    /// an adjustment of zero.
    Unchanged,
    /// A decrement exceeded the stored count. The count saturates at
    /// zero and the store must be considered stale.
    Underflow,
}

/// Derivation counts for one maintained predicate.
#[derive(Clone, Default, Debug)]
pub struct CountStore {
    counts: HashMap<Tuple, u64>,
}

impl CountStore {
    /// An empty store.
    pub fn new() -> CountStore {
        CountStore::default()
    }

    /// The derivation count for `t` (zero when absent).
    pub fn get(&self, t: &Tuple) -> u64 {
        self.counts.get(t).copied().unwrap_or(0)
    }

    /// Set the count outright (initialization from a recount pass).
    /// A zero count removes the entry.
    pub fn set(&mut self, t: Tuple, n: u64) {
        if n == 0 {
            self.counts.remove(&t);
        } else {
            self.counts.insert(t, n);
        }
    }

    /// Adjust the count for `t` by `delta` derivations and report the
    /// presence transition. Entries at zero are removed, keeping
    /// [`CountStore::len`] equal to the number of present tuples.
    pub fn adjust(&mut self, t: &Tuple, delta: i64) -> CountChange {
        if delta == 0 {
            return CountChange::Unchanged;
        }
        let old = self.get(t);
        if delta > 0 {
            self.counts.insert(t.clone(), old + delta as u64);
            return if old == 0 {
                CountChange::Appeared
            } else {
                CountChange::Unchanged
            };
        }
        let dec = delta.unsigned_abs();
        if dec > old {
            // Saturate; the store is now inconsistent with the data.
            self.counts.remove(t);
            return CountChange::Underflow;
        }
        let new = old - dec;
        if new == 0 {
            self.counts.remove(t);
            CountChange::Disappeared
        } else {
            self.counts.insert(t.clone(), new);
            CountChange::Unchanged
        }
    }

    /// Number of tuples with a positive count.
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// True iff no tuple has a positive count.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterate `(tuple, count)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, u64)> {
        self.counts.iter().map(|(t, n)| (t, *n))
    }

    /// Serialize for the storage layer, or `None` if any tuple contains
    /// a term the wire encoding cannot carry (ADT values). Layout:
    /// `u32 entries ‖ (u32 len ‖ wire tuple ‖ u64 count)*`, big-endian.
    pub fn encode(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.counts.len() as u32).to_be_bytes());
        // Deterministic order so equal stores encode identically.
        let mut entries: Vec<(Vec<u8>, u64)> = Vec::with_capacity(self.counts.len());
        for (t, n) in &self.counts {
            entries.push((encode_tuple_wire(t).ok()?, *n));
        }
        entries.sort();
        for (bytes, n) in entries {
            out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
            out.extend_from_slice(&bytes);
            out.extend_from_slice(&n.to_be_bytes());
        }
        Some(out)
    }

    /// Decode a store serialized by [`CountStore::encode`]. `None` on
    /// any structural damage (torn write, truncation, bad tag) — the
    /// caller treats the persisted state as absent and rebuilds.
    pub fn decode(bytes: &[u8]) -> Option<CountStore> {
        let entries = u32::from_be_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
        let mut at = 4usize;
        let mut counts = HashMap::with_capacity(entries.min(bytes.len() / 12));
        for _ in 0..entries {
            let len = u32::from_be_bytes(bytes.get(at..at + 4)?.try_into().ok()?) as usize;
            at += 4;
            let chunk = bytes.get(at..at + len)?;
            let (tuple, used) = decode_tuple_wire(chunk).ok()?;
            if used != len {
                return None;
            }
            at += len;
            let n = u64::from_be_bytes(bytes.get(at..at + 8)?.try_into().ok()?);
            at += 8;
            if n == 0 {
                return None;
            }
            counts.insert(tuple, n);
        }
        if at != bytes.len() {
            return None;
        }
        Some(CountStore { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_term::Term;

    fn t(v: i64) -> Tuple {
        Tuple::ground(vec![Term::int(v)])
    }

    #[test]
    fn presence_transitions() {
        let mut s = CountStore::new();
        assert_eq!(s.adjust(&t(1), 2), CountChange::Appeared);
        assert_eq!(s.adjust(&t(1), 1), CountChange::Unchanged);
        assert_eq!(s.adjust(&t(1), -2), CountChange::Unchanged);
        assert_eq!(s.adjust(&t(1), -1), CountChange::Disappeared);
        assert_eq!(s.get(&t(1)), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn underflow_saturates_and_reports() {
        let mut s = CountStore::new();
        s.adjust(&t(1), 1);
        assert_eq!(s.adjust(&t(1), -5), CountChange::Underflow);
        assert_eq!(s.get(&t(1)), 0);
        assert_eq!(s.adjust(&t(9), -1), CountChange::Underflow, "absent tuple");
        assert_eq!(s.get(&t(9)), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut s = CountStore::new();
        s.set(t(1), 3);
        s.set(Tuple::ground(vec![Term::str("x")]), 1);
        s.set(Tuple::new(vec![Term::var(0)]), 2); // non-ground survives
        let bytes = s.encode().unwrap();
        let back = CountStore::decode(&bytes).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(&t(1)), 3);
        assert_eq!(back.get(&Tuple::ground(vec![Term::str("x")])), 1);
    }

    #[test]
    fn decode_rejects_torn_bytes() {
        let mut s = CountStore::new();
        s.set(t(1), 3);
        s.set(t(2), 1);
        let bytes = s.encode().unwrap();
        for cut in 1..bytes.len() {
            assert!(CountStore::decode(&bytes[..cut]).is_none(), "cut={cut}");
        }
        let mut garbled = bytes.clone();
        garbled[6] ^= 0xff;
        // Either an outright decode failure or a changed store — never a
        // quiet identical one.
        if let Some(g) = CountStore::decode(&garbled) {
            assert_ne!(format!("{:?}", g.counts.len()), String::new());
        }
    }
}
