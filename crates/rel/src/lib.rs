//! # coral-rel — CORAL relations and indices
//!
//! Implements §3.2–§3.3 of the paper plus the relation-level half of
//! §5.5.2 (aggregate selections) and §7.2 (extensible access structures):
//!
//! * The generic [`Relation`] interface — the paper's `class Relation`
//!   with virtual `insert`, `delete` and an iterator, here a trait whose
//!   scan objects are the "TupleIterator … used to store the state or
//!   position of a scan" (§3);
//! * [`ListRelation`] — relations organized as linked lists (§7.2);
//! * [`HashRelation`] — the workhorse in-memory hash relation with
//!   **marks** and subsidiary relations (§3.2), argument-form and
//!   pattern-form hash indices (§3.3), set/multiset duplicate semantics
//!   with subsumption checks (§4.2), and insert-time aggregate
//!   selections (§5.5.2);
//! * [`PersistentRelation`] — relations stored through the
//!   `coral-storage` server (the EXODUS substitute), restricted to
//!   primitive-typed fields exactly as §3.1 requires, with B+-tree
//!   indices and an order-preserving field encoding ([`encoding`]);
//! * [`Database`] — the catalog mapping predicate names to relations.

// `Tuple` contains `Arc<App>` whose hash-consing slot is atomically
// mutable; mutation never changes `Eq`/`Hash` (structurally-equal terms
// always receive equal identifiers), so tuples are sound map keys.
#![allow(clippy::mutable_key_type)]

pub mod columnar;
pub mod counts;
pub mod database;
pub mod encoding;
pub mod error;
pub mod hash_rel;
pub mod joinhash;
pub mod list_rel;
pub mod meter;
pub mod persistent;
pub mod profile;
pub mod relation;

pub use columnar::{ColVal, ColumnarBatch, RowRef};
pub use counts::{CountChange, CountStore};
pub use database::Database;
pub use error::{RelError, RelResult};
pub use hash_rel::{AggSelKind, AggregateSelection, HashRelation, Mark, RelSnapshot};
pub use joinhash::{JoinHashTable, Probe};
pub use list_rel::ListRelation;
pub use persistent::PersistentRelation;
pub use relation::{DupSemantics, IndexSpec, Relation, TupleIter};

pub use coral_stats::RelStats;
