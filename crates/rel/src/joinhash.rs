//! Transient hash-join tables with blocked Bloom prefilters.
//!
//! CORAL's nested-loops join (§5.3) resolves every non-delta body
//! literal by an index probe per outer row — a hash lookup plus a
//! var-bucket enumeration inside [`crate::HashRelation`]. When the same
//! literal is probed once per delta row with the same bound-column set,
//! it is cheaper to build one *transient* hash table over the inner
//! relation keyed on exactly those columns and probe it directly: the
//! build is a single pass, each probe is one hash and one bucket walk,
//! and a per-table blocked Bloom filter lets probes that cannot match
//! skip the table without touching its buckets at all (sideways
//! information passing from the outer literal to the inner one).
//!
//! The table is deliberately dumb about semantics: rows whose key
//! columns are not ground (the paper's `var`-bucket citizens) go to a
//! side list the caller must always enumerate, and bucket hits are row
//! *candidates* — the caller re-verifies every column with its usual
//! bind-or-compare/unify machinery, so hash collisions are harmless and
//! no term comparison logic is duplicated here. Tables are immutable
//! after [`JoinHashTable::build`] and `Send + Sync`, so the parallel
//! evaluator shares one build across workers behind an `Arc`.

use crate::hash_rel::{combine, term_key_hash};
use coral_term::{Term, Tuple};
use std::collections::HashMap;

/// One cache line's worth of Bloom bits per block keeps the probe to a
/// single memory access: block choice from the high hash bits, two bit
/// positions from independent low fields.
#[derive(Debug)]
struct BlockedBloom {
    /// Power-of-two number of 64-bit blocks.
    blocks: Vec<u64>,
}

impl BlockedBloom {
    /// Sized for `n` keys at roughly four keys per block (two bits
    /// set per key ⇒ ~1/8 of a block occupied per key).
    fn with_capacity(n: usize) -> BlockedBloom {
        let blocks = (n / 4).next_power_of_two().max(1);
        BlockedBloom {
            blocks: vec![0u64; blocks],
        }
    }

    fn slot(&self, hash: u64) -> (usize, u64) {
        let block = (hash >> 32) as usize & (self.blocks.len() - 1);
        let mask = (1u64 << (hash & 63)) | (1u64 << ((hash >> 6) & 63));
        (block, mask)
    }

    fn insert(&mut self, hash: u64) {
        let (block, mask) = self.slot(hash);
        self.blocks[block] |= mask;
    }

    fn may_contain(&self, hash: u64) -> bool {
        let (block, mask) = self.slot(hash);
        self.blocks[block] & mask == mask
    }
}

/// Result of probing a [`JoinHashTable`] with a ground key.
pub enum Probe<'a> {
    /// The Bloom filter proved no ground-keyed row can match: the
    /// caller may skip the buckets entirely (side rows still apply).
    Skip,
    /// Candidate row ids from the matching bucket — possibly empty,
    /// possibly containing hash collisions the caller's row match
    /// rejects.
    Rows(&'a [u32]),
}

/// A transient hash table over one relation (or relation range), keyed
/// on a fixed set of columns. Built once, probed many times, dropped
/// with the fixpoint iteration that made it.
#[derive(Debug)]
pub struct JoinHashTable {
    key_cols: Vec<usize>,
    /// Rows whose key columns are all ground, in insertion order.
    rows: Vec<Tuple>,
    /// key hash → ids into `rows`, ids ascending per bucket.
    buckets: HashMap<u64, Vec<u32>>,
    /// Rows with a variable somewhere in a key column: unreachable by
    /// hash, so every probe must also enumerate these.
    side: Vec<Tuple>,
    bloom: BlockedBloom,
}

impl JoinHashTable {
    /// Build a table over `rows` keyed on `key_cols`. Rows not ground
    /// at every key column land in the side list.
    pub fn build(key_cols: Vec<usize>, rows: impl IntoIterator<Item = Tuple>) -> JoinHashTable {
        let rows_iter = rows.into_iter();
        let (lo, _) = rows_iter.size_hint();
        let mut table = JoinHashTable {
            key_cols,
            rows: Vec::with_capacity(lo),
            buckets: HashMap::with_capacity(lo),
            side: Vec::new(),
            bloom: BlockedBloom::with_capacity(lo),
        };
        let mut components = Vec::with_capacity(table.key_cols.len());
        for t in rows_iter {
            components.clear();
            let args = t.args();
            let ground = table.key_cols.iter().all(|&c| {
                let a = &args[c];
                if a.is_ground() {
                    components.push(term_key_hash(a));
                    true
                } else {
                    false
                }
            });
            if !ground {
                table.side.push(t);
                continue;
            }
            let h = combine(&components);
            let id = table.rows.len() as u32;
            table.rows.push(t);
            table.buckets.entry(h).or_default().push(id);
            table.bloom.insert(h);
        }
        table
    }

    /// The columns this table is keyed on.
    pub fn key_cols(&self) -> &[usize] {
        &self.key_cols
    }

    /// Total rows ingested (hashed + side).
    pub fn build_rows(&self) -> usize {
        self.rows.len() + self.side.len()
    }

    /// Whether the table holds no rows at all.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() && self.side.is_empty()
    }

    /// Rows unreachable by hash (non-ground key columns); the caller
    /// enumerates these on every probe.
    pub fn side(&self) -> &[Tuple] {
        &self.side
    }

    /// A hashed row by id (ids come from [`JoinHashTable::probe`]).
    pub fn row(&self, id: u32) -> &Tuple {
        &self.rows[id as usize]
    }

    /// Hash of a ground probe key (`key[i]` is the term bound to
    /// `key_cols[i]`). The caller guarantees every term is ground —
    /// this matches the hashing applied to stored rows at build time.
    pub fn key_hash(key: &[&Term]) -> u64 {
        let components: Vec<u64> = key.iter().map(|t| term_key_hash(t)).collect();
        combine(&components)
    }

    /// Probe with a precomputed [`JoinHashTable::key_hash`].
    pub fn probe(&self, key_hash: u64) -> Probe<'_> {
        if !self.bloom.may_contain(key_hash) {
            return Probe::Skip;
        }
        match self.buckets.get(&key_hash) {
            Some(ids) => Probe::Rows(ids),
            None => Probe::Rows(&[]),
        }
    }
}

// Shared read-only across the parallel evaluator's workers.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<JoinHashTable>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use coral_term::term::VarId;
    use coral_term::Symbol;

    fn int_row(vals: &[i64]) -> Tuple {
        Tuple::new(vals.iter().map(|&v| Term::Int(v)).collect())
    }

    fn probe_ids(table: &JoinHashTable, key: &[&Term]) -> Vec<u32> {
        match table.probe(JoinHashTable::key_hash(key)) {
            Probe::Skip => Vec::new(),
            Probe::Rows(ids) => ids.to_vec(),
        }
    }

    #[test]
    fn empty_build_probes_cleanly() {
        let t = JoinHashTable::build(vec![0], std::iter::empty());
        assert!(t.is_empty());
        assert_eq!(t.build_rows(), 0);
        assert!(t.side().is_empty());
        let ids = probe_ids(&t, &[&Term::Int(1)]);
        assert!(ids.is_empty());
    }

    #[test]
    fn single_row_build() {
        let t = JoinHashTable::build(vec![0], [int_row(&[7, 8])]);
        assert_eq!(t.build_rows(), 1);
        let hit = probe_ids(&t, &[&Term::Int(7)]);
        assert_eq!(hit.len(), 1);
        assert_eq!(t.row(hit[0]), &int_row(&[7, 8]));
        // A missing key either Bloom-skips or lands in an absent
        // bucket; both yield zero candidates.
        assert!(probe_ids(&t, &[&Term::Int(9)]).is_empty());
    }

    #[test]
    fn bloom_skips_mean_no_bucket_can_match() {
        let rows: Vec<Tuple> = (0..64).map(|i| int_row(&[i, i + 1])).collect();
        let t = JoinHashTable::build(vec![0], rows);
        let mut skips = 0;
        for probe in 1000..2000 {
            let h = JoinHashTable::key_hash(&[&Term::Int(probe)]);
            match t.probe(h) {
                Probe::Skip => skips += 1,
                Probe::Rows(ids) => {
                    // A Bloom pass on an absent key must still come up
                    // empty from the exact bucket map.
                    assert!(ids.is_empty(), "false candidates for {probe}");
                }
            }
        }
        assert!(skips > 0, "Bloom filter never skipped a miss");
        // Present keys are never skipped (no false negatives).
        for present in 0..64 {
            let h = JoinHashTable::key_hash(&[&Term::Int(present)]);
            assert!(
                !probe_ids(&t, &[&Term::Int(present)]).is_empty(),
                "false negative for {present} ({h:#x})"
            );
        }
    }

    #[test]
    fn non_ground_key_rows_go_to_the_side_list() {
        let ground = int_row(&[1, 2]);
        let open = Tuple::new(vec![Term::Var(VarId(0)), Term::Int(3)]);
        let fun = Tuple::new(vec![
            Term::app(Symbol::intern("f"), vec![Term::Var(VarId(0))]),
            Term::Int(4),
        ]);
        let t = JoinHashTable::build(vec![0], [ground.clone(), open.clone(), fun.clone()]);
        assert_eq!(t.build_rows(), 3);
        assert_eq!(t.side(), &[open, fun]);
        let hit = probe_ids(&t, &[&Term::Int(1)]);
        assert_eq!(hit.len(), 1);
        assert_eq!(t.row(hit[0]), &ground);
    }

    #[test]
    fn ground_functor_and_bignum_keys() {
        // Keys beyond flat ints: a ground functor term and a bignum.
        let big = Term::big(
            "170141183460469231731687303715884105728"
                .parse::<coral_term::BigInt>()
                .expect("bignum parse"),
        );
        let f1 = Term::app(Symbol::intern("f"), vec![Term::Int(1), Term::Int(2)]);
        let rows = vec![
            Tuple::new(vec![big.clone(), Term::Int(10)]),
            Tuple::new(vec![f1.clone(), Term::Int(20)]),
        ];
        let t = JoinHashTable::build(vec![0], rows);
        assert!(t.side().is_empty());
        let hit = probe_ids(&t, &[&big]);
        assert_eq!(hit.len(), 1);
        assert_eq!(t.row(hit[0]).args()[1], Term::Int(10));
        let hit = probe_ids(&t, &[&f1]);
        assert_eq!(hit.len(), 1);
        assert_eq!(t.row(hit[0]).args()[1], Term::Int(20));
        // Structurally different functor: no candidate survives.
        let f2 = Term::app(Symbol::intern("f"), vec![Term::Int(1), Term::Int(3)]);
        let ids = probe_ids(&t, &[&f2]);
        assert!(ids.iter().all(|&id| t.row(id).args()[0] != f2));
    }

    /// Deterministic multiplicative generator for the model test —
    /// collision-heavy on purpose (small key domain, many rows).
    fn lcg(state: &mut u64) -> u64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *state >> 33
    }

    #[test]
    fn matches_a_reference_hashmap_model() {
        for seed in [3u64, 17, 4242] {
            let mut s = seed;
            let mut rows = Vec::new();
            let mut model: HashMap<(i64, i64), Vec<Tuple>> = HashMap::new();
            for _ in 0..500 {
                // Two key columns over tiny domains + one payload.
                let k0 = (lcg(&mut s) % 7) as i64;
                let k1 = (lcg(&mut s) % 5) as i64;
                let v = (lcg(&mut s) % 1000) as i64;
                let t = int_row(&[k0, k1, v]);
                model.entry((k0, k1)).or_default().push(t.clone());
                rows.push(t);
            }
            let table = JoinHashTable::build(vec![0, 1], rows);
            assert!(table.side().is_empty());
            assert_eq!(table.build_rows(), 500);
            for k0 in 0..8i64 {
                for k1 in 0..6i64 {
                    let (a, b) = (Term::Int(k0), Term::Int(k1));
                    let ids = probe_ids(&table, &[&a, &b]);
                    // Exactly the model's rows survive the caller-side
                    // key re-check (collisions are filtered there).
                    let got: Vec<&Tuple> = ids
                        .iter()
                        .map(|&id| table.row(id))
                        .filter(|t| t.args()[0] == a && t.args()[1] == b)
                        .collect();
                    let want = model.get(&(k0, k1)).map(Vec::as_slice).unwrap_or(&[]);
                    assert_eq!(got.len(), want.len(), "seed {seed} key ({k0},{k1})");
                    for (g, w) in got.iter().zip(want) {
                        assert_eq!(*g, w, "seed {seed} key ({k0},{k1})");
                    }
                    // Candidate ids stay in insertion order.
                    assert!(ids.windows(2).all(|w| w[0] < w[1]));
                }
            }
        }
    }
}
