//! The generic relation interface (§3, §7.2).
//!
//! "The class `Relation` has a number of virtual methods defined on it.
//! These include `insert(Tuple*)`, `delete(Tuple*)`, and an iterator
//! interface that allows tuples to be fetched from the relation, one at a
//! time." The interface "makes no assumptions about the structure of
//! relations, and is designed to make the task of adding new relation
//! implementations easy" (§7.2) — list relations, hash relations,
//! persistent relations and (in `coral-embed`) relations computed by host
//! functions all implement this trait.
//!
//! Scans are snapshot iterators: [`Relation::scan`]/[`Relation::lookup`]
//! capture the qualifying tuples at open time (tuples are `Arc`-backed,
//! so this clones pointers, not terms). This matches the paper's multiple
//! concurrent scans over one relation, and keeps scans well-defined while
//! the evaluator inserts into the same relation — the semi-naive
//! machinery only ever reads *closed* subsidiary relations anyway.

use crate::error::RelResult;
use coral_term::{Term, Tuple};

/// Boxed tuple iterator — the paper's `TupleIterator`.
pub type TupleIter = Box<dyn Iterator<Item = RelResult<Tuple>>>;

/// Duplicate semantics for a relation (§4.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DupSemantics {
    /// Set semantics: exact duplicates (variants) are discarded.
    Set,
    /// Set semantics with full subsumption checks: a new fact subsumed by
    /// an existing (possibly non-ground) fact is discarded. This is
    /// CORAL's default ("the default is to do subsumption checks on all
    /// relations").
    SetSubsuming,
    /// Multiset semantics: "as many copies of a tuple as there are
    /// derivations for it"; no duplicate checks here (the engine then
    /// checks duplicates only on the magic predicates).
    Multiset,
}

/// An index specification (§3.3, §5.5.1).
#[derive(Clone, Debug)]
pub enum IndexSpec {
    /// Argument-form index: a multi-attribute hash index on a subset of
    /// argument positions.
    Args(Vec<usize>),
    /// Pattern-form index: index on the bindings of `key_vars` after
    /// matching `pattern` (one term per column, containing variables)
    /// against each tuple — e.g. `emp(Name, addr(Street, City))` keyed on
    /// `(Name, City)`.
    Pattern {
        /// One pattern term per column.
        pattern: Vec<Term>,
        /// Variables of `pattern` forming the key, in key order.
        key_vars: Vec<coral_term::VarId>,
    },
}

/// The generic relation interface.
pub trait Relation {
    /// Downcast support (the engine recovers concrete types to apply
    /// implementation-specific annotations such as aggregate selections).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Number of columns.
    fn arity(&self) -> usize;

    /// Number of stored tuples.
    fn len(&self) -> usize;

    /// True iff no tuples are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Insert a tuple. Returns `true` if the relation changed (the tuple
    /// was not a duplicate, was not subsumed, and survived any aggregate
    /// selections).
    fn insert(&self, tuple: Tuple) -> RelResult<bool>;

    /// Delete a tuple (by variant equality). Returns `true` if present.
    fn delete(&self, tuple: &Tuple) -> RelResult<bool>;

    /// Scan all tuples.
    fn scan(&self) -> TupleIter;

    /// Candidate tuples that may unify with `pattern` (one term per
    /// column; variables match anything). Implementations use their best
    /// index; the result may be a superset of the unifying tuples — the
    /// caller unifies anyway, as the nested-loops join must bind the
    /// pattern's variables (§5.3).
    fn lookup(&self, pattern: &[Term]) -> TupleIter;

    /// Create an index (also valid on a non-empty relation: "indices can
    /// also be created at a later time", §2).
    fn make_index(&self, spec: IndexSpec) -> RelResult<()>;

    /// A human-readable description of the implementation, for the
    /// interactive interface and EXPLAIN-style output.
    fn describe(&self) -> String;

    /// A snapshot of this relation's maintained statistics, if the
    /// implementation keeps any (see coral-stats). `None` means the
    /// planner falls back to [`Relation::len`] alone.
    fn stats(&self) -> Option<coral_stats::RelStats> {
        None
    }

    /// Rebuild statistics from a full scan (the `ANALYZE` pass). A
    /// no-op for implementations that keep none.
    fn analyze(&self) -> RelResult<()> {
        Ok(())
    }
}

/// Convenience: wrap an eager tuple vector as a [`TupleIter`].
pub fn iter_from_vec(tuples: Vec<Tuple>) -> TupleIter {
    Box::new(tuples.into_iter().map(Ok))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_from_vec_yields_all() {
        let ts = vec![
            Tuple::new(vec![Term::int(1)]),
            Tuple::new(vec![Term::int(2)]),
        ];
        let got: Vec<Tuple> = iter_from_vec(ts.clone()).map(|r| r.unwrap()).collect();
        assert_eq!(got, ts);
    }
}
