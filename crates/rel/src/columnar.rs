//! Columnar delta batches for the semi-naive hot path.
//!
//! Semi-naive joins are driven by delta relations whose rows are, in the
//! overwhelmingly common case, fully ground tuples of primitive
//! constants. Scanning those deltas tuple-at-a-time and unifying every
//! argument pays allocation and dispatch costs that a batch can avoid: a
//! [`ColumnarBatch`] stores the ground primitive rows *flat*, one
//! [`ColVal`] vector per column, and keeps the exceptional rows — tuples
//! containing variables, functor terms or ADT values — in a sparse
//! side-table keyed by row index. Consumers (the join driver in
//! `coral-core` and the parallel fixpoint workers) iterate rows in the
//! exact order the serial tuple scan would produce, taking column
//! equality/bind fast paths for flat rows and falling back to general
//! unification only for side-table rows.
//!
//! Bignums are interned into a per-batch pool shared (via `Arc`) with
//! every chunk produced by [`ColumnarBatch::partition`], so columns stay
//! one machine word wide.

use crate::relation::{iter_from_vec, TupleIter};
use coral_term::bignum::BigInt;
use coral_term::{OrderedF64, Symbol, Term, Tuple};
use std::sync::Arc;

/// One flat column entry: a ground primitive constant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColVal {
    /// Machine integer.
    Int(i64),
    /// Double with total ordering.
    Dbl(OrderedF64),
    /// Interned string/atom.
    Sym(Symbol),
    /// Handle into the batch's bignum pool.
    Big(u32),
}

/// How one batch row is stored.
pub enum RowRef<'a> {
    /// Flat row: index into the column vectors.
    Fast(usize),
    /// Side-table row: the original tuple (contains a variable, functor
    /// term or ADT value).
    Side(&'a Tuple),
}

/// A columnar view of a contiguous run of delta rows, in insertion order.
#[derive(Clone, Debug)]
pub struct ColumnarBatch {
    arity: usize,
    nrows: usize,
    /// `arity` columns; each holds one entry per *fast* row, in row order.
    cols: Vec<Vec<ColVal>>,
    /// `(row index, tuple)` for non-flat rows, sorted by row index.
    side: Vec<(u32, Tuple)>,
    /// Bignum pool referenced by `ColVal::Big` handles; shared across
    /// chunks of the same parent batch.
    bigs: Arc<Vec<Arc<BigInt>>>,
}

impl ColumnarBatch {
    /// Build a batch from tuples in order. Rows whose arguments are all
    /// ground primitives go to the flat columns; everything else goes to
    /// the side-table.
    pub fn from_tuples<I: IntoIterator<Item = Tuple>>(arity: usize, tuples: I) -> ColumnarBatch {
        let mut cols: Vec<Vec<ColVal>> = (0..arity).map(|_| Vec::new()).collect();
        let mut side: Vec<(u32, Tuple)> = Vec::new();
        let mut bigs: Vec<Arc<BigInt>> = Vec::new();
        let mut nrows = 0usize;
        for t in tuples {
            debug_assert_eq!(t.arity(), arity, "batch arity mismatch");
            let flat = t.args().iter().all(|a| a.is_ground_primitive());
            if flat {
                for (c, a) in cols.iter_mut().zip(t.args()) {
                    c.push(match a {
                        Term::Int(v) => ColVal::Int(*v),
                        Term::Double(v) => ColVal::Dbl(*v),
                        Term::Str(s) => ColVal::Sym(*s),
                        Term::Big(b) => {
                            bigs.push(Arc::clone(b));
                            ColVal::Big((bigs.len() - 1) as u32)
                        }
                        _ => unreachable!("non-primitive arg in flat row"),
                    });
                }
            } else {
                side.push((nrows as u32, t));
            }
            nrows += 1;
        }
        ColumnarBatch {
            arity,
            nrows,
            cols,
            side,
            bigs: Arc::new(bigs),
        }
    }

    /// Total rows (flat + side).
    pub fn len(&self) -> usize {
        self.nrows
    }

    /// True iff the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.nrows == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Rows stored flat in the columns.
    pub fn fast_rows(&self) -> usize {
        self.nrows - self.side.len()
    }

    /// Rows in the sparse side-table.
    pub fn side_rows(&self) -> usize {
        self.side.len()
    }

    /// Number of side-table rows preceding `row`.
    fn side_before(&self, row: usize) -> usize {
        self.side.partition_point(|(i, _)| (*i as usize) < row)
    }

    /// Resolve a row index to its storage.
    pub fn row_ref(&self, row: usize) -> RowRef<'_> {
        debug_assert!(row < self.nrows);
        let s = self.side_before(row);
        match self.side.get(s) {
            Some((i, t)) if *i as usize == row => RowRef::Side(t),
            _ => RowRef::Fast(row - s),
        }
    }

    /// The term at `(fast_idx, col)` of the flat columns.
    pub fn fast_term(&self, fast_idx: usize, col: usize) -> Term {
        match self.cols[col][fast_idx] {
            ColVal::Int(v) => Term::Int(v),
            ColVal::Dbl(v) => Term::Double(v),
            ColVal::Sym(s) => Term::Str(s),
            ColVal::Big(h) => Term::Big(Arc::clone(&self.bigs[h as usize])),
        }
    }

    /// Whether the flat entry at `(fast_idx, col)` equals `t`, with
    /// exactly the semantics of `Term::eq` (and therefore of unifying two
    /// ground terms): same-variant value equality, `false` across
    /// variants — `Int(3)` does *not* match a bignum 3.
    pub fn fast_matches(&self, fast_idx: usize, col: usize, t: &Term) -> bool {
        match (self.cols[col][fast_idx], t) {
            (ColVal::Int(a), Term::Int(b)) => a == *b,
            (ColVal::Dbl(a), Term::Double(b)) => a == *b,
            (ColVal::Sym(a), Term::Str(b)) => a == *b,
            (ColVal::Big(h), Term::Big(b)) => *self.bigs[h as usize] == **b,
            _ => false,
        }
    }

    /// Reconstruct the tuple at `row`.
    pub fn row_tuple(&self, row: usize) -> Tuple {
        match self.row_ref(row) {
            RowRef::Side(t) => t.clone(),
            RowRef::Fast(fi) => {
                Tuple::ground((0..self.arity).map(|c| self.fast_term(fi, c)).collect())
            }
        }
    }

    /// All rows, in order, as tuples.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        (0..self.nrows).map(|r| self.row_tuple(r)).collect()
    }

    /// All rows, in order, as a scan iterator.
    pub fn iter_tuples(&self) -> TupleIter {
        iter_from_vec(self.to_tuples())
    }

    /// Split into at most `k` contiguous chunks of at least `min_chunk`
    /// rows each (except possibly when the batch itself is smaller), row
    /// order preserved across the concatenation. Mirrors the tuple
    /// partitioner in `coral-core`: `k` is clamped, sizes differ by at
    /// most one, earlier chunks take the remainder. The bignum pool is
    /// shared, not copied.
    pub fn partition(&self, k: usize, min_chunk: usize) -> Vec<ColumnarBatch> {
        let n = self.nrows;
        let k = k.clamp(1, n.div_ceil(min_chunk.max(1)).max(1));
        let base = n / k;
        let extra = n % k;
        let mut out = Vec::with_capacity(k);
        let mut lo = 0usize;
        for i in 0..k {
            let take = base + usize::from(i < extra);
            let hi = lo + take;
            let flo = lo - self.side_before(lo);
            let fhi = hi - self.side_before(hi);
            let cols = self
                .cols
                .iter()
                .map(|c| c[flo..fhi].to_vec())
                .collect::<Vec<_>>();
            let side = self.side[self.side_before(lo)..self.side_before(hi)]
                .iter()
                .map(|(i, t)| ((*i as usize - lo) as u32, t.clone()))
                .collect();
            out.push(ColumnarBatch {
                arity: self.arity,
                nrows: take,
                cols,
                side,
                bigs: Arc::clone(&self.bigs),
            });
            lo = hi;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_term::testutil::TestRng;

    fn big(s: &str) -> Term {
        Term::big(s.parse().unwrap())
    }

    /// A random tuple; ~60% all-primitive, the rest mix in variables,
    /// nested functors and bignums.
    fn random_tuple(rng: &mut TestRng, arity: usize) -> Tuple {
        let args = (0..arity)
            .map(|_| match rng.gen_range(0, 10) {
                0..=3 => Term::int(rng.gen_range(0, 50) as i64),
                4 => Term::double(rng.gen_range(0, 100) as f64 / 4.0),
                5 => Term::str(["a", "b", "c"][rng.gen_range(0, 3)]),
                6 => big(["123456789012345678901", "99999999999999999999"][rng.gen_range(0, 2)]),
                7 => Term::var(rng.gen_range(0, 3) as u32),
                8 => Term::apps("f", vec![Term::int(rng.gen_range(0, 5) as i64)]),
                _ => Term::apps("g", vec![Term::var(0), Term::list(vec![Term::int(1)])]),
            })
            .collect();
        Tuple::new(args)
    }

    #[test]
    fn empty_and_single_row_batches() {
        let b = ColumnarBatch::from_tuples(2, Vec::new());
        assert!(b.is_empty());
        assert_eq!(b.to_tuples(), Vec::new());
        assert_eq!(b.partition(4, 16).len(), 1);
        assert!(b.partition(4, 16)[0].is_empty());

        let g = Tuple::new(vec![Term::int(1), Term::str("x")]);
        let b = ColumnarBatch::from_tuples(2, vec![g.clone()]);
        assert_eq!((b.len(), b.fast_rows(), b.side_rows()), (1, 1, 0));
        assert_eq!(b.to_tuples(), vec![g]);

        let nv = Tuple::new(vec![Term::var(0), Term::int(2)]);
        let b = ColumnarBatch::from_tuples(2, vec![nv.clone()]);
        assert_eq!((b.len(), b.fast_rows(), b.side_rows()), (1, 0, 1));
        assert_eq!(b.to_tuples(), vec![nv]);
    }

    #[test]
    fn zero_arity_rows_are_flat() {
        let t = Tuple::new(Vec::new());
        let b = ColumnarBatch::from_tuples(0, vec![t.clone(), t.clone(), t.clone()]);
        assert_eq!((b.len(), b.fast_rows(), b.side_rows()), (3, 3, 0));
        assert_eq!(b.to_tuples(), vec![t.clone(), t.clone(), t]);
    }

    #[test]
    fn functor_and_bignum_rows_go_to_the_side_table_or_pool() {
        let rows = vec![
            Tuple::new(vec![Term::int(1), big("123456789012345678901")]),
            Tuple::new(vec![Term::apps("f", vec![Term::int(2)]), Term::int(3)]),
            Tuple::new(vec![Term::int(4), Term::var(0)]),
            Tuple::new(vec![Term::int(5), Term::str("s")]),
        ];
        let b = ColumnarBatch::from_tuples(2, rows.clone());
        // Bignums are flat (pooled); functors and variables are side rows.
        assert_eq!((b.fast_rows(), b.side_rows()), (2, 2));
        assert_eq!(b.to_tuples(), rows);
        // Flat columns are uncorrupted by the interleaved side rows.
        assert!(matches!(b.row_ref(0), RowRef::Fast(0)));
        assert!(matches!(b.row_ref(3), RowRef::Fast(1)));
        assert!(b.fast_matches(0, 1, &big("123456789012345678901")));
        assert!(b.fast_matches(1, 0, &Term::int(5)));
    }

    #[test]
    fn fast_matches_mirrors_term_equality_across_variants() {
        let b = ColumnarBatch::from_tuples(
            1,
            vec![
                Tuple::new(vec![Term::int(3)]),
                Tuple::new(vec![big("3")]),
                Tuple::new(vec![Term::double(3.0)]),
            ],
        );
        // Int(3), Big(3) and Double(3.0) are pairwise unequal as terms;
        // the column probe agrees.
        assert!(b.fast_matches(0, 0, &Term::int(3)));
        assert!(!b.fast_matches(0, 0, &big("3")));
        assert!(!b.fast_matches(1, 0, &Term::int(3)));
        assert!(b.fast_matches(1, 0, &big("3")));
        assert!(!b.fast_matches(2, 0, &Term::int(3)));
        assert!(b.fast_matches(2, 0, &Term::double(3.0)));
    }

    #[test]
    fn mixed_batches_round_trip_exactly() {
        for seed in 0..20u64 {
            let mut rng = TestRng::new(seed);
            let arity = rng.gen_range(1, 5);
            let n = rng.gen_range(0, 60);
            let rows: Vec<Tuple> = (0..n).map(|_| random_tuple(&mut rng, arity)).collect();
            let b = ColumnarBatch::from_tuples(arity, rows.clone());
            assert_eq!(b.len(), rows.len());
            assert_eq!(b.fast_rows() + b.side_rows(), b.len());
            assert_eq!(b.to_tuples(), rows, "seed {seed}");
            // Per-row reconstruction agrees with the bulk path.
            for (i, t) in rows.iter().enumerate() {
                assert_eq!(&b.row_tuple(i), t, "seed {seed} row {i}");
            }
        }
    }

    #[test]
    fn partition_preserves_order_and_respects_min_chunk() {
        for seed in 100..115u64 {
            let mut rng = TestRng::new(seed);
            let arity = rng.gen_range(1, 4);
            let n = rng.gen_range(0, 120);
            let rows: Vec<Tuple> = (0..n).map(|_| random_tuple(&mut rng, arity)).collect();
            let b = ColumnarBatch::from_tuples(arity, rows.clone());
            for k in [1usize, 2, 4, 7] {
                let chunks = b.partition(k, 16);
                assert!(chunks.len() <= k.max(1));
                let glued: Vec<Tuple> = chunks.iter().flat_map(|c| c.to_tuples()).collect();
                assert_eq!(glued, rows, "seed {seed} k {k}");
                // The clamp bounds the chunk *count*, which keeps every
                // chunk within one row of n/k (possibly just under the
                // min when n is not a multiple of it) — same contract as
                // the tuple partitioner in coral-core.
                assert!(chunks.len() <= n.div_ceil(16).max(1), "seed {seed} k {k}");
                let sizes: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
                let (min, max) = (
                    sizes.iter().copied().min().unwrap(),
                    sizes.iter().copied().max().unwrap(),
                );
                assert!(max - min <= 1, "balanced: {sizes:?}");
            }
        }
    }
}
