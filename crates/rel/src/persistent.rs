//! Persistent relations over the storage server (§3.2).
//!
//! "CORAL uses the EXODUS storage manager to support persistent
//! relations … If a requested tuple is not in the client buffer pool, a
//! request is forwarded to the EXODUS server and the page with the
//! requested tuple is retrieved." Here the tuples live in a heap file,
//! exact-key secondary indices live in B+-trees (§3.3), and every access
//! goes through the buffer pool of `coral-storage`, whose statistics make
//! the paging behaviour observable.
//!
//! As in the paper, "tuples in a persistent relation are restricted to
//! have fields of primitive types only" — non-primitive fields are
//! rejected at insert with [`RelError::NonPrimitive`]. Set semantics are
//! enforced through a primary B+-tree over the full tuple encoding.
//!
//! A small schema record (arity + index column lists) is stored in its
//! own heap file so a relation reopens with the same shape it was created
//! with.

use crate::encoding::{encode_cols, encode_tuple};
use crate::error::{RelError, RelResult};
use crate::relation::{IndexSpec, Relation, TupleIter};
use coral_storage::{BTree, HeapFile, PageId, RecordId, SnapshotGuard, StorageClient, View};
use coral_term::{match_args, Term, Tuple};
use std::cell::{Cell, RefCell};
use std::sync::{Arc, RwLock};

fn rid_bytes(rid: RecordId) -> [u8; 10] {
    let mut b = [0u8; 10];
    b[0..8].copy_from_slice(&rid.page.0.to_be_bytes());
    b[8..10].copy_from_slice(&rid.slot.to_be_bytes());
    b
}

fn rid_from_bytes(b: &[u8]) -> RelResult<RecordId> {
    if b.len() != 10 {
        return Err(RelError::Decode(
            "bad record-id suffix in index item".into(),
        ));
    }
    Ok(RecordId {
        page: PageId(u64::from_be_bytes(b[0..8].try_into().unwrap())),
        slot: u16::from_be_bytes(b[8..10].try_into().unwrap()),
    })
}

struct SecondaryIndex {
    cols: Vec<usize>,
    tree: BTree,
}

/// A disk-resident relation: heap file + primary B+-tree + secondary
/// B+-tree indices.
pub struct PersistentRelation {
    name: String,
    arity: usize,
    server: StorageClient,
    heap: HeapFile,
    /// Unique index over the full tuple encoding (duplicate checks).
    primary: BTree,
    indices: RefCell<Vec<SecondaryIndex>>,
    schema: HeapFile,
    /// Planner statistics (see coral-stats), persisted in their own
    /// catalog heap file (`<name>.stats`) so they survive reopen. The
    /// on-disk record is authoritative: every handle re-reads it under
    /// the relation lock before updating, so concurrent sessions
    /// compose instead of clobbering each other.
    stats_file: HeapFile,
    /// Relation-wide readers-writer lock shared (via the storage
    /// server's registry) by every handle open on this relation name,
    /// across threads and sessions. The buffer pool only locks per
    /// page, while insert/delete/make_index are multi-page
    /// read-copy-modify-write sequences over heap + B+-trees; holding
    /// the write side across each mutation keeps concurrent server
    /// sessions from interleaving mid-split and corrupting the tree.
    ///
    /// Under MVCC this lock still serializes *non-transactional* (Live)
    /// mutators of one relation; *readers* no longer take it — they pin
    /// a snapshot instead — and transactional mutators are additionally
    /// serialized by page write locks (every insert/delete touches the
    /// primary tree's meta page, so two transactions mutating the same
    /// relation always conflict and one retries).
    lock: Arc<RwLock<()>>,
    /// The transaction this handle's operations run in (`None` = live /
    /// autonomous). Set by the session layer around each request.
    txn: Cell<Option<u64>>,
    /// The schema generation (see `StorageServer::bump_schema_epoch`)
    /// this handle last loaded its index list at, or [`RESYNC`]. Another
    /// session creating an index advances the server-side epoch; on a
    /// mismatch the handle re-reads the schema before using (or worse,
    /// not updating) its cached index list.
    schema_seen: Cell<u64>,
}

/// Sentinel for `schema_seen`: the cached index list may not reflect the
/// committed schema, so the next operation must re-read it regardless of
/// the epoch counter. Set whenever the list was loaded through a
/// transaction's view — the record read there may be the transaction's
/// own uncommitted write, which an abort would revert while the epoch
/// stays bumped.
const RESYNC: u64 = u64::MAX;

/// Restores a relation's handle views when a scoped snapshot read ends.
struct ViewScope<'a> {
    rel: &'a PersistentRelation,
}

impl Drop for ViewScope<'_> {
    fn drop(&mut self) {
        self.rel.apply_view(self.rel.base_view());
    }
}

impl PersistentRelation {
    /// Open (creating if necessary) the named persistent relation.
    ///
    /// If the relation exists, its stored schema must agree on `arity`;
    /// previously created indices are reattached.
    pub fn open(server: &StorageClient, name: &str, arity: usize) -> RelResult<PersistentRelation> {
        let lock = server.named_lock(name);
        // Exclusive while opening: B+-tree meta-page initialization and
        // the first schema write are themselves multi-page mutations, so
        // two sessions opening a brand-new relation must not interleave.
        let guard = lock.write().unwrap();
        let heap = server.heap(&format!("{name}.data"))?;
        let primary = server.btree(&format!("{name}.pk"))?;
        let schema = server.heap(&format!("{name}.schema"))?;
        let stats_file = server.heap(&format!("{name}.stats"))?;
        let rel = PersistentRelation {
            name: name.to_string(),
            arity,
            server: server.clone(),
            heap,
            primary,
            indices: RefCell::new(Vec::new()),
            schema,
            stats_file,
            lock: Arc::clone(&lock),
            txn: Cell::new(None),
            schema_seen: Cell::new(0),
        };
        // Load or initialize the schema record.
        let existing: Vec<(RecordId, Vec<u8>)> = rel.schema.scan().collect::<Result<_, _>>()?;
        match existing.first() {
            Some((_, bytes)) => {
                let (stored_arity, col_lists, gen) = decode_schema(bytes)?;
                if stored_arity != arity {
                    return Err(RelError::Arity {
                        expected: stored_arity,
                        got: arity,
                    });
                }
                // The epoch counter is in-memory; after a server restart
                // it must not fall below the persisted generation or
                // later bumps would be invisible to this handle.
                server.seed_schema_epoch(name, gen);
                rel.schema_seen.set(gen);
                let mut indices = rel.indices.borrow_mut();
                for (i, cols) in col_lists.into_iter().enumerate() {
                    let tree = server.btree(&format!("{name}.idx{i}"))?;
                    indices.push(SecondaryIndex { cols, tree });
                }
            }
            None => {
                rel.schema.insert(&encode_schema(arity, &[], 0))?;
            }
        }
        drop(guard);
        Ok(rel)
    }

    /// The relation's catalog name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Run this handle's subsequent operations inside `txn` (`None`
    /// detaches). The session layer brackets each mutating request with
    /// a storage transaction and points every registered persistent
    /// relation at it.
    pub fn set_txn(&self, txn: Option<u64>) {
        self.txn.set(txn);
        self.apply_view(self.base_view());
    }

    /// The transaction this handle is attached to, if any.
    pub fn txn(&self) -> Option<u64> {
        self.txn.get()
    }

    /// The storage server this relation lives on.
    pub fn server(&self) -> &StorageClient {
        &self.server
    }

    /// This relation's mutation epoch (bumped on every applied
    /// insert/delete by any handle; see `StorageServer::bump_epoch`).
    pub fn epoch(&self) -> u64 {
        self.server.epoch(&self.name)
    }

    fn base_view(&self) -> View {
        self.txn.get().map_or(View::Live, View::Txn)
    }

    /// Point every storage handle of this relation at `view`.
    fn apply_view(&self, view: View) {
        self.heap.set_view(view);
        self.primary.set_view(view);
        self.schema.set_view(view);
        self.stats_file.set_view(view);
        for ix in self.indices.borrow().iter() {
            ix.tree.set_view(view);
        }
    }

    /// Begin a lock-free snapshot read: pin the current committed state
    /// and point the handles at it until the scope drops. `None` when
    /// reads should go through the base view instead (inside a
    /// transaction, or MVCC off).
    fn snapshot_read(&self) -> Option<(Arc<SnapshotGuard>, ViewScope<'_>)> {
        if self.txn.get().is_some() || !self.server.mvcc_enabled() {
            return None;
        }
        let guard = SnapshotGuard::pin(self.server.pool());
        self.apply_view(View::Snapshot(guard.ts()));
        Some((guard, ViewScope { rel: self }))
    }

    /// The shared-lock guard legacy (non-MVCC) readers hold; MVCC
    /// readers rely on their pinned snapshot instead and never block.
    fn legacy_read_guard(&self) -> Option<std::sync::RwLockReadGuard<'_, ()>> {
        (!self.server.mvcc_enabled()).then(|| self.lock.read().unwrap())
    }

    /// The stored arity of the named relation in this store, or `None`
    /// if no relation of that name exists. Lets a server enumerate and
    /// reopen existing relations without knowing their schemas up front.
    pub fn stored_arity(server: &StorageClient, name: &str) -> RelResult<Option<usize>> {
        let schema_file = format!("{name}.schema");
        if !server.file_exists(&schema_file) {
            return Ok(None);
        }
        let lock = server.named_lock(name);
        let _read = lock.read().unwrap();
        let schema = server.heap(&schema_file)?;
        match schema.scan().next() {
            Some(rec) => {
                let (_, bytes) = rec?;
                Ok(Some(decode_schema(&bytes)?.0))
            }
            None => Ok(None),
        }
    }

    /// Names of the persistent relations present in a store (derived
    /// from the catalog's `<name>.schema` entries).
    pub fn list(server: &StorageClient) -> Vec<String> {
        server
            .list_files()
            .into_iter()
            .filter_map(|f| f.strip_suffix(".schema").map(str::to_string))
            .collect()
    }

    /// Re-read the index list from the persisted schema if another
    /// handle changed it since this one last looked (the server-side
    /// schema epoch advanced). Without this, a handle opened before an
    /// index existed would keep inserting tuples that never reach the
    /// new index — a silently incomplete index, i.e. wrong (missing)
    /// answers for every indexed lookup afterwards. Mutators call this
    /// under the relation write lock; lock-free MVCC readers call it
    /// unlocked, where a torn schema read (mid-rewrite by a concurrent
    /// `make_index`) is benign: the epoch is left unsynced and the
    /// reader falls back to a full scan.
    fn sync_indices(&self) -> RelResult<()> {
        let actual = self.server.schema_epoch(&self.name);
        let seen = self.schema_seen.get();
        if seen != RESYNC && seen >= actual {
            return Ok(());
        }
        let Some(rec) = self.schema.scan().next() else {
            return Ok(());
        };
        let (_, bytes) = rec?;
        let (_, col_lists, gen) = decode_schema(&bytes)?;
        let view = self.heap.view();
        let mut indices = self.indices.borrow_mut();
        indices.clear();
        for (i, cols) in col_lists.into_iter().enumerate() {
            let tree = self
                .server
                .btree_with_view(&format!("{}.idx{i}", self.name), view)?;
            indices.push(SecondaryIndex { cols, tree });
        }
        drop(indices);
        // Record the generation of the record we could actually *see*,
        // not the epoch counter: under MVCC the visible record may lag
        // the bump (the bumping transaction is still in flight, or
        // aborted), and marking it seen would freeze a stale index list
        // exactly when it is about to change. Inside a transaction the
        // cache is never marked clean at all — see [`RESYNC`].
        self.schema_seen.set(if self.txn.get().is_some() {
            RESYNC
        } else {
            gen
        });
        Ok(())
    }

    fn persist_schema(&self, gen: u64) -> RelResult<()> {
        let col_lists: Vec<Vec<usize>> = self
            .indices
            .borrow()
            .iter()
            .map(|ix| ix.cols.clone())
            .collect();
        // Single-record file: rewrite it.
        let old: Vec<(RecordId, Vec<u8>)> = self.schema.scan().collect::<Result<_, _>>()?;
        for (rid, _) in old {
            self.schema.delete(rid)?;
        }
        self.schema
            .insert(&encode_schema(self.arity, &col_lists, gen))?;
        Ok(())
    }

    fn check_arity(&self, t: &Tuple) -> RelResult<()> {
        if t.arity() != self.arity {
            return Err(RelError::Arity {
                expected: self.arity,
                got: t.arity(),
            });
        }
        Ok(())
    }

    /// Cross-structure integrity check: every live heap record must
    /// decode and be indexed exactly once by the primary tree and each
    /// secondary index, and every index entry must point back at a live
    /// heap record with matching bytes. Complements the per-structure
    /// checks in `coral-storage::check` (which verify tree/page shape);
    /// this verifies the structures agree with each other. Read-only;
    /// returns the violations found (empty = clean).
    pub fn check(&self) -> RelResult<Vec<String>> {
        let _read = self.legacy_read_guard();
        self.sync_indices()?;
        let _snap = self.snapshot_read();
        let name = &self.name;
        let mut problems = Vec::new();
        let mut heap_count = 0u64;
        for rec in self.heap.scan() {
            let (rid, bytes) = rec?;
            heap_count += 1;
            let tuple = match crate::encoding::decode_tuple(&bytes) {
                Ok(t) => t,
                Err(e) => {
                    problems.push(format!("{name}: heap record {rid:?} does not decode: {e}"));
                    continue;
                }
            };
            let mut item = bytes.clone();
            item.extend_from_slice(&rid_bytes(rid));
            if !self.primary.contains(&item)? {
                problems.push(format!(
                    "{name}: heap record {rid:?} missing from primary index"
                ));
            }
            for (i, ix) in self.indices.borrow().iter().enumerate() {
                let mut key = encode_cols(&tuple, &ix.cols)?;
                key.extend_from_slice(&rid_bytes(rid));
                if !ix.tree.contains(&key)? {
                    problems.push(format!(
                        "{name}: heap record {rid:?} missing from secondary index {i}"
                    ));
                }
            }
        }
        let mut pk_count = 0u64;
        for item in self.primary.scan_all()? {
            let item = item?;
            pk_count += 1;
            if item.len() < 10 {
                problems.push(format!("{name}: primary entry shorter than a record id"));
                continue;
            }
            let rid = match rid_from_bytes(&item[item.len() - 10..]) {
                Ok(rid) => rid,
                Err(e) => {
                    problems.push(format!("{name}: primary entry has a bad record id: {e}"));
                    continue;
                }
            };
            match self.heap.get(rid) {
                Ok(bytes) if bytes == item[..item.len() - 10] => {}
                Ok(_) => problems.push(format!(
                    "{name}: primary entry for {rid:?} disagrees with heap bytes"
                )),
                Err(_) => problems.push(format!(
                    "{name}: primary entry points at dead heap record {rid:?}"
                )),
            }
        }
        if pk_count != heap_count {
            problems.push(format!(
                "{name}: primary index has {pk_count} entries but heap has {heap_count} records"
            ));
        }
        for (i, ix) in self.indices.borrow().iter().enumerate() {
            let n = ix.tree.len()?;
            if n != heap_count {
                problems.push(format!(
                    "{name}: secondary index {i} has {n} entries but heap has {heap_count} records"
                ));
            }
        }
        Ok(problems)
    }

    /// Reassemble the persisted statistics record. Records carry a
    /// 2-byte sequence prefix because an encoded [`coral_stats::RelStats`]
    /// can exceed one heap page and heap scan order is not insertion
    /// order. Missing or undecodable stats yield a fresh zero state.
    /// Caller holds the relation lock.
    fn load_stats_locked(&self) -> coral_stats::RelStats {
        let mut parts: Vec<(u16, Vec<u8>)> = Vec::new();
        for rec in self.stats_file.scan() {
            let Ok((_, bytes)) = rec else {
                return coral_stats::RelStats::new(self.arity);
            };
            if bytes.len() < 2 {
                return coral_stats::RelStats::new(self.arity);
            }
            let seq = u16::from_be_bytes(bytes[0..2].try_into().unwrap());
            parts.push((seq, bytes[2..].to_vec()));
        }
        parts.sort_by_key(|(seq, _)| *seq);
        let joined: Vec<u8> = parts.into_iter().flat_map(|(_, b)| b).collect();
        coral_stats::RelStats::decode(&joined)
            .filter(|s| s.arity() == self.arity)
            .unwrap_or_else(|| coral_stats::RelStats::new(self.arity))
    }

    /// Rewrite the persisted statistics record. Caller holds the
    /// relation write lock.
    fn store_stats_locked(&self, s: &coral_stats::RelStats) -> RelResult<()> {
        let old: Vec<(RecordId, Vec<u8>)> = self.stats_file.scan().collect::<Result<_, _>>()?;
        for (rid, _) in old {
            self.stats_file.delete(rid)?;
        }
        // Leave headroom under the 4 KiB page for slot bookkeeping.
        const CHUNK: usize = 3000;
        let bytes = s.encode();
        for (i, chunk) in bytes.chunks(CHUNK).enumerate() {
            let mut rec = Vec::with_capacity(chunk.len() + 2);
            rec.extend_from_slice(&(i as u16).to_be_bytes());
            rec.extend_from_slice(chunk);
            self.stats_file.insert(&rec)?;
        }
        Ok(())
    }

    fn update_stats_locked(&self, f: impl FnOnce(&mut coral_stats::RelStats)) -> RelResult<()> {
        let mut s = self.load_stats_locked();
        f(&mut s);
        self.store_stats_locked(&s)
    }

    /// Locate a tuple's record id through the primary index.
    fn find_rid(&self, encoded: &[u8]) -> RelResult<Option<RecordId>> {
        let mut scan = self.primary.scan_prefix(encoded)?;
        match scan.next() {
            Some(item) => {
                let item = item?;
                Ok(Some(rid_from_bytes(&item[encoded.len()..])?))
            }
            None => Ok(None),
        }
    }
}

fn encode_schema(arity: usize, col_lists: &[Vec<usize>], gen: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(arity as u16).to_be_bytes());
    out.extend_from_slice(&(col_lists.len() as u16).to_be_bytes());
    for cols in col_lists {
        out.extend_from_slice(&(cols.len() as u16).to_be_bytes());
        for &c in cols {
            out.extend_from_slice(&(c as u16).to_be_bytes());
        }
    }
    out.extend_from_slice(&gen.to_be_bytes());
    out
}

fn decode_schema(bytes: &[u8]) -> RelResult<(usize, Vec<Vec<usize>>, u64)> {
    let rd = |i: usize| -> RelResult<u16> {
        bytes
            .get(i..i + 2)
            .map(|b| u16::from_be_bytes(b.try_into().unwrap()))
            .ok_or_else(|| RelError::Decode("truncated schema record".into()))
    };
    let arity = rd(0)? as usize;
    let n = rd(2)? as usize;
    let mut lists = Vec::with_capacity(n);
    let mut off = 4;
    for _ in 0..n {
        let k = rd(off)? as usize;
        off += 2;
        let mut cols = Vec::with_capacity(k);
        for _ in 0..k {
            cols.push(rd(off)? as usize);
            off += 2;
        }
        lists.push(cols);
    }
    // Trailing schema generation; records written before generations
    // existed simply end here and read as generation 0.
    let gen = bytes
        .get(off..off + 8)
        .map(|b| u64::from_be_bytes(b.try_into().unwrap()))
        .unwrap_or(0);
    Ok((arity, lists, gen))
}

impl Relation for PersistentRelation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        let _snap = self.snapshot_read();
        self.primary.len().map(|n| n as usize).unwrap_or(0)
    }

    fn insert(&self, tuple: Tuple) -> RelResult<bool> {
        self.check_arity(&tuple)?;
        let encoded = encode_tuple(&tuple)?; // rejects non-primitives
        let _write = self.lock.write().unwrap();
        self.sync_indices()?;
        if self.find_rid(&encoded)?.is_some() {
            return Ok(false);
        }
        let rid = self.heap.insert(&encoded)?;
        let mut item = encoded;
        item.extend_from_slice(&rid_bytes(rid));
        self.primary.insert(&item)?;
        for ix in self.indices.borrow().iter() {
            let mut key = encode_cols(&tuple, &ix.cols)?;
            key.extend_from_slice(&rid_bytes(rid));
            ix.tree.insert(&key)?;
        }
        self.update_stats_locked(|s| s.on_insert(tuple.args()))?;
        self.server.bump_epoch(&self.name);
        crate::meter::add_tuples(1);
        Ok(true)
    }

    fn delete(&self, tuple: &Tuple) -> RelResult<bool> {
        self.check_arity(tuple)?;
        let encoded = encode_tuple(tuple)?;
        let _write = self.lock.write().unwrap();
        self.sync_indices()?;
        let Some(rid) = self.find_rid(&encoded)? else {
            return Ok(false);
        };
        self.heap.delete(rid)?;
        let mut item = encoded;
        item.extend_from_slice(&rid_bytes(rid));
        self.primary.delete(&item)?;
        for ix in self.indices.borrow().iter() {
            let mut key = encode_cols(tuple, &ix.cols)?;
            key.extend_from_slice(&rid_bytes(rid));
            ix.tree.delete(&key)?;
        }
        self.update_stats_locked(|s| s.on_delete(tuple.args()))?;
        self.server.bump_epoch(&self.name);
        crate::meter::add_deleted(1);
        Ok(true)
    }

    fn scan(&self) -> TupleIter {
        // MVCC: pin a snapshot and hand it to the lazy scan so it reads a
        // stable commit point without blocking writers. Legacy: the lazy
        // heap scan relies on per-page atomicity only, as before.
        let scan = match self.snapshot_read() {
            Some((guard, _scope)) => {
                let view = View::Snapshot(guard.ts());
                self.heap.scan_with(view, Some(guard))
            }
            None => self.heap.scan(),
        };
        Box::new(scan.map(|r| match r {
            Ok((_, bytes)) => crate::encoding::decode_tuple(&bytes),
            Err(e) => Err(e.into()),
        }))
    }

    fn lookup(&self, pattern: &[Term]) -> TupleIter {
        // Legacy: shared lock while the indexed path walks tree + heap
        // pages, so a concurrent writer cannot split a node out from under
        // the descent. MVCC: no lock — the descent reads a pinned snapshot
        // and the indexed path materialises before the view scope drops.
        let _read = self.legacy_read_guard();
        if let Err(e) = self.sync_indices() {
            return Box::new(std::iter::once(Err(e)));
        }
        let snap = self.snapshot_read();
        // Choose the secondary index with the most columns bound to
        // ground primitives by the pattern; else fall back to a filtered
        // heap scan.
        let indices = self.indices.borrow();
        let mut best: Option<(usize, Vec<u8>)> = None;
        for (i, ix) in indices.iter().enumerate() {
            if ix.cols.iter().all(|&c| pattern[c].is_ground()) {
                let probe = Tuple::new(pattern.to_vec());
                if let Ok(key) = encode_cols(&probe, &ix.cols) {
                    let better = match &best {
                        None => true,
                        Some((b, _)) => ix.cols.len() > indices[*b].cols.len(),
                    };
                    if better {
                        best = Some((i, key));
                    }
                }
            }
        }
        match best {
            Some((i, key)) => {
                let tree_scan = match indices[i].tree.scan_prefix(&key) {
                    Ok(s) => s,
                    Err(e) => return Box::new(std::iter::once(Err(e.into()))),
                };
                let heap_rids: Vec<RelResult<RecordId>> = tree_scan
                    .map(|item| {
                        let item = item?;
                        rid_from_bytes(&item[item.len() - 10..])
                    })
                    .collect();
                let mut out: Vec<RelResult<Tuple>> = Vec::with_capacity(heap_rids.len());
                for rid in heap_rids {
                    match rid {
                        Ok(rid) => match self.heap.get(rid) {
                            Ok(bytes) => out.push(crate::encoding::decode_tuple(&bytes)),
                            Err(e) => out.push(Err(e.into())),
                        },
                        Err(e) => out.push(Err(e)),
                    }
                }
                Box::new(out.into_iter())
            }
            None => {
                let pattern = pattern.to_vec();
                // The lazy fallback scan outlives this call, so it carries
                // its own snapshot pin (MVCC) or view (legacy/txn).
                let scan = match &snap {
                    Some((guard, _)) => self
                        .heap
                        .scan_with(View::Snapshot(guard.ts()), Some(Arc::clone(guard))),
                    None => self.heap.scan(),
                };
                Box::new(scan.filter_map(move |r| match r {
                    Ok((_, bytes)) => match crate::encoding::decode_tuple(&bytes) {
                        Ok(t) => {
                            if match_args(&pattern, t.args()).is_some() {
                                Some(Ok(t))
                            } else {
                                None
                            }
                        }
                        Err(e) => Some(Err(e)),
                    },
                    Err(e) => Some(Err(e.into())),
                }))
            }
        }
    }

    fn make_index(&self, spec: IndexSpec) -> RelResult<()> {
        let cols = match spec {
            IndexSpec::Args(cols) => cols,
            IndexSpec::Pattern { .. } => {
                return Err(RelError::BadIndex(
                    "persistent relations hold primitive fields only; pattern indices apply to in-memory relations".into(),
                ))
            }
        };
        if cols.is_empty() || cols.iter().any(|&c| c >= self.arity) {
            return Err(RelError::BadIndex(format!(
                "bad column list {cols:?} for arity {}",
                self.arity
            )));
        }
        let _write = self.lock.write().unwrap();
        self.sync_indices()?;
        // Idempotent: an index over these columns already exists (often
        // another session auto-indexed first). Creating a duplicate
        // would double every write and bloat the catalog.
        if self.indices.borrow().iter().any(|ix| ix.cols == cols) {
            return Ok(());
        }
        // Touch the stats record before scanning: every transactional
        // insert/delete writes it too, so a concurrent mutator's
        // transaction and this build always write-conflict and one of
        // them retries. Without the touch the pair can write-skew — a
        // mutation invisible to the retrofit scan below (uncommitted, or
        // committed onto a page the scan never read) commits anyway and
        // leaves the new index silently out of step with the heap.
        self.update_stats_locked(|_| {})?;
        let ordinal = self.indices.borrow().len();
        // The view must be in force for the *creation*: a brand-new
        // tree's meta initialization is a write, and inside a
        // transaction it has to belong to that transaction.
        let tree = self
            .server
            .btree_with_view(&format!("{}.idx{ordinal}", self.name), self.base_view())?;
        // Retrofit over existing tuples.
        for rec in self.heap.scan() {
            let (rid, bytes) = rec?;
            let tuple = crate::encoding::decode_tuple(&bytes)?;
            let mut key = encode_cols(&tuple, &cols)?;
            key.extend_from_slice(&rid_bytes(rid));
            tree.insert(&key)?;
        }
        self.indices
            .borrow_mut()
            .push(SecondaryIndex { cols, tree });
        let gen = self.server.bump_schema_epoch(&self.name);
        self.persist_schema(gen)?;
        // Inside a transaction the new list must not be cached: an abort
        // reverts the persisted schema but not this handle's RefCell, and
        // a "clean" cache would then route writes into a phantom index.
        self.schema_seen.set(if self.txn.get().is_some() {
            RESYNC
        } else {
            gen
        });
        Ok(())
    }

    fn describe(&self) -> String {
        format!(
            "persistent relation {:?}, arity {}, {} tuples, {} secondary indices",
            self.name,
            self.arity,
            self.len(),
            self.indices.borrow().len()
        )
    }

    fn stats(&self) -> Option<coral_stats::RelStats> {
        let _read = self.legacy_read_guard();
        let _snap = self.snapshot_read();
        Some(self.load_stats_locked())
    }

    fn analyze(&self) -> RelResult<()> {
        let _write = self.lock.write().unwrap();
        let mut s = coral_stats::RelStats::new(self.arity);
        for rec in self.heap.scan() {
            let (_, bytes) = rec?;
            let tuple = crate::encoding::decode_tuple(&bytes)?;
            s.on_insert(tuple.args());
        }
        self.store_stats_locked(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_storage::{StorageError, StorageServer};
    use std::path::PathBuf;
    use std::time::Duration;

    fn server(name: &str) -> StorageClient {
        let d: PathBuf = std::env::temp_dir().join(format!(
            "coral-persistent-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        StorageServer::open(&d, 64).unwrap()
    }

    /// A server with MVCC pinned on, independent of `CORAL_MVCC` — for
    /// tests of snapshot/transaction semantics that the legacy RwLock
    /// path deliberately does not provide.
    fn server_mvcc(name: &str) -> StorageClient {
        let d: PathBuf = std::env::temp_dir().join(format!(
            "coral-persistent-test-{}-{name}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        StorageServer::open_with_mode(&d, 64, std::sync::Arc::new(coral_storage::StdVfs), true)
            .unwrap()
    }

    fn flight(from: &str, to: &str, cost: i64) -> Tuple {
        Tuple::ground(vec![Term::str(from), Term::str(to), Term::int(cost)])
    }

    #[test]
    fn insert_scan_dedup() {
        let srv = server("basic");
        let r = PersistentRelation::open(&srv, "flights", 3).unwrap();
        assert!(r.insert(flight("msn", "ord", 120)).unwrap());
        assert!(r.insert(flight("ord", "jfk", 250)).unwrap());
        assert!(!r.insert(flight("msn", "ord", 120)).unwrap(), "duplicate");
        assert_eq!(r.len(), 2);
        let mut all: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        all.sort_by(|a, b| a.args()[0].order_cmp(&b.args()[0]));
        assert_eq!(
            all,
            vec![flight("msn", "ord", 120), flight("ord", "jfk", 250)]
        );
    }

    #[test]
    fn delete_fires_stats_and_meter_symmetrically() {
        let srv = server("delete-symmetry");
        let r = PersistentRelation::open(&srv, "flights", 3).unwrap();
        r.insert(flight("msn", "ord", 120)).unwrap();
        r.insert(flight("ord", "jfk", 250)).unwrap();
        assert_eq!(r.stats().unwrap().cardinality(), 2);
        let del = crate::meter::tuples_deleted();
        assert!(r.delete(&flight("msn", "ord", 120)).unwrap());
        assert_eq!(
            r.stats().unwrap().cardinality(),
            1,
            "persisted stats on_delete mirrors on_insert"
        );
        assert_eq!(crate::meter::tuples_deleted() - del, 1);
        assert!(!r.delete(&flight("msn", "ord", 120)).unwrap(), "miss");
        assert_eq!(r.stats().unwrap().cardinality(), 1);
        assert_eq!(crate::meter::tuples_deleted() - del, 1);
    }

    #[test]
    fn indexed_lookup_and_fallback() {
        let srv = server("lookup");
        let r = PersistentRelation::open(&srv, "flights", 3).unwrap();
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        for i in 0..200i64 {
            r.insert(flight(&format!("c{}", i % 10), &format!("c{}", i % 7), i))
                .unwrap();
        }
        let hits: Vec<Tuple> = r
            .lookup(&[Term::str("c3"), Term::var(0), Term::var(1)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(hits.len(), 20);
        assert!(hits.iter().all(|t| t.args()[0] == Term::str("c3")));
        // Unindexed column: falls back to a filtered scan.
        let hits2 = r
            .lookup(&[Term::var(0), Term::str("c2"), Term::var(1)])
            .count();
        assert!(hits2 > 0);
    }

    #[test]
    fn delete_updates_indices() {
        let srv = server("delete");
        let r = PersistentRelation::open(&srv, "f", 3).unwrap();
        r.make_index(IndexSpec::Args(vec![0])).unwrap();
        r.insert(flight("a", "b", 1)).unwrap();
        r.insert(flight("a", "c", 2)).unwrap();
        assert!(r.delete(&flight("a", "b", 1)).unwrap());
        assert!(!r.delete(&flight("a", "b", 1)).unwrap());
        let hits = r
            .lookup(&[Term::str("a"), Term::var(0), Term::var(1)])
            .count();
        assert_eq!(hits, 1);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn reopen_restores_schema_and_data() {
        let d: PathBuf = std::env::temp_dir().join(format!(
            "coral-persistent-test-{}-reopen",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        {
            let srv = StorageServer::open(&d, 32).unwrap();
            let r = PersistentRelation::open(&srv, "f", 3).unwrap();
            r.make_index(IndexSpec::Args(vec![1])).unwrap();
            r.insert(flight("a", "b", 1)).unwrap();
            srv.checkpoint().unwrap();
        }
        {
            let srv = StorageServer::open(&d, 32).unwrap();
            let r = PersistentRelation::open(&srv, "f", 3).unwrap();
            assert_eq!(r.len(), 1);
            // Index on column 1 survived: lookup uses it.
            let hits = r
                .lookup(&[Term::var(0), Term::str("b"), Term::var(1)])
                .count();
            assert_eq!(hits, 1);
            // Arity mismatch on reopen is rejected.
            assert!(PersistentRelation::open(&srv, "f", 2).is_err());
        }
    }

    #[test]
    fn stats_maintained_and_survive_reopen() {
        let d: PathBuf = std::env::temp_dir().join(format!(
            "coral-persistent-test-{}-stats",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        {
            let srv = StorageServer::open(&d, 32).unwrap();
            let r = PersistentRelation::open(&srv, "f", 3).unwrap();
            for i in 0..30i64 {
                r.insert(flight(&format!("c{}", i % 5), &format!("d{i}"), i))
                    .unwrap();
            }
            let s = Relation::stats(&r).unwrap();
            assert_eq!(s.cardinality(), 30);
            assert_eq!(s.distinct(0), 5);
            assert_eq!(s.distinct(1), 30);
            r.delete(&flight("c0", "d0", 0)).unwrap();
            assert_eq!(Relation::stats(&r).unwrap().cardinality(), 29);
            srv.checkpoint().unwrap();
        }
        {
            let srv = StorageServer::open(&d, 32).unwrap();
            let r = PersistentRelation::open(&srv, "f", 3).unwrap();
            let s = Relation::stats(&r).unwrap();
            assert_eq!(s.cardinality(), 29, "stats survive reopen");
            assert_eq!(s.distinct(0), 5);
            // ANALYZE rebuilds the same values from a full scan.
            Relation::analyze(&r).unwrap();
            let s2 = Relation::stats(&r).unwrap();
            assert_eq!(s2.cardinality(), 29);
            assert_eq!(s2.distinct(1), 29);
        }
    }

    #[test]
    fn non_primitive_fields_rejected() {
        let srv = server("nonprim");
        let r = PersistentRelation::open(&srv, "f", 1).unwrap();
        assert!(matches!(
            r.insert(Tuple::new(vec![Term::apps("f", vec![Term::int(1)])])),
            Err(RelError::NonPrimitive(_))
        ));
        assert!(matches!(
            r.insert(Tuple::new(vec![Term::var(0)])),
            Err(RelError::NonPrimitive(_))
        ));
        assert_eq!(r.len(), 0);
    }

    #[test]
    fn pattern_index_rejected() {
        let srv = server("patidx");
        let r = PersistentRelation::open(&srv, "f", 2).unwrap();
        assert!(r
            .make_index(IndexSpec::Pattern {
                pattern: vec![Term::var(0), Term::var(1)],
                key_vars: vec![coral_term::VarId(0)],
            })
            .is_err());
    }

    /// Many threads hammering ONE relation through their own handles —
    /// the shape of concurrent server sessions writing the same
    /// persistent relation. Without the relation-wide write lock the
    /// interleaved B+-tree splits lose tuples or corrupt the tree.
    #[test]
    fn high_contention_same_relation_inserts() {
        let srv = server("contend");
        {
            let r = PersistentRelation::open(&srv, "shared", 2).unwrap();
            r.make_index(IndexSpec::Args(vec![0])).unwrap();
        }
        let threads: Vec<_> = (0..4i64)
            .map(|w| {
                let client = srv.clone();
                std::thread::spawn(move || {
                    // One handle per worker, as server sessions have.
                    let r = PersistentRelation::open(&client, "shared", 2).unwrap();
                    for i in 0..500i64 {
                        let t = Tuple::ground(vec![
                            Term::int(w * 10_000 + i),
                            Term::str(&format!("w{w}-row{i}")),
                        ]);
                        assert!(r.insert(t).unwrap());
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let r = PersistentRelation::open(&srv, "shared", 2).unwrap();
        assert_eq!(r.len(), 2000, "no tuple lost to an interleaved split");
        let all: Vec<Tuple> = r.scan().collect::<RelResult<_>>().unwrap();
        assert_eq!(all.len(), 2000);
        for w in 0..4i64 {
            // Every sampled tuple is still findable through the primary
            // tree (the duplicate probe walks it)…
            for i in (0..500i64).step_by(53) {
                let t = Tuple::ground(vec![
                    Term::int(w * 10_000 + i),
                    Term::str(&format!("w{w}-row{i}")),
                ]);
                assert!(!r.insert(t).unwrap(), "tuple lost or tree corrupt");
            }
            // …and the secondary index agrees with the heap.
            let hits: Vec<Tuple> = r
                .lookup(&[Term::int(w * 10_000 + 7), Term::var(0)])
                .collect::<RelResult<_>>()
                .unwrap();
            assert_eq!(hits.len(), 1);
        }
    }

    fn row(i: i64) -> Tuple {
        Tuple::ground(vec![Term::int(i), Term::str(&format!("row-{i}"))])
    }

    /// A lazy scan pins the commit point it started from: tuples
    /// committed afterwards by another handle stay invisible to it.
    #[test]
    fn snapshot_scan_isolated_from_concurrent_writer() {
        let srv = server_mvcc("snapscan");
        assert!(srv.mvcc_enabled());
        let r = PersistentRelation::open(&srv, "f", 2).unwrap();
        for i in 0..10 {
            assert!(r.insert(row(i)).unwrap());
        }
        let scan = r.scan(); // pins a snapshot before the writer runs
        let w = PersistentRelation::open(&srv, "f", 2).unwrap();
        for i in 10..20 {
            assert!(w.insert(row(i)).unwrap());
        }
        let seen: Vec<Tuple> = scan.collect::<RelResult<_>>().unwrap();
        assert_eq!(seen.len(), 10, "snapshot scan ignores later commits");
        assert!(seen
            .iter()
            .all(|t| matches!(t.args()[0], Term::Int(i) if i < 10)));
        assert_eq!(r.len(), 20, "a fresh read sees everything");
    }

    #[test]
    fn txn_writes_invisible_until_commit() {
        let srv = server_mvcc("txnvis");
        let r = PersistentRelation::open(&srv, "f", 2).unwrap();
        let reader = PersistentRelation::open(&srv, "f", 2).unwrap();
        let t = srv.begin().unwrap();
        r.set_txn(Some(t));
        assert!(r.insert(row(1)).unwrap());
        assert_eq!(r.len(), 1, "a transaction sees its own writes");
        assert_eq!(reader.len(), 0, "uncommitted writes stay private");
        srv.commit(t).unwrap();
        r.set_txn(None);
        assert_eq!(reader.len(), 1, "commit publishes the write");
    }

    #[test]
    fn txn_conflict_is_retryable_after_commit() {
        let srv = server_mvcc("txnconf");
        srv.set_lock_timeout(Duration::from_millis(0));
        let r1 = PersistentRelation::open(&srv, "f", 2).unwrap();
        let r2 = PersistentRelation::open(&srv, "f", 2).unwrap();
        let t1 = srv.begin().unwrap();
        r1.set_txn(Some(t1));
        assert!(r1.insert(row(1)).unwrap());
        let t2 = srv.begin().unwrap();
        r2.set_txn(Some(t2));
        let err = r2.insert(row(2)).unwrap_err();
        assert!(
            matches!(err, RelError::Storage(StorageError::TxnConflict(_))),
            "concurrent writers to one relation conflict retryably: {err}"
        );
        srv.abort(t2).unwrap();
        r2.set_txn(None);
        srv.commit(t1).unwrap();
        r1.set_txn(None);
        // The loser retries after the winner commits and succeeds.
        assert!(r2.insert(row(2)).unwrap());
        assert_eq!(r2.len(), 2);
    }

    #[test]
    fn aborted_txn_leaves_no_trace() {
        let srv = server("txnabort");
        let r = PersistentRelation::open(&srv, "f", 2).unwrap();
        assert!(r.insert(row(1)).unwrap());
        let t = srv.begin().unwrap();
        r.set_txn(Some(t));
        assert!(r.insert(row(2)).unwrap());
        assert!(r.delete(&row(1)).unwrap());
        srv.abort(t).unwrap();
        r.set_txn(None);
        let all: Vec<Tuple> = r.scan().collect::<RelResult<_>>().unwrap();
        assert_eq!(all, vec![row(1)], "abort rolled every structure back");
        assert_eq!(r.stats().unwrap().cardinality(), 1);
        assert!(r.check().unwrap().is_empty());
    }

    #[test]
    fn epochs_bump_only_on_applied_mutations() {
        let srv = server("epochs");
        let r = PersistentRelation::open(&srv, "f", 2).unwrap();
        let e0 = r.epoch();
        assert!(r.insert(row(1)).unwrap());
        assert_eq!(r.epoch(), e0 + 1);
        assert!(!r.insert(row(1)).unwrap());
        assert_eq!(r.epoch(), e0 + 1, "duplicate insert does not bump");
        assert!(r.delete(&row(1)).unwrap());
        assert_eq!(r.epoch(), e0 + 2);
        assert!(!r.delete(&row(1)).unwrap());
        assert_eq!(r.epoch(), e0 + 2, "missed delete does not bump");
    }

    #[test]
    fn buffer_pool_paging_is_observable() {
        let srv = server("paging");
        let r = PersistentRelation::open(&srv, "big", 2).unwrap();
        for i in 0..2000i64 {
            r.insert(Tuple::ground(vec![
                Term::int(i),
                Term::str(&format!("row-{i}")),
            ]))
            .unwrap();
        }
        srv.checkpoint().unwrap();
        srv.pool().evict_all().unwrap();
        srv.reset_stats();
        assert_eq!(r.scan().count(), 2000);
        let s = srv.stats();
        assert!(s.misses > 3, "cold scan faults pages in: {s:?}");
        srv.reset_stats();
        assert_eq!(r.scan().count(), 2000);
        let s2 = srv.stats();
        assert!(s2.hits > s2.misses, "warm scan mostly hits: {s2:?}");
    }
}
