//! Order-preserving encoding of primitive-typed tuples.
//!
//! Persistent relations are "restricted to have fields of primitive types
//! only" and the data "is stored on disk in its machine representation"
//! (§3.1–§3.2). The encoding here is self-delimiting (tuples decode
//! without a schema) and order-preserving *within each type*, so B+-tree
//! prefix scans implement exact-key index lookups. Fields of different
//! types order by a type tag; cross-type numeric ordering is not needed
//! by any index operation.
//!
//! Layout per field:
//!
//! ```text
//! 0x10 ‖ (i64 big-endian, sign bit flipped)     integer
//! 0x20 ‖ (f64 order-preserving bits, BE)        double
//! 0x30 ‖ escaped bytes ‖ 0x00 0x00              string (0x00 → 0x00 0x01)
//! ```
//!
//! The **wire** variants ([`encode_term_wire`] / [`decode_term_wire`] /
//! [`encode_tuple_wire`] / [`decode_tuple_wire`]) extend the storage
//! encoding with tags for every transportable term the network layer
//! (`coral-net`) must ship — arbitrary-precision integers, variables,
//! and nested functor/list terms. These tags are *not* order-preserving
//! and never reach a B+-tree; primitives keep the storage layout, so a
//! primitive-only wire tuple is byte-compatible field-by-field:
//!
//! ```text
//! 0x40 ‖ u32 len ‖ decimal ASCII                bignum
//! 0x41 ‖ u32 var id (BE)                        variable
//! 0x42 ‖ u32 len ‖ functor name ‖ u32 arity ‖ args…   functor/list
//! ```
//!
//! ADT values are process-local (their behaviour lives in registered
//! Rust code) and are rejected on the wire like they are on disk.

use crate::error::{RelError, RelResult};
use coral_term::{Term, Tuple};

const TAG_INT: u8 = 0x10;
const TAG_DOUBLE: u8 = 0x20;
const TAG_STR: u8 = 0x30;
const TAG_BIG: u8 = 0x40;
const TAG_VAR: u8 = 0x41;
const TAG_APP: u8 = 0x42;

/// Append the encoding of one primitive term.
pub fn encode_term(out: &mut Vec<u8>, t: &Term) -> RelResult<()> {
    match t {
        Term::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes());
            Ok(())
        }
        Term::Double(d) => {
            out.push(TAG_DOUBLE);
            let bits = d.get().to_bits();
            // Standard total-order transform: flip all bits of negatives,
            // flip only the sign bit of non-negatives.
            let key = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&key.to_be_bytes());
            Ok(())
        }
        Term::Str(s) => {
            out.push(TAG_STR);
            for b in s.as_str().bytes() {
                out.push(b);
                if b == 0 {
                    out.push(1);
                }
            }
            out.push(0);
            out.push(0);
            Ok(())
        }
        other => Err(RelError::NonPrimitive(format!(
            "cannot store {other} persistently"
        ))),
    }
}

/// Encode a whole tuple (all fields primitive).
pub fn encode_tuple(tuple: &Tuple) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(tuple.arity() * 12);
    for t in tuple.args() {
        encode_term(&mut out, t)?;
    }
    Ok(out)
}

/// Encode a projection of the tuple (index key).
pub fn encode_cols(tuple: &Tuple, cols: &[usize]) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(cols.len() * 12);
    for &c in cols {
        encode_term(&mut out, &tuple.args()[c])?;
    }
    Ok(out)
}

/// Decode one term, returning it and the bytes consumed.
pub fn decode_term(bytes: &[u8]) -> RelResult<(Term, usize)> {
    match bytes.first() {
        Some(&TAG_INT) => {
            if bytes.len() < 9 {
                return Err(RelError::Decode("truncated integer".into()));
            }
            let raw = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
            Ok((Term::int((raw ^ (1 << 63)) as i64), 9))
        }
        Some(&TAG_DOUBLE) => {
            if bytes.len() < 9 {
                return Err(RelError::Decode("truncated double".into()));
            }
            let key = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
            let bits = if key & (1 << 63) != 0 {
                key ^ (1 << 63)
            } else {
                !key
            };
            Ok((Term::double(f64::from_bits(bits)), 9))
        }
        Some(&TAG_STR) => {
            let mut s = Vec::new();
            let mut i = 1;
            loop {
                match bytes.get(i) {
                    Some(0) => match bytes.get(i + 1) {
                        Some(0) => {
                            let text = String::from_utf8(s)
                                .map_err(|_| RelError::Decode("non-UTF8 string".into()))?;
                            return Ok((Term::str(&text), i + 2));
                        }
                        Some(1) => {
                            s.push(0);
                            i += 2;
                        }
                        _ => return Err(RelError::Decode("bad string escape".into())),
                    },
                    Some(&b) => {
                        s.push(b);
                        i += 1;
                    }
                    None => return Err(RelError::Decode("unterminated string".into())),
                }
            }
        }
        Some(&t) => Err(RelError::Decode(format!("unknown field tag {t:#x}"))),
        None => Err(RelError::Decode("empty field".into())),
    }
}

fn push_len_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_be_bytes());
    out.extend_from_slice(bytes);
}

fn read_u32(bytes: &[u8], at: usize) -> RelResult<u32> {
    bytes
        .get(at..at + 4)
        .map(|b| u32::from_be_bytes(b.try_into().unwrap()))
        .ok_or_else(|| RelError::Decode("truncated length".into()))
}

fn read_len_str(bytes: &[u8], at: usize) -> RelResult<(&str, usize)> {
    let len = read_u32(bytes, at)? as usize;
    let raw = bytes
        .get(at + 4..at + 4 + len)
        .ok_or_else(|| RelError::Decode("truncated string body".into()))?;
    let s = std::str::from_utf8(raw).map_err(|_| RelError::Decode("non-UTF8 string".into()))?;
    Ok((s, at + 4 + len))
}

/// Append the wire encoding of one term (any transportable kind).
pub fn encode_term_wire(out: &mut Vec<u8>, t: &Term) -> RelResult<()> {
    match t {
        Term::Int(_) | Term::Double(_) | Term::Str(_) => encode_term(out, t),
        Term::Big(b) => {
            out.push(TAG_BIG);
            push_len_bytes(out, b.to_string().as_bytes());
            Ok(())
        }
        Term::Var(v) => {
            out.push(TAG_VAR);
            out.extend_from_slice(&v.0.to_be_bytes());
            Ok(())
        }
        Term::App(a) => {
            out.push(TAG_APP);
            push_len_bytes(out, a.sym().as_str().as_bytes());
            out.extend_from_slice(&(a.arity() as u32).to_be_bytes());
            for arg in a.args() {
                encode_term_wire(out, arg)?;
            }
            Ok(())
        }
        Term::Adt(a) => Err(RelError::NonPrimitive(format!(
            "ADT value {} is process-local and cannot be sent over the wire",
            a.print()
        ))),
    }
}

/// Maximum functor-nesting depth accepted by the wire decoder. Deeper
/// terms in a frame are a protocol error: decoding recurses per level,
/// so without a limit a corrupt or malicious frame of nested functor
/// headers would overflow the decoder's stack and abort the process
/// instead of surfacing [`RelError::Decode`].
pub const MAX_WIRE_DEPTH: usize = 128;

/// Decode one wire term, returning it and the bytes consumed.
pub fn decode_term_wire(bytes: &[u8]) -> RelResult<(Term, usize)> {
    decode_term_wire_depth(bytes, 0)
}

fn decode_term_wire_depth(bytes: &[u8], depth: usize) -> RelResult<(Term, usize)> {
    if depth > MAX_WIRE_DEPTH {
        return Err(RelError::Decode(format!(
            "term nesting exceeds the wire limit of {MAX_WIRE_DEPTH}"
        )));
    }
    match bytes.first() {
        Some(&TAG_BIG) => {
            let (s, end) = read_len_str(bytes, 1)?;
            let big = s
                .parse()
                .map_err(|_| RelError::Decode(format!("bad bignum literal {s:?}")))?;
            Ok((Term::big(big), end))
        }
        Some(&TAG_VAR) => {
            let id = read_u32(bytes, 1)?;
            Ok((Term::var(id), 5))
        }
        Some(&TAG_APP) => {
            let (name, mut at) = read_len_str(bytes, 1)?;
            let sym = coral_term::Symbol::intern(name);
            let arity = read_u32(bytes, at)? as usize;
            at += 4;
            // The arity is untrusted: every argument takes ≥ 1 byte, so
            // the remaining input bounds any honest arity and a huge
            // declared value cannot reserve more than the frame's size.
            let mut args = Vec::with_capacity(arity.min(bytes.len() - at));
            for _ in 0..arity {
                let (arg, n) = decode_term_wire_depth(&bytes[at..], depth + 1)?;
                args.push(arg);
                at += n;
            }
            Ok((Term::app(sym, args), at))
        }
        _ => decode_term(bytes),
    }
}

/// Encode a whole tuple for the wire: arity prefix, then self-delimiting
/// wire terms. Unlike [`encode_tuple`], the arity prefix makes the
/// encoding self-delimiting *as a whole*, so tuples can be concatenated
/// in one network frame (and the empty tuple is representable).
pub fn encode_tuple_wire(tuple: &Tuple) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(4 + tuple.arity() * 12);
    out.extend_from_slice(&(tuple.arity() as u32).to_be_bytes());
    for t in tuple.args() {
        encode_term_wire(&mut out, t)?;
    }
    Ok(out)
}

/// Decode one wire tuple, returning it and the bytes consumed. Variable
/// identity is preserved: `p(X, X)` and `p(X, Y)` decode to distinct
/// tuples.
pub fn decode_tuple_wire(bytes: &[u8]) -> RelResult<(Tuple, usize)> {
    let arity = read_u32(bytes, 0)? as usize;
    let mut at = 4;
    // Untrusted arity: bound the reservation by the bytes actually
    // present (each field encodes to ≥ 1 byte).
    let mut args = Vec::with_capacity(arity.min(bytes.len() - at));
    for _ in 0..arity {
        let (t, n) = decode_term_wire(&bytes[at..])?;
        args.push(t);
        at += n;
    }
    Ok((Tuple::new(args), at))
}

/// Encode a columnar batch for the wire: batch arity and row count, then
/// every row (flat and side-table alike) as a self-delimiting wire
/// tuple, in row order. The flat/side split is *not* transmitted — it is
/// a physical layout choice, and the receiver rebuilds it from the row
/// contents, so both ends always classify rows with their own
/// [`ColumnarBatch::from_tuples`] rules.
///
/// [`ColumnarBatch::from_tuples`]: crate::ColumnarBatch::from_tuples
pub fn encode_batch_wire(batch: &crate::ColumnarBatch) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(8 + batch.len() * (4 + batch.arity() * 12));
    out.extend_from_slice(&(batch.arity() as u32).to_be_bytes());
    out.extend_from_slice(&(batch.len() as u32).to_be_bytes());
    for row in 0..batch.len() {
        out.extend(encode_tuple_wire(&batch.row_tuple(row))?);
    }
    Ok(out)
}

/// Decode one wire batch, returning it and the bytes consumed.
pub fn decode_batch_wire(bytes: &[u8]) -> RelResult<(crate::ColumnarBatch, usize)> {
    let arity = read_u32(bytes, 0)? as usize;
    let nrows = read_u32(bytes, 4)? as usize;
    let mut at = 8;
    // Untrusted row count: bound the reservation by the bytes present
    // (each row encodes to ≥ 4 bytes).
    let mut rows = Vec::with_capacity(nrows.min(bytes.len().saturating_sub(at) / 4));
    for _ in 0..nrows {
        let (t, n) = decode_tuple_wire(&bytes[at..])?;
        if t.arity() != arity {
            return Err(RelError::Decode(format!(
                "batch row arity {} does not match batch arity {arity}",
                t.arity()
            )));
        }
        rows.push(t);
        at += n;
    }
    Ok((crate::ColumnarBatch::from_tuples(arity, rows), at))
}

/// Decode a whole tuple.
pub fn decode_tuple(mut bytes: &[u8]) -> RelResult<Tuple> {
    let mut args = Vec::new();
    while !bytes.is_empty() {
        let (t, n) = decode_term(bytes)?;
        args.push(t);
        bytes = &bytes[n..];
    }
    Ok(Tuple::ground(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: Term) -> Term {
        let mut buf = Vec::new();
        encode_term(&mut buf, &t).unwrap();
        let (back, n) = decode_term(&buf).unwrap();
        assert_eq!(n, buf.len());
        back
    }

    #[test]
    fn roundtrips() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(roundtrip(Term::int(v)), Term::int(v));
        }
        for v in [0.0, -0.0, 1.5, -2.25, f64::MAX, f64::MIN_POSITIVE, -1e300] {
            assert_eq!(roundtrip(Term::double(v)), Term::double(v));
        }
        for s in ["", "a", "hello world", "with\0nul", "naïve-ütf8"] {
            assert_eq!(roundtrip(Term::str(s)), Term::str(s));
        }
    }

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        let mut encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|&v| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::int(v)).unwrap();
                b
            })
            .collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn double_encoding_preserves_order() {
        let vals = [-1e308, -2.5, -0.0, 0.0, 1e-300, 3.25, 1e308];
        let encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|&v| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::double(v)).unwrap();
                b
            })
            .collect();
        for w in encoded.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn string_encoding_preserves_order_and_prefix_freedom() {
        let vals = ["", "a", "ab", "abc", "b"];
        let encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|s| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::str(s)).unwrap();
                b
            })
            .collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Embedded NULs do not collide with the terminator.
        let mut a = Vec::new();
        encode_term(&mut a, &Term::str("x\0y")).unwrap();
        let mut b = Vec::new();
        encode_term(&mut b, &Term::str("x")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::ground(vec![Term::int(-5), Term::str("abc"), Term::double(2.5)]);
        let enc = encode_tuple(&t).unwrap();
        assert_eq!(decode_tuple(&enc).unwrap(), t);
        let empty = Tuple::ground(vec![]);
        assert_eq!(decode_tuple(&encode_tuple(&empty).unwrap()).unwrap(), empty);
    }

    #[test]
    fn non_primitives_rejected() {
        let mut buf = Vec::new();
        assert!(encode_term(&mut buf, &Term::var(0)).is_err());
        assert!(encode_term(&mut buf, &Term::apps("f", vec![])).is_err());
        assert!(encode_term(&mut buf, &Term::big("9".repeat(30).parse().unwrap())).is_err());
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(decode_term(&[]).is_err());
        assert!(decode_term(&[0x99]).is_err());
        assert!(decode_term(&[TAG_INT, 1, 2]).is_err());
        assert!(decode_term(&[TAG_STR, b'a']).is_err());
        assert!(decode_term(&[TAG_STR, 0, 9]).is_err());
    }

    // ----------------------------------------------------------------
    // Wire-path round-trips (the coral-net transport encoding).
    // ----------------------------------------------------------------

    fn wire_roundtrip(t: &Term) -> Term {
        let mut buf = Vec::new();
        encode_term_wire(&mut buf, t).unwrap();
        let (back, n) = decode_term_wire(&buf).unwrap();
        assert_eq!(n, buf.len(), "wire term must consume all its bytes");
        back
    }

    fn wire_tuple_roundtrip(t: &Tuple) -> Tuple {
        let enc = encode_tuple_wire(t).unwrap();
        let (back, n) = decode_tuple_wire(&enc).unwrap();
        assert_eq!(n, enc.len());
        back
    }

    #[test]
    fn wire_roundtrips_primitives_same_as_storage() {
        for t in [
            Term::int(i64::MIN),
            Term::int(42),
            Term::double(-2.25),
            Term::str("with\0nul"),
            Term::str(""),
        ] {
            assert_eq!(wire_roundtrip(&t), t);
            // Primitive wire bytes are exactly the storage bytes.
            let (mut a, mut b) = (Vec::new(), Vec::new());
            encode_term(&mut a, &t).unwrap();
            encode_term_wire(&mut b, &t).unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn wire_roundtrips_bignums() {
        for s in [
            "99999999999999999999999999999999999999",
            "-12345678901234567890123456789",
            "0",
        ] {
            let t = Term::big(s.parse().unwrap());
            assert_eq!(wire_roundtrip(&t), t);
        }
        // A bignum the storage encoding rejects still travels the wire.
        let big = Term::big("7".repeat(50).parse().unwrap());
        let mut buf = Vec::new();
        assert!(encode_term(&mut buf, &big).is_err());
        assert_eq!(wire_roundtrip(&big), big);
    }

    #[test]
    fn wire_roundtrips_non_ground_terms() {
        let t = Term::apps("f", vec![Term::var(0), Term::int(1), Term::var(3)]);
        let back = wire_roundtrip(&t);
        assert_eq!(back, t);
        assert!(!back.is_ground());
        assert_eq!(wire_roundtrip(&Term::var(7)), Term::var(7));
    }

    #[test]
    fn wire_roundtrips_nested_functors_and_lists() {
        let nested = Term::apps(
            "edge",
            vec![
                Term::apps("node", vec![Term::int(1), Term::str("a b")]),
                Term::list(vec![
                    Term::int(1),
                    Term::list(vec![Term::str("x"), Term::var(0)]),
                    Term::big("88888888888888888888".parse().unwrap()),
                ]),
            ],
        );
        assert_eq!(wire_roundtrip(&nested), nested);
        // Improper list (open tail).
        let open = Term::cons(Term::var(0), Term::var(1));
        assert_eq!(wire_roundtrip(&open), open);
        assert_eq!(wire_roundtrip(&Term::nil()), Term::nil());
    }

    #[test]
    fn wire_tuple_roundtrips_incl_empty_and_variable_sharing() {
        let empty = Tuple::new(vec![]);
        assert_eq!(wire_tuple_roundtrip(&empty), empty);
        let shared = Tuple::new(vec![Term::var(0), Term::var(0)]);
        let distinct = Tuple::new(vec![Term::var(0), Term::var(1)]);
        assert_eq!(wire_tuple_roundtrip(&shared), shared);
        assert_eq!(wire_tuple_roundtrip(&distinct), distinct);
        assert_ne!(wire_tuple_roundtrip(&shared), distinct);
        // Tuples concatenate in a frame: decoding reports consumption.
        let mut frame = encode_tuple_wire(&shared).unwrap();
        let first_len = frame.len();
        frame.extend(encode_tuple_wire(&distinct).unwrap());
        let (a, n) = decode_tuple_wire(&frame).unwrap();
        assert_eq!((a, n), (shared, first_len));
        let (b, _) = decode_tuple_wire(&frame[first_len..]).unwrap();
        assert_eq!(b, distinct);
    }

    #[test]
    fn wire_batch_roundtrips_and_rebuilds_the_flat_side_split() {
        use crate::ColumnarBatch;
        let rows = vec![
            Tuple::new(vec![Term::int(1), Term::str("a")]),
            Tuple::new(vec![Term::var(0), Term::apps("f", vec![Term::int(2)])]),
            Tuple::new(vec![
                Term::big("123456789012345678901".parse().unwrap()),
                Term::double(2.5),
            ]),
        ];
        let batch = ColumnarBatch::from_tuples(2, rows.clone());
        let enc = encode_batch_wire(&batch).unwrap();
        let (back, n) = decode_batch_wire(&enc).unwrap();
        assert_eq!(n, enc.len());
        assert_eq!(back.to_tuples(), rows);
        // The receiver re-derives the same physical classification.
        assert_eq!(back.fast_rows(), batch.fast_rows());
        assert_eq!(back.side_rows(), batch.side_rows());
        // Empty batch round-trips too.
        let empty = ColumnarBatch::from_tuples(3, Vec::new());
        let (back, _) = decode_batch_wire(&encode_batch_wire(&empty).unwrap()).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.arity(), 3);
        // A row with the wrong arity is a decode error.
        let mut bad = 2u32.to_be_bytes().to_vec();
        bad.extend(1u32.to_be_bytes());
        bad.extend(encode_tuple_wire(&Tuple::new(vec![Term::int(1)])).unwrap());
        assert!(decode_batch_wire(&bad).is_err());
    }

    #[test]
    fn wire_corrupt_input_rejected() {
        assert!(decode_term_wire(&[TAG_BIG, 0, 0, 0, 4, b'a']).is_err());
        assert!(decode_term_wire(&[TAG_BIG, 0, 0, 0, 2, b'x', b'y']).is_err());
        assert!(decode_term_wire(&[TAG_VAR, 0, 0]).is_err());
        assert!(decode_term_wire(&[TAG_APP, 0, 0, 0, 1, b'f', 0, 0, 0, 2]).is_err());
        assert!(decode_tuple_wire(&[0, 0, 0, 1]).is_err());
        assert!(decode_tuple_wire(&[]).is_err());
    }

    /// A unary functor header: `f(` … with one pending argument.
    fn nested_app_header(buf: &mut Vec<u8>) {
        buf.push(TAG_APP);
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.push(b'f');
        buf.extend_from_slice(&1u32.to_be_bytes());
    }

    #[test]
    fn wire_nesting_depth_is_bounded_not_a_stack_overflow() {
        // Just inside the limit: decodes fine.
        let mut ok = Vec::new();
        for _ in 0..MAX_WIRE_DEPTH {
            nested_app_header(&mut ok);
        }
        encode_term_wire(&mut ok, &Term::int(7)).unwrap();
        let (t, n) = decode_term_wire(&ok).unwrap();
        assert_eq!(n, ok.len());
        let mut depth = 0;
        let mut cur = &t;
        while let Term::App(a) = cur {
            depth += 1;
            cur = &a.args()[0];
        }
        assert_eq!(depth, MAX_WIRE_DEPTH);

        // A frame nesting far past the limit must surface a Decode
        // error, not blow the decoder's stack (a 100k-level frame would
        // abort the process if decoding recursed unbounded).
        let mut evil = Vec::new();
        for _ in 0..100_000 {
            nested_app_header(&mut evil);
        }
        encode_term_wire(&mut evil, &Term::int(7)).unwrap();
        assert!(matches!(decode_term_wire(&evil), Err(RelError::Decode(_))));
    }

    #[test]
    fn wire_huge_declared_arity_does_not_preallocate() {
        // A functor claiming u32::MAX args in a tiny frame: must error
        // on the missing arguments without reserving gigabytes first.
        let mut term = vec![TAG_APP, 0, 0, 0, 1, b'f'];
        term.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_term_wire(&term).is_err());
        // Same for the tuple arity prefix.
        let tuple = u32::MAX.to_be_bytes().to_vec();
        assert!(decode_tuple_wire(&tuple).is_err());
    }
}
