//! Order-preserving encoding of primitive-typed tuples.
//!
//! Persistent relations are "restricted to have fields of primitive types
//! only" and the data "is stored on disk in its machine representation"
//! (§3.1–§3.2). The encoding here is self-delimiting (tuples decode
//! without a schema) and order-preserving *within each type*, so B+-tree
//! prefix scans implement exact-key index lookups. Fields of different
//! types order by a type tag; cross-type numeric ordering is not needed
//! by any index operation.
//!
//! Layout per field:
//!
//! ```text
//! 0x10 ‖ (i64 big-endian, sign bit flipped)     integer
//! 0x20 ‖ (f64 order-preserving bits, BE)        double
//! 0x30 ‖ escaped bytes ‖ 0x00 0x00              string (0x00 → 0x00 0x01)
//! ```

use crate::error::{RelError, RelResult};
use coral_term::{Term, Tuple};

const TAG_INT: u8 = 0x10;
const TAG_DOUBLE: u8 = 0x20;
const TAG_STR: u8 = 0x30;

/// Append the encoding of one primitive term.
pub fn encode_term(out: &mut Vec<u8>, t: &Term) -> RelResult<()> {
    match t {
        Term::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&((*v as u64) ^ (1 << 63)).to_be_bytes());
            Ok(())
        }
        Term::Double(d) => {
            out.push(TAG_DOUBLE);
            let bits = d.get().to_bits();
            // Standard total-order transform: flip all bits of negatives,
            // flip only the sign bit of non-negatives.
            let key = if bits & (1 << 63) != 0 {
                !bits
            } else {
                bits ^ (1 << 63)
            };
            out.extend_from_slice(&key.to_be_bytes());
            Ok(())
        }
        Term::Str(s) => {
            out.push(TAG_STR);
            for b in s.as_str().bytes() {
                out.push(b);
                if b == 0 {
                    out.push(1);
                }
            }
            out.push(0);
            out.push(0);
            Ok(())
        }
        other => Err(RelError::NonPrimitive(format!(
            "cannot store {other} persistently"
        ))),
    }
}

/// Encode a whole tuple (all fields primitive).
pub fn encode_tuple(tuple: &Tuple) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(tuple.arity() * 12);
    for t in tuple.args() {
        encode_term(&mut out, t)?;
    }
    Ok(out)
}

/// Encode a projection of the tuple (index key).
pub fn encode_cols(tuple: &Tuple, cols: &[usize]) -> RelResult<Vec<u8>> {
    let mut out = Vec::with_capacity(cols.len() * 12);
    for &c in cols {
        encode_term(&mut out, &tuple.args()[c])?;
    }
    Ok(out)
}

/// Decode one term, returning it and the bytes consumed.
pub fn decode_term(bytes: &[u8]) -> RelResult<(Term, usize)> {
    match bytes.first() {
        Some(&TAG_INT) => {
            if bytes.len() < 9 {
                return Err(RelError::Decode("truncated integer".into()));
            }
            let raw = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
            Ok((Term::int((raw ^ (1 << 63)) as i64), 9))
        }
        Some(&TAG_DOUBLE) => {
            if bytes.len() < 9 {
                return Err(RelError::Decode("truncated double".into()));
            }
            let key = u64::from_be_bytes(bytes[1..9].try_into().unwrap());
            let bits = if key & (1 << 63) != 0 {
                key ^ (1 << 63)
            } else {
                !key
            };
            Ok((Term::double(f64::from_bits(bits)), 9))
        }
        Some(&TAG_STR) => {
            let mut s = Vec::new();
            let mut i = 1;
            loop {
                match bytes.get(i) {
                    Some(0) => match bytes.get(i + 1) {
                        Some(0) => {
                            let text = String::from_utf8(s)
                                .map_err(|_| RelError::Decode("non-UTF8 string".into()))?;
                            return Ok((Term::str(&text), i + 2));
                        }
                        Some(1) => {
                            s.push(0);
                            i += 2;
                        }
                        _ => return Err(RelError::Decode("bad string escape".into())),
                    },
                    Some(&b) => {
                        s.push(b);
                        i += 1;
                    }
                    None => return Err(RelError::Decode("unterminated string".into())),
                }
            }
        }
        Some(&t) => Err(RelError::Decode(format!("unknown field tag {t:#x}"))),
        None => Err(RelError::Decode("empty field".into())),
    }
}

/// Decode a whole tuple.
pub fn decode_tuple(mut bytes: &[u8]) -> RelResult<Tuple> {
    let mut args = Vec::new();
    while !bytes.is_empty() {
        let (t, n) = decode_term(bytes)?;
        args.push(t);
        bytes = &bytes[n..];
    }
    Ok(Tuple::ground(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(t: Term) -> Term {
        let mut buf = Vec::new();
        encode_term(&mut buf, &t).unwrap();
        let (back, n) = decode_term(&buf).unwrap();
        assert_eq!(n, buf.len());
        back
    }

    #[test]
    fn roundtrips() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 42] {
            assert_eq!(roundtrip(Term::int(v)), Term::int(v));
        }
        for v in [0.0, -0.0, 1.5, -2.25, f64::MAX, f64::MIN_POSITIVE, -1e300] {
            assert_eq!(roundtrip(Term::double(v)), Term::double(v));
        }
        for s in ["", "a", "hello world", "with\0nul", "naïve-ütf8"] {
            assert_eq!(roundtrip(Term::str(s)), Term::str(s));
        }
    }

    #[test]
    fn int_encoding_preserves_order() {
        let vals = [i64::MIN, -100, -1, 0, 1, 99, i64::MAX];
        let mut encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|&v| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::int(v)).unwrap();
                b
            })
            .collect();
        let sorted = encoded.clone();
        encoded.sort();
        assert_eq!(encoded, sorted);
    }

    #[test]
    fn double_encoding_preserves_order() {
        let vals = [-1e308, -2.5, -0.0, 0.0, 1e-300, 3.25, 1e308];
        let encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|&v| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::double(v)).unwrap();
                b
            })
            .collect();
        for w in encoded.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn string_encoding_preserves_order_and_prefix_freedom() {
        let vals = ["", "a", "ab", "abc", "b"];
        let encoded: Vec<Vec<u8>> = vals
            .iter()
            .map(|s| {
                let mut b = Vec::new();
                encode_term(&mut b, &Term::str(s)).unwrap();
                b
            })
            .collect();
        for w in encoded.windows(2) {
            assert!(w[0] < w[1]);
        }
        // Embedded NULs do not collide with the terminator.
        let mut a = Vec::new();
        encode_term(&mut a, &Term::str("x\0y")).unwrap();
        let mut b = Vec::new();
        encode_term(&mut b, &Term::str("x")).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = Tuple::ground(vec![Term::int(-5), Term::str("abc"), Term::double(2.5)]);
        let enc = encode_tuple(&t).unwrap();
        assert_eq!(decode_tuple(&enc).unwrap(), t);
        let empty = Tuple::ground(vec![]);
        assert_eq!(decode_tuple(&encode_tuple(&empty).unwrap()).unwrap(), empty);
    }

    #[test]
    fn non_primitives_rejected() {
        let mut buf = Vec::new();
        assert!(encode_term(&mut buf, &Term::var(0)).is_err());
        assert!(encode_term(&mut buf, &Term::apps("f", vec![])).is_err());
        assert!(encode_term(&mut buf, &Term::big("9".repeat(30).parse().unwrap())).is_err());
    }

    #[test]
    fn corrupt_input_rejected() {
        assert!(decode_term(&[]).is_err());
        assert!(decode_term(&[0x99]).is_err());
        assert!(decode_term(&[TAG_INT, 1, 2]).is_err());
        assert!(decode_term(&[TAG_STR, b'a']).is_err());
        assert!(decode_term(&[TAG_STR, 0, 9]).is_err());
    }
}
