//! Relation-layer errors.

use coral_storage::StorageError;
use std::fmt;

/// Errors from relation operations.
#[derive(Debug)]
pub enum RelError {
    /// Underlying storage failure (persistent relations only).
    Storage(StorageError),
    /// Tuple arity does not match the relation's arity.
    Arity { expected: usize, got: usize },
    /// A persistent relation was given a non-primitive field (§3.1:
    /// "data stored using the EXODUS storage manager \[is\] limited to
    /// terms of these primitive types").
    NonPrimitive(String),
    /// An index specification is invalid for this relation.
    BadIndex(String),
    /// An encoded tuple could not be decoded.
    Decode(String),
}

/// Result alias for relation operations.
pub type RelResult<T> = Result<T, RelError>;

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::Storage(e) => write!(f, "storage error: {e}"),
            RelError::Arity { expected, got } => {
                write!(
                    f,
                    "arity mismatch: relation has {expected} columns, tuple has {got}"
                )
            }
            RelError::NonPrimitive(m) => {
                write!(f, "persistent relations hold primitive types only: {m}")
            }
            RelError::BadIndex(m) => write!(f, "invalid index: {m}"),
            RelError::Decode(m) => write!(f, "corrupt persistent tuple: {m}"),
        }
    }
}

impl std::error::Error for RelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RelError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for RelError {
    fn from(e: StorageError) -> RelError {
        RelError::Storage(e)
    }
}
