//! Thread-local tuple-insert meter for the resource governor.
//!
//! The governor (coral-core) bounds how many tuples one query may
//! materialize. Every successful relation insert bumps this counter;
//! the governor captures a baseline when a query is armed and compares
//! `tuples_inserted() - baseline` against the budget at its poll sites —
//! an O(1) thread-local read, never a scan.
//!
//! The counter is *thread-local*, not process-wide, and that is load
//! bearing: a query evaluates entirely on one thread (parallel fixpoint
//! workers emit into private buffers that the coordinator merges through
//! the ordinary insert path), so the meter is exact per query and
//! deterministic across worker counts, and concurrent server sessions on
//! other worker threads never cross-charge each other. Unlike the
//! `profile` counters it is always compiled in.

use std::cell::Cell;

thread_local! {
    static TUPLES: Cell<u64> = const { Cell::new(0) };
    static DELETED: Cell<u64> = const { Cell::new(0) };
}

/// Charge `n` successful tuple inserts to this thread's meter.
#[inline]
pub fn add_tuples(n: u64) {
    TUPLES.with(|c| c.set(c.get() + n));
}

/// Monotone total of successful inserts performed by this thread.
#[inline]
pub fn tuples_inserted() -> u64 {
    TUPLES.with(|c| c.get())
}

/// Charge `n` successful tuple deletes to this thread's meter. Deletes
/// are metered symmetrically with inserts so maintenance propagation is
/// observable, but they do NOT refund the insert meter: the governor's
/// materialization budget bounds total work, and work already done stays
/// charged.
#[inline]
pub fn add_deleted(n: u64) {
    DELETED.with(|c| c.set(c.get() + n));
}

/// Monotone total of successful deletes performed by this thread.
#[inline]
pub fn tuples_deleted() -> u64 {
    DELETED.with(|c| c.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_counts_successful_inserts_only() {
        use crate::hash_rel::HashRelation;
        use crate::relation::Relation;
        use coral_term::{Term, Tuple};
        let r = HashRelation::new(1);
        let before = tuples_inserted();
        assert!(r.insert(Tuple::new(vec![Term::int(1)])).unwrap());
        assert!(!r.insert(Tuple::new(vec![Term::int(1)])).unwrap());
        assert!(r.insert(Tuple::new(vec![Term::int(2)])).unwrap());
        assert_eq!(tuples_inserted() - before, 2);
    }

    #[test]
    fn meter_counts_batch_inserts_row_accurately() {
        use crate::columnar::ColumnarBatch;
        use crate::hash_rel::HashRelation;
        use crate::relation::Relation;
        use coral_term::{Term, Tuple};
        let r = HashRelation::new(1);
        assert!(r.insert(Tuple::new(vec![Term::int(2)])).unwrap());
        let batch = ColumnarBatch::from_tuples(
            1,
            (1..=4)
                .map(|i| Tuple::new(vec![Term::int(i)]))
                .collect::<Vec<_>>(),
        );
        let before = tuples_inserted();
        // One row is a duplicate: exactly 3 rows land, exactly 3 charges.
        assert_eq!(r.insert_batch(&batch).unwrap(), 3);
        assert_eq!(tuples_inserted() - before, 3);
    }

    #[test]
    fn meter_counts_successful_deletes_only() {
        use crate::hash_rel::HashRelation;
        use crate::relation::Relation;
        use coral_term::{Term, Tuple};
        let r = HashRelation::new(1);
        r.insert(Tuple::new(vec![Term::int(1)])).unwrap();
        r.insert(Tuple::new(vec![Term::int(2)])).unwrap();
        let (ins, del) = (tuples_inserted(), tuples_deleted());
        assert!(r.delete(&Tuple::new(vec![Term::int(1)])).unwrap());
        assert!(!r.delete(&Tuple::new(vec![Term::int(1)])).unwrap());
        assert!(!r.delete(&Tuple::new(vec![Term::int(9)])).unwrap());
        assert_eq!(tuples_deleted() - del, 1, "only the real removal charges");
        assert_eq!(
            tuples_inserted(),
            ins,
            "deletes never touch the insert meter"
        );
    }

    #[test]
    fn meter_is_thread_local() {
        add_tuples(5);
        let here = tuples_inserted();
        let there = std::thread::spawn(tuples_inserted).join().unwrap();
        assert!(here >= 5);
        assert_eq!(there, 0);
    }
}
