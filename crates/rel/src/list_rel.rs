//! List relations (§7.2: "relations organized as linked lists").
//!
//! The simplest relation implementation: an insertion-ordered sequence
//! with linear duplicate checks and no indices. Useful for tiny relations
//! and as the reference implementation the fancier structures are tested
//! against.

use crate::error::{RelError, RelResult};
use crate::relation::{iter_from_vec, DupSemantics, IndexSpec, Relation, TupleIter};
use coral_term::{match_args, Term, Tuple};
use std::cell::RefCell;

/// An insertion-ordered, unindexed relation.
pub struct ListRelation {
    arity: usize,
    dup: DupSemantics,
    tuples: RefCell<Vec<Tuple>>,
}

impl ListRelation {
    /// An empty list relation with the given arity and CORAL's default
    /// subsumption-checking set semantics.
    pub fn new(arity: usize) -> ListRelation {
        ListRelation::with_semantics(arity, DupSemantics::SetSubsuming)
    }

    /// An empty list relation with explicit duplicate semantics.
    pub fn with_semantics(arity: usize, dup: DupSemantics) -> ListRelation {
        ListRelation {
            arity,
            dup,
            tuples: RefCell::new(Vec::new()),
        }
    }

    fn check_arity(&self, t: &Tuple) -> RelResult<()> {
        if t.arity() != self.arity {
            return Err(RelError::Arity {
                expected: self.arity,
                got: t.arity(),
            });
        }
        Ok(())
    }
}

impl Relation for ListRelation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        self.tuples.borrow().len()
    }

    fn insert(&self, tuple: Tuple) -> RelResult<bool> {
        self.check_arity(&tuple)?;
        let mut ts = self.tuples.borrow_mut();
        match self.dup {
            DupSemantics::Multiset => {}
            DupSemantics::Set => {
                if ts.contains(&tuple) {
                    return Ok(false);
                }
            }
            DupSemantics::SetSubsuming => {
                if ts.iter().any(|t| t.subsumes(&tuple)) {
                    return Ok(false);
                }
            }
        }
        tuple.intern_ground();
        ts.push(tuple);
        crate::meter::add_tuples(1);
        Ok(true)
    }

    fn delete(&self, tuple: &Tuple) -> RelResult<bool> {
        self.check_arity(tuple)?;
        let mut ts = self.tuples.borrow_mut();
        match ts.iter().position(|t| t == tuple) {
            Some(i) => {
                ts.remove(i);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn scan(&self) -> TupleIter {
        iter_from_vec(self.tuples.borrow().clone())
    }

    fn lookup(&self, pattern: &[Term]) -> TupleIter {
        // No index: filter tuples that one-way match the pattern's ground
        // skeleton. Non-ground stored tuples always qualify as candidates.
        let candidates: Vec<Tuple> = self
            .tuples
            .borrow()
            .iter()
            .filter(|t| !t.is_ground() || match_args(pattern, t.args()).is_some())
            .cloned()
            .collect();
        iter_from_vec(candidates)
    }

    fn make_index(&self, _spec: IndexSpec) -> RelResult<()> {
        Err(RelError::BadIndex(
            "list relations do not support indices".into(),
        ))
    }

    fn describe(&self) -> String {
        format!("list relation, arity {}, {} tuples", self.arity, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t2(a: i64, b: i64) -> Tuple {
        Tuple::new(vec![Term::int(a), Term::int(b)])
    }

    #[test]
    fn insert_scan_preserves_order() {
        let r = ListRelation::new(2);
        assert!(r.insert(t2(1, 2)).unwrap());
        assert!(r.insert(t2(3, 4)).unwrap());
        let got: Vec<Tuple> = r.scan().map(|x| x.unwrap()).collect();
        assert_eq!(got, vec![t2(1, 2), t2(3, 4)]);
    }

    #[test]
    fn set_semantics_rejects_duplicates() {
        let r = ListRelation::new(2);
        assert!(r.insert(t2(1, 2)).unwrap());
        assert!(!r.insert(t2(1, 2)).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn subsumption_rejects_instances() {
        let r = ListRelation::new(2);
        // p(X, X) then p(5, 5): the latter is subsumed.
        assert!(r
            .insert(Tuple::new(vec![Term::var(0), Term::var(0)]))
            .unwrap());
        assert!(!r.insert(t2(5, 5)).unwrap());
        assert!(r.insert(t2(5, 6)).unwrap());
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn multiset_keeps_copies() {
        let r = ListRelation::with_semantics(1, DupSemantics::Multiset);
        let t = Tuple::new(vec![Term::int(7)]);
        assert!(r.insert(t.clone()).unwrap());
        assert!(r.insert(t.clone()).unwrap());
        assert_eq!(r.len(), 2);
        assert!(r.delete(&t).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn delete_returns_presence() {
        let r = ListRelation::new(2);
        r.insert(t2(1, 2)).unwrap();
        assert!(r.delete(&t2(1, 2)).unwrap());
        assert!(!r.delete(&t2(1, 2)).unwrap());
        assert!(r.is_empty());
    }

    #[test]
    fn lookup_filters_by_ground_pattern() {
        let r = ListRelation::new(2);
        r.insert(t2(1, 2)).unwrap();
        r.insert(t2(1, 3)).unwrap();
        r.insert(t2(2, 3)).unwrap();
        let hits: Vec<Tuple> = r
            .lookup(&[Term::int(1), Term::var(0)])
            .map(|x| x.unwrap())
            .collect();
        assert_eq!(hits, vec![t2(1, 2), t2(1, 3)]);
        // Fully open pattern returns everything.
        assert_eq!(r.lookup(&[Term::var(0), Term::var(1)]).count(), 3);
    }

    #[test]
    fn lookup_keeps_nonground_candidates() {
        let r = ListRelation::new(2);
        r.insert(Tuple::new(vec![Term::var(0), Term::int(9)]))
            .unwrap();
        let hits = r.lookup(&[Term::int(4), Term::var(0)]).count();
        assert_eq!(hits, 1, "non-ground fact must remain a candidate");
    }

    #[test]
    fn arity_mismatch_rejected() {
        let r = ListRelation::new(2);
        assert!(matches!(
            r.insert(Tuple::new(vec![Term::int(1)])),
            Err(RelError::Arity { .. })
        ));
    }

    #[test]
    fn indices_not_supported() {
        let r = ListRelation::new(2);
        assert!(r.make_index(IndexSpec::Args(vec![0])).is_err());
    }
}
