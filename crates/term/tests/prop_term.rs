#![cfg(feature = "proptest")]

//! Property-based tests for the term layer: bignum arithmetic laws,
//! unification invariants, hash-consing soundness, tuple normalization.

use coral_term::bignum::BigInt;
use coral_term::bindenv::EnvSet;
use coral_term::term::Term;
use coral_term::tuple::Tuple;
use coral_term::{hashcons, match_one_way, subsumes, unify, variant};
use proptest::prelude::*;

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    proptest::collection::vec(any::<u32>(), 0..6).prop_flat_map(|limbs| {
        any::<bool>().prop_map(move |neg| {
            let mut b = BigInt::zero();
            for l in &limbs {
                b = &(&b * &BigInt::from_i64(1i64 << 32)) + &BigInt::from_i64(*l as i64);
            }
            if neg {
                -b
            } else {
                b
            }
        })
    })
}

proptest! {
    #[test]
    fn bignum_add_commutes(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
    }

    #[test]
    fn bignum_add_sub_roundtrip(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assert_eq!(&(&a + &b) - &b, a);
    }

    #[test]
    fn bignum_mul_distributes(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
    }

    #[test]
    fn bignum_divmod_identity(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.divmod(&b);
        prop_assert_eq!(&(&q * &b) + &r, a.clone());
        // |r| < |b|
        prop_assert!(r.abs() < b.abs());
    }

    #[test]
    fn bignum_parse_print_roundtrip(a in bigint_strategy()) {
        let s = a.to_string();
        let back: BigInt = s.parse().unwrap();
        prop_assert_eq!(back, a);
    }

    #[test]
    fn bignum_i64_arith_agrees(a in any::<i32>(), b in any::<i32>()) {
        let (ba, bb) = (BigInt::from_i64(a as i64), BigInt::from_i64(b as i64));
        prop_assert_eq!((&ba + &bb).to_i64(), Some(a as i64 + b as i64));
        prop_assert_eq!((&ba * &bb).to_i64(), Some(a as i64 * b as i64));
        prop_assert_eq!((&ba - &bb).to_i64(), Some(a as i64 - b as i64));
        prop_assert_eq!(ba.cmp(&bb), (a as i64).cmp(&(b as i64)));
    }
}

/// A strategy over terms with variables drawn from 0..4.
fn term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Term::int),
        (0u32..4).prop_map(Term::var),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Term::str),
        (-5.0f64..5.0).prop_map(Term::double),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (
            prop_oneof![Just("f"), Just("g"), Just("h")],
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(name, args)| Term::apps(name, args))
    })
}

fn ground_term_strategy() -> impl Strategy<Value = Term> {
    let leaf = prop_oneof![
        (-50i64..50).prop_map(Term::int),
        prop_oneof![Just("a"), Just("b"), Just("c")].prop_map(Term::str),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        (
            prop_oneof![Just("f"), Just("g")],
            proptest::collection::vec(inner, 0..3),
        )
            .prop_map(|(name, args)| Term::apps(name, args))
    })
}

proptest! {
    #[test]
    fn unify_term_with_itself_succeeds(t in term_strategy()) {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(4);
        prop_assert!(unify(&mut envs, &t, e, &t, e));
    }

    #[test]
    fn unify_renamed_copies_succeeds(t in term_strategy()) {
        // A term and a variable-renamed copy always unify (distinct frames).
        let mut envs = EnvSet::new();
        let e1 = envs.push_frame(4);
        let e2 = envs.push_frame(4);
        prop_assert!(unify(&mut envs, &t, e1, &t, e2));
    }

    #[test]
    fn unify_is_symmetric(a in term_strategy(), b in term_strategy()) {
        let mut envs1 = EnvSet::new();
        let ea1 = envs1.push_frame(4);
        let eb1 = envs1.push_frame(4);
        let fwd = unify(&mut envs1, &a, ea1, &b, eb1);
        let mut envs2 = EnvSet::new();
        let ea2 = envs2.push_frame(4);
        let eb2 = envs2.push_frame(4);
        let bwd = unify(&mut envs2, &b, eb2, &a, ea2);
        prop_assert_eq!(fwd, bwd);
    }

    #[test]
    fn unify_ground_agrees_with_equality(a in ground_term_strategy(), b in ground_term_strategy()) {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(0);
        prop_assert_eq!(unify(&mut envs, &a, e, &b, e), a == b);
    }

    #[test]
    fn hashcons_ids_agree_with_equality(a in ground_term_strategy(), b in ground_term_strategy()) {
        let ia = hashcons::intern(&a).unwrap();
        let ib = hashcons::intern(&b).unwrap();
        prop_assert_eq!(ia == ib, a == b);
    }

    #[test]
    fn unify_failure_restores_trail(a in term_strategy(), b in term_strategy()) {
        let mut envs = EnvSet::new();
        let ea = envs.push_frame(4);
        let eb = envs.push_frame(4);
        let m = envs.mark();
        if !unify(&mut envs, &a, ea, &b, eb) {
            envs.undo(m);
            prop_assert_eq!(envs.mark(), m);
            // After undo the same unification attempt behaves identically.
            prop_assert!(!unify(&mut envs, &a, ea, &b, eb));
        }
    }

    #[test]
    fn match_implies_unify(p in term_strategy(), t in ground_term_strategy()) {
        if match_one_way(&p, &t).is_some() {
            let mut envs = EnvSet::new();
            let ep = envs.push_frame(4);
            let et = envs.push_frame(0);
            prop_assert!(unify(&mut envs, &p, ep, &t, et));
        }
    }

    #[test]
    fn variant_is_reflexive_and_symmetric(a in term_strategy(), b in term_strategy()) {
        prop_assert!(variant(&a, &a));
        prop_assert_eq!(variant(&a, &b), variant(&b, &a));
    }

    #[test]
    fn resolved_term_is_variant_of_itself(t in term_strategy()) {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(4);
        let r = envs.resolve(&t, e);
        prop_assert!(variant(&t, &r));
    }

    #[test]
    fn subsumption_is_reflexive_and_transitive_on_samples(
        a in proptest::collection::vec(term_strategy(), 1..3),
    ) {
        prop_assert!(subsumes(&a, &a));
        // A fully general tuple subsumes everything of the same arity.
        let gen: Vec<Term> = (0..a.len() as u32).map(Term::var).collect();
        prop_assert!(subsumes(&gen, &a));
    }

    #[test]
    fn tuple_normalization_idempotent(a in proptest::collection::vec(term_strategy(), 0..4)) {
        let t1 = Tuple::new(a);
        let t2 = Tuple::new(t1.args().to_vec());
        prop_assert_eq!(t1, t2);
    }

    #[test]
    fn order_cmp_total_and_antisymmetric(a in term_strategy(), b in term_strategy()) {
        use std::cmp::Ordering;
        let ab = a.order_cmp(&b);
        let ba = b.order_cmp(&a);
        prop_assert_eq!(ab.reverse(), ba);
        if ab == Ordering::Equal {
            prop_assert_eq!(a.order_cmp(&a), Ordering::Equal);
        }
    }
}
