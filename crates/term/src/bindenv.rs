//! Binding environments and the trail (§3.1, §5.3).
//!
//! "It is more efficient … to record variable bindings in a *binding
//! environment*, at least during the course of an inference. … whenever a
//! variable is accessed during an inference, a corresponding binding
//! environment must be accessed to find if the variable has been bound."
//!
//! An [`EnvSet`] holds a stack of *frames*, one per rule activation or
//! per non-ground fact in use; a binding maps a `(frame, variable)` pair
//! to a `(term, frame)` pair — structure sharing, exactly Figure 2 of the
//! paper, where `f(X, 10, Y)` has `X ↦ 25` in one bindenv and `Y ↦ Z`,
//! `Z ↦ 50` through another.
//!
//! "In a manner similar to Prolog, CORAL maintains a trail of variable
//! bindings when a rule is evaluated; this is used to undo variable
//! bindings when the nested-loops join considers the next tuple in any
//! loop" (§5.3). [`EnvSet::mark`]/[`EnvSet::undo`] implement that trail.

use crate::term::{Term, VarId};

/// Identifies one frame (one binding environment) in an [`EnvSet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EnvId(pub u32);

/// A point on the trail to undo back to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrailMark(usize);

/// A point in the frame stack to pop back to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameMark(usize);

#[derive(Default)]
struct Frame {
    slots: Vec<Option<(Term, EnvId)>>,
}

/// A set of binding environments with a shared trail.
#[derive(Default)]
pub struct EnvSet {
    frames: Vec<Frame>,
    trail: Vec<(EnvId, VarId)>,
}

impl EnvSet {
    /// An empty environment set.
    pub fn new() -> EnvSet {
        EnvSet::default()
    }

    /// Allocate a fresh frame with `nvars` unbound variables.
    pub fn push_frame(&mut self, nvars: usize) -> EnvId {
        crate::profile::bump(|c| c.bindenv_allocs += 1);
        let id = EnvId(u32::try_from(self.frames.len()).expect("env overflow"));
        self.frames.push(Frame {
            slots: vec![None; nvars],
        });
        id
    }

    /// Current frame-stack position, for stack-wise reclamation.
    pub fn frame_mark(&self) -> FrameMark {
        FrameMark(self.frames.len())
    }

    /// Pop frames back to `mark`. The caller must first [`EnvSet::undo`]
    /// any trail entries made since the frames were pushed; this is
    /// checked in debug builds.
    pub fn pop_frames(&mut self, mark: FrameMark) {
        debug_assert!(self.trail.iter().all(|(e, _)| (e.0 as usize) < mark.0));
        self.frames.truncate(mark.0);
    }

    /// Number of live frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// The binding of `(env, var)`, if any.
    pub fn lookup(&self, env: EnvId, var: VarId) -> Option<&(Term, EnvId)> {
        self.frames[env.0 as usize].slots[var.0 as usize].as_ref()
    }

    /// Bind `(env, var)` to `(term, term_env)`, recording it on the trail.
    ///
    /// Panics in debug builds if already bound — the evaluator always
    /// dereferences before binding.
    pub fn bind(&mut self, env: EnvId, var: VarId, term: Term, term_env: EnvId) {
        let slot = &mut self.frames[env.0 as usize].slots[var.0 as usize];
        debug_assert!(slot.is_none(), "rebinding bound variable");
        *slot = Some((term, term_env));
        self.trail.push((env, var));
    }

    /// Current trail position.
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Undo all bindings made since `mark`.
    pub fn undo(&mut self, mark: TrailMark) {
        while self.trail.len() > mark.0 {
            let (env, var) = self.trail.pop().unwrap();
            self.frames[env.0 as usize].slots[var.0 as usize] = None;
        }
    }

    /// Follow variable bindings until reaching a non-variable term or an
    /// unbound variable. Returns the final `(term, env)` pair (terms are
    /// `Arc`-backed, so the clone is cheap).
    pub fn deref(&self, term: &Term, env: EnvId) -> (Term, EnvId) {
        let mut t = term.clone();
        let mut e = env;
        loop {
            match &t {
                Term::Var(v) => match self.lookup(e, *v) {
                    Some((nt, ne)) => {
                        let (nt, ne) = (nt.clone(), *ne);
                        t = nt;
                        e = ne;
                    }
                    None => return (t, e),
                },
                _ => return (t, e),
            }
        }
    }

    /// Copy a term out of its binding environment into a self-contained
    /// term: bound variables are replaced by their (recursively resolved)
    /// bindings, unbound variables are renumbered compactly in first
    /// occurrence order through `varmap`/`next_var`.
    ///
    /// Panics on cyclic bindings (which can only arise from occurs-check-
    /// free unification of non-ground data against itself; CORAL, like
    /// Prolog, does not create such terms in normal operation).
    pub fn resolve_with(
        &self,
        term: &Term,
        env: EnvId,
        varmap: &mut Vec<((EnvId, VarId), VarId)>,
        next_var: &mut u32,
    ) -> Term {
        let mut path: Vec<(EnvId, VarId)> = Vec::new();
        self.resolve_inner(term, env, varmap, next_var, &mut path)
    }

    fn resolve_inner(
        &self,
        term: &Term,
        env: EnvId,
        varmap: &mut Vec<((EnvId, VarId), VarId)>,
        next_var: &mut u32,
        path: &mut Vec<(EnvId, VarId)>,
    ) -> Term {
        match term {
            Term::Var(v) => match self.lookup(env, *v) {
                Some((t, e)) => {
                    let key = (env, *v);
                    assert!(
                        !path.contains(&key),
                        "cyclic variable binding while copying term out of bindenv"
                    );
                    path.push(key);
                    let (t, e) = (t.clone(), *e);
                    let out = self.resolve_inner(&t, e, varmap, next_var, path);
                    path.pop();
                    out
                }
                None => {
                    let key = (env, *v);
                    if let Some((_, mapped)) = varmap.iter().find(|(k, _)| *k == key) {
                        Term::Var(*mapped)
                    } else {
                        let mapped = VarId(*next_var);
                        *next_var += 1;
                        varmap.push((key, mapped));
                        Term::Var(mapped)
                    }
                }
            },
            Term::App(a) if !term.is_ground() => Term::app(
                a.sym(),
                a.args()
                    .iter()
                    .map(|t| self.resolve_inner(t, env, varmap, next_var, path))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Convenience: resolve a term with a fresh variable numbering.
    pub fn resolve(&self, term: &Term, env: EnvId) -> Term {
        let mut varmap = Vec::new();
        let mut next = 0;
        self.resolve_with(term, env, &mut varmap, &mut next)
    }

    /// True iff the term is ground under its environment (all variables
    /// transitively bound to ground terms).
    pub fn is_ground_under(&self, term: &Term, env: EnvId) -> bool {
        match term {
            Term::Var(_) => {
                let (t, e) = self.deref(term, env);
                match t {
                    Term::Var(_) => false,
                    _ => self.is_ground_under(&t, e),
                }
            }
            Term::App(a) => {
                term.is_ground() || a.args().iter().all(|t| self.is_ground_under(t, env))
            }
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reproduces Figure 2 of the paper: `f(X, 10, Y)` with `X ↦ 25`,
    /// `Y ↦ Z` and `Z ↦ 50` in a separate bindenv.
    #[test]
    fn figure_2_representation() {
        let mut envs = EnvSet::new();
        let e1 = envs.push_frame(2); // X = V0, Y = V1
        let e2 = envs.push_frame(1); // Z = V0
        let term = Term::apps("f", vec![Term::var(0), Term::int(10), Term::var(1)]);
        envs.bind(e1, VarId(0), Term::int(25), e1);
        envs.bind(e1, VarId(1), Term::var(0), e2);
        envs.bind(e2, VarId(0), Term::int(50), e2);
        assert_eq!(envs.resolve(&term, e1).to_string(), "f(25, 10, 50)");
        assert!(envs.is_ground_under(&term, e1));
    }

    #[test]
    fn deref_follows_chains() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(3);
        envs.bind(e, VarId(0), Term::var(1), e);
        envs.bind(e, VarId(1), Term::var(2), e);
        envs.bind(e, VarId(2), Term::str("end"), e);
        let (t, _) = envs.deref(&Term::var(0), e);
        assert_eq!(t, Term::str("end"));
    }

    #[test]
    fn trail_undo_restores_unbound() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(2);
        let m = envs.mark();
        envs.bind(e, VarId(0), Term::int(1), e);
        envs.bind(e, VarId(1), Term::int(2), e);
        assert!(envs.lookup(e, VarId(0)).is_some());
        envs.undo(m);
        assert!(envs.lookup(e, VarId(0)).is_none());
        assert!(envs.lookup(e, VarId(1)).is_none());
        // Can rebind after undo.
        envs.bind(e, VarId(0), Term::int(3), e);
        let (t, _) = envs.deref(&Term::var(0), e);
        assert_eq!(t, Term::int(3));
    }

    #[test]
    fn resolve_renumbers_unbound_vars_compactly() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(5);
        // f(V4, V2, V4) with nothing bound -> f(V0, V1, V0)
        let t = Term::apps("f", vec![Term::var(4), Term::var(2), Term::var(4)]);
        assert_eq!(envs.resolve(&t, e).to_string(), "f(V0, V1, V0)");
    }

    #[test]
    fn resolve_shares_varmap_across_calls() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(2);
        let mut varmap = Vec::new();
        let mut next = 0;
        let a = envs.resolve_with(&Term::var(1), e, &mut varmap, &mut next);
        let b = envs.resolve_with(&Term::var(0), e, &mut varmap, &mut next);
        let c = envs.resolve_with(&Term::var(1), e, &mut varmap, &mut next);
        assert_eq!(a, Term::var(0));
        assert_eq!(b, Term::var(1));
        assert_eq!(c, Term::var(0));
    }

    #[test]
    fn frame_stack_reclamation() {
        let mut envs = EnvSet::new();
        let _e1 = envs.push_frame(1);
        let fm = envs.frame_mark();
        let tm = envs.mark();
        let e2 = envs.push_frame(4);
        envs.bind(e2, VarId(0), Term::int(1), e2);
        envs.undo(tm);
        envs.pop_frames(fm);
        assert_eq!(envs.frame_count(), 1);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_binding_detected_on_resolve() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(1);
        // X -> f(X): only constructible without occurs check.
        envs.bind(e, VarId(0), Term::apps("f", vec![Term::var(0)]), e);
        let _ = envs.resolve(&Term::var(0), e);
    }

    #[test]
    fn is_ground_under_partial() {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(2);
        let t = Term::apps("f", vec![Term::var(0), Term::var(1)]);
        assert!(!envs.is_ground_under(&t, e));
        envs.bind(e, VarId(0), Term::int(1), e);
        assert!(!envs.is_ground_under(&t, e));
        envs.bind(e, VarId(1), Term::list(vec![Term::int(2)]), e);
        assert!(envs.is_ground_under(&t, e));
    }
}
