//! Global symbol interner.
//!
//! CORAL shares constants instead of copying their values (§3.2, §9
//! "pointer sharing"). Strings, functor names and predicate names are
//! interned once in a process-wide table and referred to by a compact
//! [`Symbol`] id thereafter; equality and hashing of symbols are O(1)
//! integer operations.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A compact identifier for an interned string.
///
/// Two `Symbol`s are equal iff the strings they intern are equal. Symbols
/// are never reclaimed: the CORAL process model is a single-user session
/// (§2), so the table only grows for the lifetime of the process.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Table {
    by_name: HashMap<Box<str>, Symbol>,
    names: Vec<Box<str>>,
}

fn table() -> &'static RwLock<Table> {
    static TABLE: OnceLock<RwLock<Table>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Table {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `name`, returning its symbol. Idempotent.
    pub fn intern(name: &str) -> Symbol {
        {
            let t = table().read().unwrap();
            if let Some(&s) = t.by_name.get(name) {
                return s;
            }
        }
        let mut t = table().write().unwrap();
        if let Some(&s) = t.by_name.get(name) {
            return s;
        }
        let id = Symbol(u32::try_from(t.names.len()).expect("symbol table overflow"));
        let boxed: Box<str> = name.into();
        t.names.push(boxed.clone());
        t.by_name.insert(boxed, id);
        id
    }

    /// The interned string. Allocates a fresh `String` because the table
    /// may move under concurrent interning; symbol resolution is not a
    /// hot path (comparisons use the id).
    pub fn as_str(&self) -> String {
        table().read().unwrap().names[self.0 as usize].to_string()
    }

    /// Raw id, for serialization into storage pages.
    pub fn id(&self) -> u32 {
        self.0
    }

    /// Rebuild from a raw id previously obtained from [`Symbol::id`].
    ///
    /// Panics if the id was never issued by the interner.
    pub fn from_id(id: u32) -> Symbol {
        let t = table().read().unwrap();
        assert!(
            (id as usize) < t.names.len(),
            "Symbol::from_id: unknown symbol id {id}"
        );
        Symbol(id)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

/// Well-known symbols used by the list syntax and the evaluator.
pub mod well_known {
    use super::Symbol;

    /// The list constructor `'.'/2`.
    pub fn cons() -> Symbol {
        Symbol::intern(".")
    }

    /// The empty list `'[]'/0`.
    pub fn nil() -> Symbol {
        Symbol::intern("[]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("edge");
        let b = Symbol::intern("edge");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "edge");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::intern("p"), Symbol::intern("q"));
    }

    #[test]
    fn roundtrip_raw_id() {
        let s = Symbol::intern("roundtrip-me");
        assert_eq!(Symbol::from_id(s.id()), s);
    }

    #[test]
    fn display_matches_name() {
        let s = Symbol::intern("display-name");
        assert_eq!(format!("{s}"), "display-name");
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                std::thread::spawn(move || {
                    (0..100)
                        .map(|j| Symbol::intern(&format!("sym-{}", (i + j) % 20)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Symbol>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for r in &results {
            for s in r {
                let name = s.as_str();
                assert_eq!(Symbol::intern(&name), *s);
            }
        }
    }
}
