//! Process-wide resource meters for the term layer.
//!
//! The resource governor (coral-core) bounds per-query term-memory growth
//! without scanning any table: the hashcons layer charges this monotone
//! byte counter whenever it allocates a new interned entry, and the
//! governor diffs the counter against a baseline captured at query start.
//! Unlike the `profile` counters these are always compiled in — they are
//! a single relaxed atomic add on the interning *miss* path only (hits
//! never touch them), so the hot path is unaffected.
//!
//! The counter is process-wide, not per-query: concurrent sessions
//! interning terms all advance it, so a diff against a baseline is a
//! conservative over-estimate of one query's own allocations. That is the
//! right direction for an overload defense — under contention the
//! governor errs towards killing sooner, never later.

use std::sync::atomic::{AtomicU64, Ordering};

static TERM_BYTES: AtomicU64 = AtomicU64::new(0);

/// Charge `n` bytes of term-layer allocation to the process meter.
#[inline]
pub fn add_term_bytes(n: u64) {
    TERM_BYTES.fetch_add(n, Ordering::Relaxed);
}

/// Monotone total of term-layer bytes allocated since process start.
#[inline]
pub fn term_bytes() -> u64 {
    TERM_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_is_monotone() {
        let before = term_bytes();
        add_term_bytes(128);
        let after = term_bytes();
        assert!(after >= before + 128);
    }

    #[test]
    fn interning_fresh_terms_advances_meter() {
        use crate::term::Term;
        let before = term_bytes();
        // A fresh, never-before-seen structure must allocate table entries.
        let t = Term::apps(
            "meter_probe_unique_functor",
            vec![Term::int(0xC0FFEE), Term::str("meter-probe-payload")],
        );
        crate::hashcons::intern(&t).unwrap();
        assert!(
            term_bytes() > before,
            "interning a fresh term charged 0 bytes"
        );
        // Re-interning the same term is a hit and charges nothing further.
        let mid = term_bytes();
        crate::hashcons::intern(&t).unwrap();
        assert_eq!(term_bytes(), mid);
    }
}
