//! User-defined abstract data types (§7.1).
//!
//! The paper: "all abstract data types should have certain virtual methods
//! defined in their interface, and all system code that manipulates
//! objects operates only via this interface" — `equals`, `print`,
//! `construct`, `hash`, plus memory management. In Rust the virtual-method
//! table becomes a trait object: implement [`AdtValue`] for a type and it
//! can flow through relations, unification, indices and the evaluator with
//! no engine changes ("locality" of extension). Memory management is
//! `Arc`.
//!
//! The `construct` method (re-creating an object from a printed
//! representation) lives on a per-type constructor registered in the
//! global [`registry`], mirroring CORAL's single registration command.

use crate::term::Term;
use std::any::Any;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, OnceLock, RwLock};

/// The abstract-data-type interface (the paper's required virtual methods).
pub trait AdtValue: Send + Sync + fmt::Debug {
    /// The registered type name (used for dispatch and ordering).
    fn type_name(&self) -> &'static str;

    /// Equality against another ADT value (of any registered type).
    fn equals(&self, other: &dyn AdtValue) -> bool;

    /// A hash value consistent with [`AdtValue::equals`].
    fn hash_value(&self) -> u64;

    /// Printed representation (used by `Display` and the interactive
    /// interface).
    fn print(&self) -> String;

    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
}

/// A constructor re-creating a value from argument terms (the paper's
/// `construct` method, given a printed representation).
pub type AdtConstructor = Arc<dyn Fn(&[Term]) -> Result<Arc<dyn AdtValue>, String> + Send + Sync>;

fn constructors() -> &'static RwLock<HashMap<&'static str, AdtConstructor>> {
    static REG: OnceLock<RwLock<HashMap<&'static str, AdtConstructor>>> = OnceLock::new();
    REG.get_or_init(|| RwLock::new(HashMap::new()))
}

/// The global ADT registry: register constructors, construct values.
pub mod registry {
    use super::*;

    /// Register (or replace) the constructor for `type_name`.
    pub fn register(type_name: &'static str, ctor: AdtConstructor) {
        constructors().write().unwrap().insert(type_name, ctor);
    }

    /// Construct a value of a registered type from argument terms.
    pub fn construct(type_name: &str, args: &[Term]) -> Result<Arc<dyn AdtValue>, String> {
        let reg = constructors().read().unwrap();
        match reg.get(type_name) {
            Some(ctor) => ctor(args),
            None => Err(format!("unregistered abstract data type: {type_name}")),
        }
    }

    /// Whether a constructor is registered for `type_name`.
    pub fn is_registered(type_name: &str) -> bool {
        constructors().read().unwrap().contains_key(type_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{Hash, Hasher};

    /// A toy 2-D point ADT, as a user of §7.1 would define.
    #[derive(Debug, PartialEq)]
    struct Point {
        x: i64,
        y: i64,
    }

    impl AdtValue for Point {
        fn type_name(&self) -> &'static str {
            "point"
        }
        fn equals(&self, other: &dyn AdtValue) -> bool {
            other
                .as_any()
                .downcast_ref::<Point>()
                .is_some_and(|p| p == self)
        }
        fn hash_value(&self) -> u64 {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            (self.x, self.y).hash(&mut h);
            h.finish()
        }
        fn print(&self) -> String {
            format!("point({}, {})", self.x, self.y)
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
    }

    #[test]
    fn adt_terms_compare_through_interface() {
        let a = Term::Adt(Arc::new(Point { x: 1, y: 2 }));
        let b = Term::Adt(Arc::new(Point { x: 1, y: 2 }));
        let c = Term::Adt(Arc::new(Point { x: 3, y: 4 }));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string(), "point(1, 2)");
        assert!(a.is_ground());
    }

    #[test]
    fn registry_roundtrip() {
        registry::register(
            "point",
            Arc::new(|args: &[Term]| match args {
                [Term::Int(x), Term::Int(y)] => {
                    Ok(Arc::new(Point { x: *x, y: *y }) as Arc<dyn AdtValue>)
                }
                _ => Err("point/2 expects two integers".into()),
            }),
        );
        assert!(registry::is_registered("point"));
        let v = registry::construct("point", &[Term::int(5), Term::int(6)]).unwrap();
        assert_eq!(v.print(), "point(5, 6)");
        assert!(registry::construct("point", &[Term::str("x")]).is_err());
        assert!(registry::construct("nosuch", &[]).is_err());
    }
}
