//! Term representation (§3.1, Figure 2).
//!
//! A [`Term`] is either a primitive constant (integer, double, string,
//! arbitrary-precision integer), a variable, a functor application
//! ([`App`]) or a user-defined abstract-data-type value. Functor terms
//! carry a lazily computed hash-consing slot (see [`crate::hashcons`]): a
//! ground functor term is assigned a unique identifier on demand, after
//! which unification against other identified terms is a single integer
//! comparison — the paper's key trick for cheap unification of large
//! terms.
//!
//! Variables are a primitive type because CORAL facts (not just rules) may
//! contain universally quantified variables. A variable is identified by a
//! [`VarId`] local to its enclosing rule or fact; bindings are never
//! substituted into terms during inference but recorded in binding
//! environments ([`crate::bindenv`]).

use crate::adt::AdtValue;
use crate::bignum::BigInt;
use crate::symbol::{well_known, Symbol};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// A variable identifier, local to one rule or fact.
///
/// Facts stored in relations are *self-contained*: their variables are
/// numbered `0..nvars` within the fact. Rule activations allocate a fresh
/// binding-environment frame per use, so the same `VarId` in two different
/// frames denotes two different variables.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// An `f64` with total ordering, equality and hashing (NaN normalized).
///
/// CORAL doubles are constants in relations, so they must be hashable and
/// totally ordered for duplicate checks and aggregate selections.
#[derive(Clone, Copy, Debug)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Wrap a double, normalizing NaN to a single canonical bit pattern.
    pub fn new(v: f64) -> OrderedF64 {
        if v.is_nan() {
            OrderedF64(f64::NAN)
        } else if v == 0.0 {
            // Collapse -0.0 and +0.0 so equal values hash equally.
            OrderedF64(0.0)
        } else {
            OrderedF64(v)
        }
    }

    /// The wrapped value.
    pub fn get(&self) -> f64 {
        self.0
    }

    fn key(&self) -> u64 {
        self.0.to_bits()
    }
}

impl PartialEq for OrderedF64 {
    fn eq(&self, other: &OrderedF64) -> bool {
        self.key() == other.key()
    }
}
impl Eq for OrderedF64 {}
impl Hash for OrderedF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.key().hash(state)
    }
}
impl PartialOrd for OrderedF64 {
    fn partial_cmp(&self, other: &OrderedF64) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    fn cmp(&self, other: &OrderedF64) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// A functor application `f(t1, …, tn)`.
///
/// This is the paper's Figure 2 record: the function symbol, the argument
/// array, and "extra information to make unification of such terms
/// efficient" — here the atomic `hc` slot caching groundness and the
/// lazily assigned hash-consing identifier.
pub struct App {
    sym: Symbol,
    args: Box<[Term]>,
    /// Lazy hash-consing state; see [`crate::hashcons`] for the encoding.
    pub(crate) hc: AtomicU64,
}

impl App {
    /// The function symbol.
    pub fn sym(&self) -> Symbol {
        self.sym
    }

    /// The argument terms.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }
}

/// A CORAL term.
#[derive(Clone)]
pub enum Term {
    /// Machine integer constant.
    Int(i64),
    /// Double constant with total ordering.
    Double(OrderedF64),
    /// String/atom constant (interned).
    Str(Symbol),
    /// Arbitrary-precision integer constant.
    Big(Arc<BigInt>),
    /// A variable, resolved through a binding environment.
    Var(VarId),
    /// Functor application, including list cells.
    App(Arc<App>),
    /// User-defined abstract data type value (§7.1 extensibility).
    Adt(Arc<dyn AdtValue>),
}

impl Term {
    /// Build a string/atom constant.
    pub fn str(s: &str) -> Term {
        Term::Str(Symbol::intern(s))
    }

    /// Build an integer constant.
    pub fn int(v: i64) -> Term {
        Term::Int(v)
    }

    /// Build a double constant.
    pub fn double(v: f64) -> Term {
        Term::Double(OrderedF64::new(v))
    }

    /// Build an arbitrary-precision integer constant.
    pub fn big(v: BigInt) -> Term {
        Term::Big(Arc::new(v))
    }

    /// Build a variable.
    pub fn var(v: u32) -> Term {
        Term::Var(VarId(v))
    }

    /// Build a functor application.
    pub fn app(sym: Symbol, args: Vec<Term>) -> Term {
        Term::App(Arc::new(App {
            sym,
            args: args.into_boxed_slice(),
            hc: AtomicU64::new(0),
        }))
    }

    /// Build a functor application from a name.
    pub fn apps(name: &str, args: Vec<Term>) -> Term {
        Term::app(Symbol::intern(name), args)
    }

    /// The empty list `[]`.
    pub fn nil() -> Term {
        Term::app(well_known::nil(), Vec::new())
    }

    /// A cons cell `[head | tail]`.
    pub fn cons(head: Term, tail: Term) -> Term {
        Term::app(well_known::cons(), vec![head, tail])
    }

    /// A proper list of the given elements.
    pub fn list<I: IntoIterator<Item = Term>>(items: I) -> Term
    where
        I::IntoIter: DoubleEndedIterator,
    {
        let mut t = Term::nil();
        for item in items.into_iter().rev() {
            t = Term::cons(item, t);
        }
        t
    }

    /// If this is a list cell, return `(head, tail)`.
    pub fn as_cons(&self) -> Option<(&Term, &Term)> {
        match self {
            Term::App(a) if a.sym == well_known::cons() && a.args.len() == 2 => {
                Some((&a.args[0], &a.args[1]))
            }
            _ => None,
        }
    }

    /// True iff this is the empty list constant.
    pub fn is_nil(&self) -> bool {
        matches!(self, Term::App(a) if a.sym == well_known::nil() && a.args.is_empty())
    }

    /// Iterate the elements of a *proper* list; `None` if not a proper list.
    pub fn list_elems(&self) -> Option<Vec<&Term>> {
        let mut out = Vec::new();
        let mut cur = self;
        loop {
            if cur.is_nil() {
                return Some(out);
            }
            match cur.as_cons() {
                Some((h, t)) => {
                    out.push(h);
                    cur = t;
                }
                None => return None,
            }
        }
    }

    /// The functor application node, if any.
    pub fn as_app(&self) -> Option<&Arc<App>> {
        match self {
            Term::App(a) => Some(a),
            _ => None,
        }
    }

    /// True iff the term contains no variables. Cached for functor terms
    /// through the hash-consing slot.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Int(_) | Term::Double(_) | Term::Str(_) | Term::Big(_) | Term::Adt(_) => true,
            Term::App(a) => crate::hashcons::app_is_ground(a),
        }
    }

    /// True iff the term is a ground *primitive* constant — an integer,
    /// double, interned string or bignum. These are the term shapes a
    /// columnar batch can store flat (one enum tag plus a machine word);
    /// variables, functor terms and ADT values go to the batch's sparse
    /// side-table. O(1) by construction: no recursion, no cache probe.
    pub fn is_ground_primitive(&self) -> bool {
        matches!(
            self,
            Term::Int(_) | Term::Double(_) | Term::Str(_) | Term::Big(_)
        )
    }

    /// Collect the distinct variables occurring in the term, in first
    /// occurrence order.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Term::Var(v) if !out.contains(v) => {
                out.push(*v);
            }
            Term::App(a) => {
                for t in a.args() {
                    t.collect_vars(out);
                }
            }
            _ => {}
        }
    }

    /// One greater than the largest `VarId` in the term (0 if ground).
    pub fn var_bound(&self) -> u32 {
        match self {
            Term::Var(v) => v.0 + 1,
            Term::App(a) => a.args().iter().map(|t| t.var_bound()).max().unwrap_or(0),
            _ => 0,
        }
    }

    /// A copy with every variable id shifted by `offset` (renaming apart).
    pub fn shift_vars(&self, offset: u32) -> Term {
        if offset == 0 || self.is_ground() {
            return self.clone();
        }
        match self {
            Term::Var(v) => Term::Var(VarId(v.0 + offset)),
            Term::App(a) => Term::app(
                a.sym(),
                a.args().iter().map(|t| t.shift_vars(offset)).collect(),
            ),
            other => other.clone(),
        }
    }

    /// A copy with variables remapped through `map` (used to compact
    /// variable ids when copying facts out of binding environments).
    pub fn map_vars(&self, map: &dyn Fn(VarId) -> VarId) -> Term {
        match self {
            Term::Var(v) => Term::Var(map(*v)),
            Term::App(a) if !a.args().is_empty() && !self.is_ground() => {
                Term::app(a.sym(), a.args().iter().map(|t| t.map_vars(map)).collect())
            }
            other => other.clone(),
        }
    }

    /// Total order over terms, used by aggregate selections and `min`/
    /// `max` aggregation (§5.5.2). Numeric constants of different kinds
    /// compare numerically; otherwise, ordering is by type rank then
    /// value. Variables compare by id; functor terms lexicographically by
    /// symbol name, arity, then arguments.
    pub fn order_cmp(&self, other: &Term) -> Ordering {
        use Term::*;
        match (self, other) {
            (Int(a), Int(b)) => a.cmp(b),
            (Double(a), Double(b)) => a.cmp(b),
            (Big(a), Big(b)) => a.cmp(b),
            (Int(a), Big(b)) => BigInt::from_i64(*a).cmp(b),
            (Big(a), Int(b)) => a.as_ref().cmp(&BigInt::from_i64(*b)),
            (Int(a), Double(b)) => (*a as f64).total_cmp(&b.get()),
            (Double(a), Int(b)) => a.get().total_cmp(&(*b as f64)),
            (Big(a), Double(b)) => big_to_f64(a).total_cmp(&b.get()),
            (Double(a), Big(b)) => a.get().total_cmp(&big_to_f64(b)),
            (Str(a), Str(b)) => a.as_str().cmp(&b.as_str()),
            (Var(a), Var(b)) => a.cmp(b),
            (App(a), App(b)) => a
                .sym()
                .as_str()
                .cmp(&b.sym().as_str())
                .then_with(|| a.arity().cmp(&b.arity()))
                .then_with(|| {
                    for (x, y) in a.args().iter().zip(b.args()) {
                        match x.order_cmp(y) {
                            Ordering::Equal => continue,
                            o => return o,
                        }
                    }
                    Ordering::Equal
                }),
            (Adt(a), Adt(b)) => a
                .type_name()
                .cmp(b.type_name())
                .then_with(|| a.hash_value().cmp(&b.hash_value())),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

fn rank(t: &Term) -> u8 {
    match t {
        Term::Int(_) | Term::Double(_) | Term::Big(_) => 0,
        Term::Str(_) => 1,
        Term::Var(_) => 2,
        Term::App(_) => 3,
        Term::Adt(_) => 4,
    }
}

fn big_to_f64(b: &BigInt) -> f64 {
    b.to_string().parse().unwrap_or(f64::INFINITY)
}

impl PartialEq for Term {
    fn eq(&self, other: &Term) -> bool {
        use Term::*;
        match (self, other) {
            (Int(a), Int(b)) => a == b,
            (Double(a), Double(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Big(a), Big(b)) => a == b,
            (Var(a), Var(b)) => a == b,
            (App(a), App(b)) => {
                if Arc::ptr_eq(a, b) {
                    return true;
                }
                // Hash-consing fast path: two ground interned terms are
                // equal iff their ids are equal.
                if let (Some(x), Some(y)) =
                    (crate::hashcons::cached_id(a), crate::hashcons::cached_id(b))
                {
                    return x == y;
                }
                a.sym() == b.sym()
                    && a.args().len() == b.args().len()
                    && a.args().iter().zip(b.args()).all(|(x, y)| x == y)
            }
            (Adt(a), Adt(b)) => a.equals(b.as_ref()),
            _ => false,
        }
    }
}

impl Eq for Term {}

impl Hash for Term {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Term::Int(v) => {
                0u8.hash(state);
                v.hash(state);
            }
            Term::Double(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            Term::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
            Term::Big(b) => {
                3u8.hash(state);
                b.hash(state);
            }
            Term::Var(v) => {
                4u8.hash(state);
                v.hash(state);
            }
            Term::App(a) => {
                5u8.hash(state);
                a.sym().hash(state);
                a.args().len().hash(state);
                for t in a.args() {
                    t.hash(state);
                }
            }
            Term::Adt(a) => {
                6u8.hash(state);
                a.type_name().hash(state);
                a.hash_value().hash(state);
            }
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Int(v) => write!(f, "{v}"),
            Term::Double(v) => {
                let x = v.get();
                if x == x.trunc() && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Term::Str(s) => {
                let name = s.as_str();
                if is_atom_like(&name) {
                    f.write_str(&name)
                } else {
                    write!(f, "{name:?}")
                }
            }
            Term::Big(b) => write!(f, "{b}"),
            Term::Var(v) => write!(f, "V{}", v.0),
            Term::App(a) => {
                // List sugar.
                if self.is_nil() {
                    return f.write_str("[]");
                }
                if self.as_cons().is_some() {
                    f.write_str("[")?;
                    let mut cur = self;
                    let mut first = true;
                    loop {
                        match cur.as_cons() {
                            Some((h, t)) => {
                                if !first {
                                    f.write_str(", ")?;
                                }
                                write!(f, "{h}")?;
                                first = false;
                                cur = t;
                            }
                            None => {
                                if cur.is_nil() {
                                    break;
                                }
                                write!(f, " | {cur}")?;
                                break;
                            }
                        }
                    }
                    return f.write_str("]");
                }
                let name = a.sym().as_str();
                if is_atom_like(&name) {
                    f.write_str(&name)?;
                } else {
                    write!(f, "{name:?}")?;
                }
                if !a.args().is_empty() {
                    f.write_str("(")?;
                    for (i, t) in a.args().iter().enumerate() {
                        if i > 0 {
                            f.write_str(", ")?;
                        }
                        write!(f, "{t}")?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Term::Adt(a) => f.write_str(&a.print()),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

fn is_atom_like(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => chars.all(|c| c.is_ascii_alphanumeric() || c == '_'),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_and_hash() {
        assert_eq!(Term::int(5), Term::int(5));
        assert_ne!(Term::int(5), Term::int(6));
        assert_ne!(Term::int(5), Term::double(5.0));
        assert_eq!(Term::double(0.0), Term::double(-0.0));
        assert_eq!(Term::str("a"), Term::str("a"));
        assert_ne!(Term::str("a"), Term::str("b"));
    }

    #[test]
    fn app_structural_equality() {
        let t1 = Term::apps("f", vec![Term::var(0), Term::int(10), Term::var(1)]);
        let t2 = Term::apps("f", vec![Term::var(0), Term::int(10), Term::var(1)]);
        let t3 = Term::apps("f", vec![Term::var(0), Term::int(11), Term::var(1)]);
        assert_eq!(t1, t2);
        assert_ne!(t1, t3);
    }

    #[test]
    fn groundness() {
        assert!(Term::int(1).is_ground());
        assert!(!Term::var(0).is_ground());
        assert!(Term::apps("f", vec![Term::int(1), Term::str("x")]).is_ground());
        assert!(!Term::apps("f", vec![Term::int(1), Term::var(0)]).is_ground());
        // Cached answer remains correct on repeat queries.
        let t = Term::apps("g", vec![Term::var(3)]);
        assert!(!t.is_ground());
        assert!(!t.is_ground());
    }

    #[test]
    fn list_construction_and_display() {
        let l = Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]);
        assert_eq!(l.to_string(), "[1, 2, 3]");
        assert_eq!(l.list_elems().unwrap().len(), 3);
        let open = Term::cons(Term::var(0), Term::var(1));
        assert_eq!(open.to_string(), "[V0 | V1]");
        assert!(open.list_elems().is_none());
        assert_eq!(Term::nil().to_string(), "[]");
        assert!(Term::nil().is_nil());
    }

    #[test]
    fn display_terms() {
        let t = Term::apps("edge", vec![Term::str("a"), Term::str("b c")]);
        assert_eq!(t.to_string(), "edge(a, \"b c\")");
        assert_eq!(Term::double(2.0).to_string(), "2.0");
        assert_eq!(Term::double(2.5).to_string(), "2.5");
    }

    #[test]
    fn var_collection_and_shifting() {
        let t = Term::apps(
            "f",
            vec![
                Term::var(1),
                Term::apps("g", vec![Term::var(0), Term::var(1)]),
            ],
        );
        let mut vars = Vec::new();
        t.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(1), VarId(0)]);
        assert_eq!(t.var_bound(), 2);
        let shifted = t.shift_vars(10);
        assert_eq!(shifted.var_bound(), 12);
        let mut vars2 = Vec::new();
        shifted.collect_vars(&mut vars2);
        assert_eq!(vars2, vec![VarId(11), VarId(10)]);
    }

    #[test]
    fn order_cmp_numeric_cross_type() {
        use std::cmp::Ordering::*;
        assert_eq!(Term::int(1).order_cmp(&Term::double(1.5)), Less);
        assert_eq!(Term::double(2.5).order_cmp(&Term::int(2)), Greater);
        assert_eq!(
            Term::int(3).order_cmp(&Term::big(BigInt::from_i64(3))),
            Equal
        );
        assert_eq!(
            Term::big("99999999999999999999999".parse().unwrap()).order_cmp(&Term::int(5)),
            Greater
        );
        // Non-numeric ranks: numbers < strings < vars < apps.
        assert_eq!(Term::int(9).order_cmp(&Term::str("a")), Less);
        assert_eq!(Term::str("z").order_cmp(&Term::var(0)), Less);
        assert_eq!(Term::var(9).order_cmp(&Term::apps("f", vec![])), Less);
    }

    #[test]
    fn order_cmp_apps_lexicographic() {
        use std::cmp::Ordering::*;
        let a = Term::apps("f", vec![Term::int(1)]);
        let b = Term::apps("f", vec![Term::int(2)]);
        let c = Term::apps("g", vec![Term::int(0)]);
        assert_eq!(a.order_cmp(&b), Less);
        assert_eq!(b.order_cmp(&c), Less);
        assert_eq!(a.order_cmp(&a.clone()), Equal);
    }

    #[test]
    fn map_vars_compacts() {
        let t = Term::apps("f", vec![Term::var(7), Term::var(9)]);
        let mapped = t.map_vars(&|v| VarId(v.0 - 7));
        let mut vars = Vec::new();
        mapped.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(0), VarId(2)]);
    }
}
