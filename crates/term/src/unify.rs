//! Unification, matching, variants and subsumption (§3.1).
//!
//! [`unify`] is the engine's inference primitive: it unifies two
//! `(term, env)` pairs under an [`EnvSet`], binding variables through the
//! trail so a failed or exhausted join step can undo them. Ground functor
//! terms that have been hash-consed compare by identifier — the paper's
//! O(1) fast path for large terms.
//!
//! Like CORAL (and Prolog), unification performs no occurs check; the
//! copy-out routine in [`crate::bindenv`] detects the (pathological)
//! cyclic case.
//!
//! [`match_one_way`], [`variant`] and [`subsumes`] operate on
//! self-contained terms (as stored in relations) and implement the
//! subsumption checks of §4.2: a relation under set semantics discards a
//! new fact if an existing fact subsumes it.

use crate::bindenv::{EnvId, EnvSet};
use crate::hashcons;
use crate::term::{Term, VarId};

/// Unify `(t1, e1)` with `(t2, e2)`, binding variables in `envs`.
///
/// On failure, bindings made during the attempt are *not* undone — the
/// caller brackets attempts with [`EnvSet::mark`]/[`EnvSet::undo`], which
/// is what the nested-loops join does for every candidate tuple.
pub fn unify(envs: &mut EnvSet, t1: &Term, e1: EnvId, t2: &Term, e2: EnvId) -> bool {
    let ok = unify_inner(envs, t1, e1, t2, e2);
    crate::profile::bump(|c| {
        c.unify_attempts += 1;
        if !ok {
            c.unify_failures += 1;
        }
    });
    ok
}

// The recursive worker: counted once per top-level attempt, not per
// subterm visited.
fn unify_inner(envs: &mut EnvSet, t1: &Term, e1: EnvId, t2: &Term, e2: EnvId) -> bool {
    let (t1, e1) = envs.deref(t1, e1);
    let (t2, e2) = envs.deref(t2, e2);
    match (&t1, &t2) {
        (Term::Var(v1), Term::Var(v2)) => {
            if e1 == e2 && v1 == v2 {
                true
            } else {
                envs.bind(e1, *v1, t2.clone(), e2);
                true
            }
        }
        (Term::Var(v1), _) => {
            envs.bind(e1, *v1, t2.clone(), e2);
            true
        }
        (_, Term::Var(v2)) => {
            envs.bind(e2, *v2, t1.clone(), e1);
            true
        }
        (Term::App(a1), Term::App(a2)) => {
            // Hash-consing fast path: identified ground terms unify iff
            // their ids are equal.
            if let (Some(x), Some(y)) = (hashcons::cached_id(a1), hashcons::cached_id(a2)) {
                return x == y;
            }
            if a1.sym() != a2.sym() || a1.arity() != a2.arity() {
                return false;
            }
            for (x, y) in a1.args().iter().zip(a2.args()) {
                if !unify_inner(envs, x, e1, y, e2) {
                    return false;
                }
            }
            true
        }
        _ => t1 == t2,
    }
}

/// Unify a whole argument list pairwise (rule head against a subquery,
/// body literal against a fact).
pub fn unify_all(envs: &mut EnvSet, ts1: &[Term], e1: EnvId, ts2: &[Term], e2: EnvId) -> bool {
    debug_assert_eq!(ts1.len(), ts2.len());
    ts1.iter().zip(ts2).all(|(a, b)| unify(envs, a, e1, b, e2))
}

/// A substitution for one-way matching over self-contained terms.
type Subst = Vec<(VarId, Term)>;

fn subst_lookup(s: &Subst, v: VarId) -> Option<&Term> {
    s.iter().find(|(k, _)| *k == v).map(|(_, t)| t)
}

/// One-way matching: find a substitution θ for the variables of `pattern`
/// such that `pattern·θ == target` *syntactically* (variables in `target`
/// are treated as constants). Returns the substitution on success.
///
/// This is the primitive behind pattern-form indices (§3.3) and
/// subsumption checks.
pub fn match_one_way(pattern: &Term, target: &Term) -> Option<Subst> {
    let mut subst = Vec::new();
    if match_into(pattern, target, &mut subst) {
        Some(subst)
    } else {
        None
    }
}

fn match_into(pattern: &Term, target: &Term, subst: &mut Subst) -> bool {
    match pattern {
        Term::Var(v) => match subst_lookup(subst, *v) {
            Some(bound) => bound == target,
            None => {
                subst.push((*v, target.clone()));
                true
            }
        },
        Term::App(pa) => match target {
            Term::App(ta) => {
                if let (Some(x), Some(y)) = (hashcons::cached_id(pa), hashcons::cached_id(ta)) {
                    return x == y;
                }
                pa.sym() == ta.sym()
                    && pa.arity() == ta.arity()
                    && pa
                        .args()
                        .iter()
                        .zip(ta.args())
                        .all(|(p, t)| match_into(p, t, subst))
            }
            _ => false,
        },
        _ => pattern == target,
    }
}

/// Match a pattern argument list against a target argument list.
pub fn match_args(pattern: &[Term], target: &[Term]) -> Option<Subst> {
    if pattern.len() != target.len() {
        return None;
    }
    let mut subst = Vec::new();
    for (p, t) in pattern.iter().zip(target) {
        if !match_into(p, t, &mut subst) {
            return None;
        }
    }
    Some(subst)
}

/// Variant check (alpha-equivalence): `a` and `b` are equal up to a
/// bijective renaming of variables.
pub fn variant(a: &Term, b: &Term) -> bool {
    let mut fwd: Vec<(VarId, VarId)> = Vec::new();
    let mut bwd: Vec<(VarId, VarId)> = Vec::new();
    variant_into(a, b, &mut fwd, &mut bwd)
}

fn variant_into(
    a: &Term,
    b: &Term,
    fwd: &mut Vec<(VarId, VarId)>,
    bwd: &mut Vec<(VarId, VarId)>,
) -> bool {
    match (a, b) {
        (Term::Var(x), Term::Var(y)) => {
            let f = fwd.iter().find(|(k, _)| k == x).map(|(_, v)| *v);
            let g = bwd.iter().find(|(k, _)| k == y).map(|(_, v)| *v);
            match (f, g) {
                (None, None) => {
                    fwd.push((*x, *y));
                    bwd.push((*y, *x));
                    true
                }
                (Some(fy), Some(gx)) => fy == *y && gx == *x,
                _ => false,
            }
        }
        (Term::App(aa), Term::App(ba)) => {
            if let (Some(x), Some(y)) = (hashcons::cached_id(aa), hashcons::cached_id(ba)) {
                return x == y;
            }
            aa.sym() == ba.sym()
                && aa.arity() == ba.arity()
                && aa
                    .args()
                    .iter()
                    .zip(ba.args())
                    .all(|(p, q)| variant_into(p, q, fwd, bwd))
        }
        _ => a == b,
    }
}

/// Subsumption over argument lists: `general` subsumes `specific` iff some
/// substitution θ makes `general·θ` syntactically equal to `specific`.
/// A more general (non-ground) fact subsumes all its instances — CORAL's
/// set-semantics duplicate check for relations with non-ground facts.
pub fn subsumes(general: &[Term], specific: &[Term]) -> bool {
    match_args(general, specific).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_envs(nvars: usize) -> (EnvSet, EnvId) {
        let mut envs = EnvSet::new();
        let e = envs.push_frame(nvars);
        (envs, e)
    }

    #[test]
    fn unify_var_with_constant() {
        let (mut envs, e) = fresh_envs(1);
        assert!(unify(&mut envs, &Term::var(0), e, &Term::int(5), e));
        assert_eq!(envs.resolve(&Term::var(0), e), Term::int(5));
    }

    #[test]
    fn unify_structures() {
        let (mut envs, e) = fresh_envs(2);
        // f(X, 10) = f(25, Y)
        let e2 = envs.push_frame(1);
        let t1 = Term::apps("f", vec![Term::var(0), Term::int(10)]);
        let t2 = Term::apps("f", vec![Term::int(25), Term::var(0)]);
        assert!(unify(&mut envs, &t1, e, &t2, e2));
        assert_eq!(envs.resolve(&t1, e).to_string(), "f(25, 10)");
        assert_eq!(envs.resolve(&t2, e2).to_string(), "f(25, 10)");
    }

    #[test]
    fn unify_fails_on_clash() {
        let (mut envs, e) = fresh_envs(1);
        let t1 = Term::apps("f", vec![Term::int(1)]);
        let t2 = Term::apps("f", vec![Term::int(2)]);
        assert!(!unify(&mut envs, &t1, e, &t2, e));
        assert!(!unify(
            &mut envs,
            &Term::apps("f", vec![]),
            e,
            &Term::apps("g", vec![]),
            e
        ));
        assert!(!unify(&mut envs, &Term::int(1), e, &Term::str("1"), e));
    }

    #[test]
    fn unify_aliased_vars() {
        let (mut envs, e) = fresh_envs(3);
        // X = Y, Y = Z, Z = 7 => X = 7
        assert!(unify(&mut envs, &Term::var(0), e, &Term::var(1), e));
        assert!(unify(&mut envs, &Term::var(1), e, &Term::var(2), e));
        assert!(unify(&mut envs, &Term::var(2), e, &Term::int(7), e));
        assert_eq!(envs.resolve(&Term::var(0), e), Term::int(7));
        // Self-unification of the same variable is a no-op success.
        let m = envs.mark();
        assert!(unify(&mut envs, &Term::var(0), e, &Term::var(0), e));
        assert_eq!(envs.mark(), m);
    }

    #[test]
    fn unify_hashconsed_fast_path() {
        let big1 = Term::list((0..500).map(Term::int).collect::<Vec<_>>());
        let big2 = Term::list((0..500).map(Term::int).collect::<Vec<_>>());
        let big3 = Term::list((1..501).map(Term::int).collect::<Vec<_>>());
        crate::hashcons::intern(&big1);
        crate::hashcons::intern(&big2);
        crate::hashcons::intern(&big3);
        let (mut envs, e) = fresh_envs(0);
        assert!(unify(&mut envs, &big1, e, &big2, e));
        assert!(!unify(&mut envs, &big1, e, &big3, e));
    }

    #[test]
    fn unify_undone_by_trail() {
        let (mut envs, e) = fresh_envs(2);
        let m = envs.mark();
        let t1 = Term::apps("f", vec![Term::var(0), Term::int(1)]);
        let t2 = Term::apps("f", vec![Term::int(9), Term::int(2)]);
        // Fails after binding V0; undo must restore it.
        assert!(!unify(&mut envs, &t1, e, &t2, e));
        envs.undo(m);
        assert!(envs.lookup(e, VarId(0)).is_none());
        assert!(unify(
            &mut envs,
            &t1,
            e,
            &Term::apps("f", vec![Term::int(3), Term::int(1)]),
            e
        ));
        assert_eq!(envs.resolve(&Term::var(0), e), Term::int(3));
    }

    #[test]
    fn one_way_match_binds_pattern_only() {
        // append pattern from §3.3: first argument matching [X|[1,2,3]]
        let pat = Term::cons(
            Term::var(0),
            Term::list(vec![Term::int(1), Term::int(2), Term::int(3)]),
        );
        let target = Term::list(vec![Term::int(5), Term::int(1), Term::int(2), Term::int(3)]);
        let subst = match_one_way(&pat, &target).unwrap();
        assert_eq!(subst, vec![(VarId(0), Term::int(5))]);
        // Target variables are constants: f(X) does not match f(1) in reverse.
        assert!(match_one_way(&target, &pat).is_none());
    }

    #[test]
    fn one_way_match_repeated_vars() {
        let pat = Term::apps("p", vec![Term::var(0), Term::var(0)]);
        assert!(match_one_way(&pat, &Term::apps("p", vec![Term::int(1), Term::int(1)])).is_some());
        assert!(match_one_way(&pat, &Term::apps("p", vec![Term::int(1), Term::int(2)])).is_none());
    }

    #[test]
    fn variant_checks() {
        let a = Term::apps("f", vec![Term::var(0), Term::var(1), Term::var(0)]);
        let b = Term::apps("f", vec![Term::var(5), Term::var(3), Term::var(5)]);
        let c = Term::apps("f", vec![Term::var(5), Term::var(3), Term::var(3)]);
        assert!(variant(&a, &b));
        assert!(!variant(&a, &c));
        // Non-injective renaming is rejected both ways.
        assert!(!variant(&c, &a));
        assert!(variant(&Term::int(1), &Term::int(1)));
        assert!(!variant(&Term::int(1), &Term::int(2)));
    }

    #[test]
    fn subsumption() {
        // p(X, Y) subsumes p(1, 2); p(X, X) does not.
        let gen = [Term::var(0), Term::var(1)];
        let dup = [Term::var(0), Term::var(0)];
        let spec = [Term::int(1), Term::int(2)];
        assert!(subsumes(&gen, &spec));
        assert!(!subsumes(&dup, &spec));
        assert!(subsumes(&dup, &[Term::int(3), Term::int(3)]));
        // Ground subsumes only itself.
        assert!(subsumes(&spec, &[Term::int(1), Term::int(2)]));
        assert!(!subsumes(&spec, &[Term::int(1), Term::int(3)]));
    }
}
