//! Lazy hash-consing of ground terms (§3.1).
//!
//! "The current implementation of CORAL uses a modified version of
//! hash-consing that operates in a lazy fashion. Hash-consing assigns
//! unique identifiers to each (ground) functor term, such that two
//! (ground) functor terms unify if and only if their unique identifiers
//! are the same."
//!
//! Every [`App`] node carries an atomic slot encoding one of:
//!
//! * `UNKNOWN` — groundness not yet computed;
//! * `NONGROUND` — contains a variable; never interned;
//! * `GROUND_NOID` — known ground, identifier not yet assigned (the
//!   *lazy* part: ids are only assigned when a term is first inserted
//!   into a relation or compared against another identified term);
//! * `id + TAG_BASE` — interned with identifier `id`.
//!
//! Identifiers are drawn from a process-wide table keyed by the term's
//! structure, with child terms identified first — so structurally equal
//! ground terms always receive the same id, regardless of where they were
//! built. Terms containing ADT values are ground but not interned (their
//! equality is behind a virtual interface), and fall back to structural
//! comparison.

use crate::term::{App, Term};
use std::collections::HashMap;
use std::sync::atomic::Ordering::{Acquire, Release};
use std::sync::{Arc, OnceLock, RwLock};

/// A unique identifier for an interned ground term.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct HcId(pub u64);

const UNKNOWN: u64 = 0;
const NONGROUND: u64 = 1;
const GROUND_NOID: u64 = 2;
const TAG_BASE: u64 = 3;

/// Structural key of a ground term, with children already interned.
#[derive(PartialEq, Eq, Hash)]
enum HcKey {
    Int(i64),
    Double(u64),
    Str(u32),
    Big(String),
    App(u32, Box<[HcId]>),
}

struct HcTable {
    map: HashMap<HcKey, HcId>,
    next: u64,
}

fn table() -> &'static RwLock<HcTable> {
    static T: OnceLock<RwLock<HcTable>> = OnceLock::new();
    T.get_or_init(|| {
        RwLock::new(HcTable {
            map: HashMap::new(),
            next: 0,
        })
    })
}

/// Number of distinct interned terms (for instrumentation and benches).
pub fn table_len() -> usize {
    table().read().unwrap().map.len()
}

/// Groundness of a functor node, cached in its hash-consing slot.
pub(crate) fn app_is_ground(app: &Arc<App>) -> bool {
    match app.hc.load(Acquire) {
        NONGROUND => false,
        UNKNOWN => {
            let ground = app.args().iter().all(|t| t.is_ground());
            app.hc
                .compare_exchange(
                    UNKNOWN,
                    if ground { GROUND_NOID } else { NONGROUND },
                    Release,
                    Acquire,
                )
                .ok();
            ground
        }
        _ => true,
    }
}

/// The cached identifier of a functor node, if one has been assigned.
pub(crate) fn cached_id(app: &Arc<App>) -> Option<HcId> {
    let v = app.hc.load(Acquire);
    if v >= TAG_BASE {
        Some(HcId(v - TAG_BASE))
    } else {
        None
    }
}

/// Approximate retained size of one table entry: the key, its heap
/// payload, and the id it maps to. Feeds the term-bytes meter the
/// resource governor reads; precision matters less than monotonicity.
fn key_bytes(key: &HcKey) -> u64 {
    let payload = match key {
        HcKey::Big(s) => s.len(),
        HcKey::App(_, ids) => std::mem::size_of_val::<[HcId]>(ids),
        _ => 0,
    };
    (std::mem::size_of::<HcKey>() + std::mem::size_of::<HcId>() + payload) as u64
}

fn intern_key(key: HcKey) -> HcId {
    {
        let t = table().read().unwrap();
        if let Some(&id) = t.map.get(&key) {
            crate::profile::bump(|c| c.hashcons_hits += 1);
            return id;
        }
    }
    let mut t = table().write().unwrap();
    if let Some(&id) = t.map.get(&key) {
        crate::profile::bump(|c| c.hashcons_hits += 1);
        return id;
    }
    let id = HcId(t.next);
    t.next += 1;
    crate::meter::add_term_bytes(key_bytes(&key));
    t.map.insert(key, id);
    crate::profile::bump(|c| c.hashcons_misses += 1);
    id
}

/// Intern a ground term, assigning (or retrieving) its unique identifier.
///
/// Returns `None` for non-ground terms and for terms containing ADT
/// values. Idempotent; concurrent calls agree.
pub fn intern(term: &Term) -> Option<HcId> {
    match term {
        Term::Int(v) => Some(intern_key(HcKey::Int(*v))),
        Term::Double(v) => Some(intern_key(HcKey::Double(v.get().to_bits()))),
        Term::Str(s) => Some(intern_key(HcKey::Str(s.id()))),
        Term::Big(b) => Some(intern_key(HcKey::Big(b.to_string()))),
        Term::Var(_) => None,
        Term::Adt(_) => None,
        Term::App(app) => {
            if let Some(id) = cached_id(app) {
                crate::profile::bump(|c| c.hashcons_hits += 1);
                return Some(id);
            }
            if !app_is_ground(app) {
                return None;
            }
            let mut child_ids = Vec::with_capacity(app.args().len());
            for t in app.args() {
                child_ids.push(intern(t)?);
            }
            let id = intern_key(HcKey::App(app.sym().id(), child_ids.into_boxed_slice()));
            app.hc.store(id.0 + TAG_BASE, Release);
            Some(id)
        }
    }
}

/// Fast equality for two terms when both can be identified: `Some(eq)` if
/// both were interned, `None` if structural comparison is required.
pub fn id_eq(a: &Term, b: &Term) -> Option<bool> {
    let (x, y) = (intern(a)?, intern(b)?);
    Some(x == y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_structures_get_equal_ids() {
        let a = Term::apps(
            "f",
            vec![Term::int(1), Term::list(vec![Term::int(2), Term::int(3)])],
        );
        let b = Term::apps(
            "f",
            vec![Term::int(1), Term::list(vec![Term::int(2), Term::int(3)])],
        );
        assert_eq!(intern(&a), intern(&b));
        assert!(intern(&a).is_some());
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        let a = Term::apps("f", vec![Term::int(1)]);
        let b = Term::apps("f", vec![Term::int(2)]);
        let c = Term::apps("g", vec![Term::int(1)]);
        assert_ne!(intern(&a), intern(&b));
        assert_ne!(intern(&a), intern(&c));
    }

    #[test]
    fn nonground_terms_are_not_interned() {
        let t = Term::apps("f", vec![Term::var(0)]);
        assert_eq!(intern(&t), None);
        assert_eq!(id_eq(&t, &t), None);
    }

    #[test]
    fn interning_is_lazy_and_cached() {
        let t = Term::apps("lazy_cache_probe", vec![Term::int(42)]);
        let app = t.as_app().unwrap();
        assert!(cached_id(app).is_none());
        // Groundness checks alone must not assign an id.
        assert!(t.is_ground());
        assert!(cached_id(app).is_none());
        let id = intern(&t).unwrap();
        assert_eq!(cached_id(app), Some(id));
        assert_eq!(intern(&t), Some(id));
    }

    #[test]
    fn id_eq_matches_structural_eq() {
        let a = Term::apps("pair", vec![Term::str("x"), Term::int(9)]);
        let b = Term::apps("pair", vec![Term::str("x"), Term::int(9)]);
        let c = Term::apps("pair", vec![Term::str("y"), Term::int(9)]);
        assert_eq!(id_eq(&a, &b), Some(true));
        assert_eq!(id_eq(&a, &c), Some(false));
        assert!(a == b);
        assert!(a != c);
    }

    #[test]
    fn deep_terms_intern() {
        let mut t = Term::nil();
        for i in 0..2000 {
            t = Term::cons(Term::int(i), t);
        }
        let mut u = Term::nil();
        for i in 0..2000 {
            u = Term::cons(Term::int(i), u);
        }
        assert_eq!(intern(&t), intern(&u));
        // After interning, equality is O(1) via ids.
        assert_eq!(t, u);
    }
}
