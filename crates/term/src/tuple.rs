//! Tuples — self-contained facts (§3).
//!
//! "The class `Tuple` defines tuples of `Arg`s." A CORAL fact may contain
//! universally quantified variables (§3.1); a stored [`Tuple`] is
//! therefore *self-contained*: its variables are numbered compactly
//! `0..nvars` in first-occurrence order. That normalization makes
//! structural equality coincide with the variant (alpha-equivalence)
//! check, so hash-based duplicate elimination works uniformly for ground
//! and non-ground facts.

use crate::term::{Term, VarId};
use crate::unify;
use std::fmt;
use std::sync::Arc;

/// A stored fact: an argument list with compactly numbered variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tuple {
    args: Arc<[Term]>,
    nvars: u32,
}

impl Tuple {
    /// Build a tuple, renumbering variables to first-occurrence order.
    pub fn new(args: Vec<Term>) -> Tuple {
        let needs_renumber = {
            let mut seen: Vec<VarId> = Vec::new();
            let mut canonical = true;
            for a in &args {
                a.collect_vars(&mut seen);
            }
            for (i, v) in seen.iter().enumerate() {
                if v.0 != i as u32 {
                    canonical = false;
                    break;
                }
            }
            if canonical {
                None
            } else {
                Some(seen)
            }
        };
        match needs_renumber {
            None => {
                let mut seen = Vec::new();
                for a in &args {
                    a.collect_vars(&mut seen);
                }
                Tuple {
                    args: args.into(),
                    nvars: seen.len() as u32,
                }
            }
            Some(order) => {
                let remap = |v: VarId| VarId(order.iter().position(|x| *x == v).unwrap() as u32);
                let args: Vec<Term> = args.iter().map(|t| t.map_vars(&remap)).collect();
                Tuple {
                    args: args.into(),
                    nvars: order.len() as u32,
                }
            }
        }
    }

    /// Build a ground tuple without the renumbering scan.
    pub fn ground(args: Vec<Term>) -> Tuple {
        debug_assert!(args.iter().all(|t| t.is_ground()));
        Tuple {
            args: args.into(),
            nvars: 0,
        }
    }

    /// The argument terms.
    pub fn args(&self) -> &[Term] {
        &self.args
    }

    /// Arity.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// Number of distinct variables in the tuple.
    pub fn nvars(&self) -> u32 {
        self.nvars
    }

    /// True iff the tuple contains no variables.
    pub fn is_ground(&self) -> bool {
        self.nvars == 0
    }

    /// Intern all ground argument terms (lazy hash-consing trigger; called
    /// by relations on insert so later unifications take the id path).
    pub fn intern_ground(&self) {
        for t in self.args.iter() {
            crate::hashcons::intern(t);
        }
    }

    /// This tuple subsumes `other`: some substitution of this tuple's
    /// variables yields `other` exactly.
    pub fn subsumes(&self, other: &Tuple) -> bool {
        unify::subsumes(&self.args, &other.args)
    }

    /// Project to the argument positions in `cols`.
    pub fn project(&self, cols: &[usize]) -> Tuple {
        Tuple::new(cols.iter().map(|&c| self.args[c].clone()).collect())
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("(")?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{t}")?;
        }
        f.write_str(")")
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_tuples_compare() {
        let a = Tuple::new(vec![Term::int(1), Term::str("x")]);
        let b = Tuple::new(vec![Term::int(1), Term::str("x")]);
        let c = Tuple::new(vec![Term::int(2), Term::str("x")]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_ground());
    }

    #[test]
    fn variant_tuples_are_equal_after_normalization() {
        // p(X, Y, X) with any var numbering normalizes to the same tuple.
        let a = Tuple::new(vec![Term::var(7), Term::var(2), Term::var(7)]);
        let b = Tuple::new(vec![Term::var(0), Term::var(5), Term::var(0)]);
        assert_eq!(a, b);
        assert_eq!(a.nvars(), 2);
        // But a different sharing pattern differs.
        let c = Tuple::new(vec![Term::var(0), Term::var(0), Term::var(1)]);
        assert_ne!(a, c);
    }

    #[test]
    fn canonical_tuples_skip_renumbering() {
        let t = Tuple::new(vec![Term::var(0), Term::var(1)]);
        assert_eq!(t.args()[0], Term::var(0));
        assert_eq!(t.nvars(), 2);
    }

    #[test]
    fn subsumption_between_tuples() {
        let gen = Tuple::new(vec![Term::var(0), Term::var(1)]);
        let mid = Tuple::new(vec![Term::var(0), Term::var(0)]);
        let spec = Tuple::new(vec![Term::int(1), Term::int(1)]);
        assert!(gen.subsumes(&mid));
        assert!(gen.subsumes(&spec));
        assert!(mid.subsumes(&spec));
        assert!(!mid.subsumes(&gen));
        assert!(!spec.subsumes(&mid));
        assert!(gen.subsumes(&gen));
    }

    #[test]
    fn projection() {
        let t = Tuple::new(vec![Term::int(1), Term::int(2), Term::int(3)]);
        assert_eq!(
            t.project(&[2, 0]),
            Tuple::new(vec![Term::int(3), Term::int(1)])
        );
        let nv = Tuple::new(vec![Term::var(3), Term::int(2), Term::var(3)]);
        assert_eq!(nv.project(&[0, 2]).nvars(), 1);
    }

    #[test]
    fn display() {
        let t = Tuple::new(vec![Term::str("a"), Term::var(9), Term::int(3)]);
        assert_eq!(t.to_string(), "(a, V0, 3)");
    }

    #[test]
    fn nonground_with_nested_vars() {
        let t = Tuple::new(vec![Term::apps("f", vec![Term::var(4), Term::var(1)])]);
        assert_eq!(t.nvars(), 2);
        assert_eq!(t.args()[0].to_string(), "f(V0, V1)");
    }
}
