//! Deterministic pseudo-random numbers for tests and benchmarks.
//!
//! The tier-1 suite must build with no network access, so instead of the
//! `rand` crate the workspace uses this tiny in-repo generator: a
//! splitmix64 seed expander feeding an xorshift64* stream. The sequences
//! are stable across platforms and releases — tests that derive workloads
//! from a fixed seed stay reproducible forever.

/// One round of splitmix64 (Steele, Lea & Flood; public domain).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small deterministic RNG (xorshift64* seeded via splitmix64).
///
/// Not cryptographic; for generating test workloads only.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator. Any seed (including 0) is fine: splitmix64
    /// expands it into a well-mixed nonzero xorshift state.
    pub fn new(seed: u64) -> TestRng {
        let mut s = seed;
        let mut state = splitmix64(&mut s);
        if state == 0 {
            state = 0x9E37_79B9_7F4A_7C15;
        }
        TestRng { state }
    }

    /// Next raw 64-bit value (xorshift64*).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[lo, hi)`. Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range: empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        // Multiply-shift range reduction; the tiny modulo bias of plain
        // `% span` would be harmless here, but this is just as cheap.
        let wide = (self.next_u64() as u128) * (span as u128);
        lo + (wide >> 64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        let threshold = (p.clamp(0.0, 1.0) * (u64::MAX as f64)) as u64;
        self.next_u64() <= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = TestRng::new(42);
        let mut b = TestRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_respected_and_covers() {
        let mut r = TestRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.gen_range(3, 13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should occur");
    }

    #[test]
    fn bool_probability_extremes() {
        let mut r = TestRng::new(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&heads), "p=0.3 gave {heads}/10000");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = TestRng::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }
}
