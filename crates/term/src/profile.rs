//! Term-layer profiling counters.
//!
//! Part of the engine-wide profiling subsystem (see `coral-core`'s
//! `profile` module for the aggregate `EngineProfile`). Counters live in
//! a thread-local `Cell` — no atomics touch the hot path — and are
//! compiled out entirely without the `profile` cargo feature. With the
//! feature on but collection disabled (the default), each hook costs one
//! thread-local load and a branch.

/// Whether counters are compiled in (`profile` cargo feature).
pub const AVAILABLE: bool = cfg!(feature = "profile");

/// Term-layer counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Ground-term interning requests satisfied by an existing id.
    pub hashcons_hits: u64,
    /// Ground-term interning requests that allocated a new id.
    pub hashcons_misses: u64,
    /// Top-level unification attempts.
    pub unify_attempts: u64,
    /// Top-level unification attempts that failed.
    pub unify_failures: u64,
    /// Binding-environment frames allocated.
    pub bindenv_allocs: u64,
}

impl Counters {
    /// All-zero counters (usable in const-initialized thread-locals).
    pub const ZERO: Counters = Counters {
        hashcons_hits: 0,
        hashcons_misses: 0,
        unify_attempts: 0,
        unify_failures: 0,
        bindenv_allocs: 0,
    };
}

/// Fold a counter delta (e.g. one captured on a worker thread) into this
/// thread's counters. No-op unless collection is enabled on the calling
/// thread.
pub fn add(d: Counters) {
    bump(|c| {
        c.hashcons_hits += d.hashcons_hits;
        c.hashcons_misses += d.hashcons_misses;
        c.unify_attempts += d.unify_attempts;
        c.unify_failures += d.unify_failures;
        c.bindenv_allocs += d.bindenv_allocs;
    });
}

#[cfg(feature = "profile")]
mod imp {
    use super::Counters;
    use std::cell::Cell;

    // Both cells are const-initialized and droppable-free, so access
    // compiles to a direct TLS load with no lazy-init branch; the
    // enabled flag is separate from the counter block so the disabled
    // path never copies the counters.
    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static COUNTERS: Cell<Counters> = const { Cell::new(Counters::ZERO) };
    }

    /// Bump counters iff collection is enabled on this thread.
    #[inline]
    pub(crate) fn bump(f: impl FnOnce(&mut Counters)) {
        if ENABLED.with(|e| e.get()) {
            COUNTERS.with(|c| {
                let mut v = c.get();
                f(&mut v);
                c.set(v);
            });
        }
    }

    pub fn set_enabled(on: bool) {
        ENABLED.with(|e| e.set(on));
    }

    pub fn enabled() -> bool {
        ENABLED.with(|e| e.get())
    }

    pub fn reset() {
        COUNTERS.with(|c| c.set(Counters::ZERO));
    }

    pub fn snapshot() -> Counters {
        COUNTERS.with(|c| c.get())
    }
}

#[cfg(feature = "profile")]
pub(crate) use imp::bump;
#[cfg(feature = "profile")]
pub use imp::{enabled, reset, set_enabled, snapshot};

#[cfg(not(feature = "profile"))]
mod imp_off {
    use super::Counters;

    #[inline(always)]
    pub(crate) fn bump(_f: impl FnOnce(&mut Counters)) {}

    pub fn set_enabled(_on: bool) {}

    pub fn enabled() -> bool {
        false
    }

    pub fn reset() {}

    pub fn snapshot() -> Counters {
        Counters::default()
    }
}

#[cfg(not(feature = "profile"))]
pub(crate) use imp_off::bump;
#[cfg(not(feature = "profile"))]
pub use imp_off::{enabled, reset, set_enabled, snapshot};
