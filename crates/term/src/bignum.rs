//! Arbitrary-precision integers.
//!
//! CORAL's primitive types include "arbitrary precision integers …
//! supported using the BigNum package provided by DEC France" (§3.1).
//! That package is long gone; this module is a from-scratch sign-magnitude
//! implementation sufficient for the same role: a primitive constant type
//! with arithmetic, total ordering, hashing and text I/O.
//!
//! Representation: little-endian `u32` limbs, normalized (no trailing zero
//! limbs; zero is the empty limb vector with a positive sign).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};
use std::str::FromStr;

/// A sign-magnitude arbitrary-precision integer.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    /// `false` = non-negative, `true` = negative. Zero is never negative.
    neg: bool,
    /// Little-endian base-2^32 limbs, normalized.
    limbs: Vec<u32>,
}

impl BigInt {
    /// Zero.
    pub fn zero() -> BigInt {
        BigInt {
            neg: false,
            limbs: Vec::new(),
        }
    }

    /// True iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff this is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.neg
    }

    /// Construct from a machine integer.
    pub fn from_i64(v: i64) -> BigInt {
        let neg = v < 0;
        let mag = v.unsigned_abs();
        let mut limbs = vec![(mag & 0xffff_ffff) as u32, (mag >> 32) as u32];
        normalize(&mut limbs);
        BigInt {
            neg: neg && !limbs.is_empty(),
            limbs,
        }
    }

    /// Convert back to `i64` if it fits.
    pub fn to_i64(&self) -> Option<i64> {
        if self.limbs.len() > 2 {
            return None;
        }
        let mut mag: u64 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u64) << (32 * i);
        }
        if self.neg {
            if mag > (i64::MAX as u64) + 1 {
                None
            } else {
                Some((mag as i64).wrapping_neg())
            }
        } else if mag > i64::MAX as u64 {
            None
        } else {
            Some(mag as i64)
        }
    }

    fn from_parts(neg: bool, mut limbs: Vec<u32>) -> BigInt {
        normalize(&mut limbs);
        BigInt {
            neg: neg && !limbs.is_empty(),
            limbs,
        }
    }

    /// Magnitude comparison.
    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => continue,
                o => return o,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &l) in long.iter().enumerate() {
            let s = l as u64 + short.get(i).copied().unwrap_or(0) as u64 + carry;
            out.push((s & 0xffff_ffff) as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// `a - b`, requires `|a| >= |b|`.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for (i, &ai) in a.iter().enumerate() {
            let d = ai as i64 - b.get(i).copied().unwrap_or(0) as i64 - borrow;
            if d < 0 {
                out.push((d + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(d as u32);
                borrow = 0;
            }
        }
        normalize(&mut out);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u64 + ai as u64 * bj as u64 + carry;
                out[i + j] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        normalize(&mut out);
        out
    }

    /// Binary long division of magnitudes: returns (quotient, remainder).
    fn divmod_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "BigInt division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        // Single-limb divisor fast path.
        if b.len() == 1 {
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            normalize(&mut q);
            let mut r = vec![(rem & 0xffff_ffff) as u32];
            normalize(&mut r);
            return (q, r);
        }
        // General case: bit-at-a-time restoring division.
        let total_bits = a.len() * 32;
        let mut quot = vec![0u32; a.len()];
        let mut rem: Vec<u32> = Vec::with_capacity(b.len() + 1);
        for bit in (0..total_bits).rev() {
            // rem = rem << 1 | a.bit(bit)
            shl1(&mut rem);
            if a[bit / 32] >> (bit % 32) & 1 == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                quot[bit / 32] |= 1 << (bit % 32);
            }
        }
        normalize(&mut quot);
        (quot, rem)
    }

    /// Truncated division with remainder; remainder takes the dividend's
    /// sign (the same convention as Rust's `%` on machine integers).
    pub fn divmod(&self, other: &BigInt) -> (BigInt, BigInt) {
        let (q, r) = Self::divmod_mag(&self.limbs, &other.limbs);
        (
            BigInt::from_parts(self.neg != other.neg, q),
            BigInt::from_parts(self.neg, r),
        )
    }

    /// Absolute value.
    pub fn abs(&self) -> BigInt {
        BigInt {
            neg: false,
            limbs: self.limbs.clone(),
        }
    }

    /// Number of significant bits in the magnitude.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(&top) => (self.limbs.len() - 1) * 32 + (32 - top.leading_zeros() as usize),
        }
    }

    /// Raise to a small power (used by workload generators and tests).
    pub fn pow(&self, mut e: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::from_i64(1);
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            e >>= 1;
        }
        acc
    }
}

fn normalize(limbs: &mut Vec<u32>) {
    while limbs.last() == Some(&0) {
        limbs.pop();
    }
}

fn shl1(limbs: &mut Vec<u32>) {
    let mut carry = 0u32;
    for l in limbs.iter_mut() {
        let nc = *l >> 31;
        *l = (*l << 1) | carry;
        carry = nc;
    }
    if carry != 0 {
        limbs.push(carry);
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        match (self.neg, other.neg) {
            (false, true) => Ordering::Greater,
            (true, false) => Ordering::Less,
            (false, false) => Self::cmp_mag(&self.limbs, &other.limbs),
            (true, true) => Self::cmp_mag(&other.limbs, &self.limbs),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        if self.neg == rhs.neg {
            BigInt::from_parts(self.neg, BigInt::add_mag(&self.limbs, &rhs.limbs))
        } else {
            match BigInt::cmp_mag(&self.limbs, &rhs.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_parts(self.neg, BigInt::sub_mag(&self.limbs, &rhs.limbs))
                }
                Ordering::Less => {
                    BigInt::from_parts(rhs.neg, BigInt::sub_mag(&rhs.limbs, &self.limbs))
                }
            }
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs.clone())
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        BigInt::from_parts(
            self.neg != rhs.neg,
            BigInt::mul_mag(&self.limbs, &rhs.limbs),
        )
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        if self.is_zero() {
            self
        } else {
            BigInt {
                neg: !self.neg,
                limbs: self.limbs,
            }
        }
    }
}

/// Error from [`BigInt::from_str`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError(pub String);

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid big integer literal: {}", self.0)
    }
}

impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (neg, digits) = match s.as_bytes() {
            [b'-', rest @ ..] if !rest.is_empty() => (true, rest),
            [b'+', rest @ ..] if !rest.is_empty() => (false, rest),
            rest if !rest.is_empty() => (false, rest),
            _ => return Err(ParseBigIntError(s.to_string())),
        };
        let mut limbs: Vec<u32> = Vec::new();
        for &d in digits {
            if !d.is_ascii_digit() {
                return Err(ParseBigIntError(s.to_string()));
            }
            // limbs = limbs * 10 + d
            let mut carry = (d - b'0') as u64;
            for l in limbs.iter_mut() {
                let cur = *l as u64 * 10 + carry;
                *l = (cur & 0xffff_ffff) as u32;
                carry = cur >> 32;
            }
            if carry != 0 {
                limbs.push(carry as u32);
            }
        }
        Ok(BigInt::from_parts(neg, limbs))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.write_str("0");
        }
        let mut digits = Vec::new();
        let mut cur = self.limbs.clone();
        while !cur.is_empty() {
            // divide magnitude by 10, collect remainder
            let mut rem = 0u64;
            for i in (0..cur.len()).rev() {
                let v = (rem << 32) | cur[i] as u64;
                cur[i] = (v / 10) as u32;
                rem = v % 10;
            }
            normalize(&mut cur);
            digits.push(b'0' + rem as u8);
        }
        if self.neg {
            f.write_str("-")?;
        }
        digits.reverse();
        f.write_str(std::str::from_utf8(&digits).unwrap())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(s: &str) -> BigInt {
        s.parse().unwrap()
    }

    #[test]
    fn roundtrip_i64() {
        for v in [0i64, 1, -1, 42, -42, i64::MAX, i64::MIN, 1 << 40] {
            let b = BigInt::from_i64(v);
            assert_eq!(b.to_i64(), Some(v), "roundtrip {v}");
            assert_eq!(b.to_string(), v.to_string());
        }
    }

    #[test]
    fn parse_and_print() {
        for s in ["0", "7", "-7", "123456789012345678901234567890"] {
            assert_eq!(big(s).to_string(), s);
        }
        assert_eq!(big("+5").to_string(), "5");
        assert_eq!(big("-0").to_string(), "0");
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn addition_subtraction() {
        assert_eq!(
            (&big("999999999999999999") + &big("1")).to_string(),
            "1000000000000000000"
        );
        assert_eq!((&big("5") + &big("-8")).to_string(), "-3");
        assert_eq!((&big("-5") - &big("-8")).to_string(), "3");
        assert_eq!((&big("100") - &big("100")).to_string(), "0");
    }

    #[test]
    fn multiplication() {
        assert_eq!(
            (&big("123456789012345678901234567890") * &big("987654321098765432109876543210"))
                .to_string(),
            "121932631137021795226185032733622923332237463801111263526900"
        );
        assert_eq!((&big("-3") * &big("4")).to_string(), "-12");
        assert_eq!((&big("0") * &big("12345678901234567890")).to_string(), "0");
    }

    #[test]
    fn division() {
        let (q, r) = big("1000000000000000000000").divmod(&big("7"));
        assert_eq!(q.to_string(), "142857142857142857142");
        assert_eq!(r.to_string(), "6");
        let (q, r) = big("123456789012345678901234567890").divmod(&big("987654321098765"));
        assert_eq!(
            &(&q * &big("987654321098765")) + &r,
            big("123456789012345678901234567890")
        );
        // Signs follow truncated division.
        let (q, r) = big("-7").divmod(&big("2"));
        assert_eq!((q.to_string(), r.to_string()), ("-3".into(), "-1".into()));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = big("1").divmod(&BigInt::zero());
    }

    #[test]
    fn ordering() {
        assert!(big("-10") < big("-9"));
        assert!(big("-1") < big("0"));
        assert!(big("99999999999999999999") > big("99999999999999999998"));
        assert!(big("100000000000000000000") > big("99999999999999999999"));
    }

    #[test]
    fn pow_and_bit_len() {
        assert_eq!(
            big("2").pow(100).to_string(),
            "1267650600228229401496703205376"
        );
        assert_eq!(big("2").pow(100).bit_len(), 101);
        assert_eq!(BigInt::zero().bit_len(), 0);
        assert_eq!(big("1").bit_len(), 1);
    }

    #[test]
    fn negation_of_zero_stays_positive() {
        let z = -BigInt::zero();
        assert!(!z.is_negative());
        assert_eq!(z, BigInt::zero());
    }
}
