//! # coral-term — the CORAL data manager's term layer
//!
//! This crate implements Section 3 of the CORAL paper ("The Data Manager"):
//!
//! * **Primitive types** (§3.1): integers, doubles, strings and arbitrary
//!   precision integers ([`Term`], [`bignum::BigInt`]). The paper's BigNum
//!   package is replaced by a from-scratch implementation.
//! * **Symbols**: a global interner for strings, functor and predicate
//!   names ([`Symbol`]), mirroring CORAL's shared-constant design.
//! * **Terms** (§3.1, Fig. 2): constants, variables and functor
//!   applications ([`Term`]). Lists are functor terms over `'.'/2` and
//!   `'[]'/0` with helpers for construction and iteration.
//! * **Hash-consing** (§3.1): lazy assignment of unique identifiers to
//!   ground functor terms so that two ground terms unify iff their
//!   identifiers are equal ([`hashcons`]).
//! * **Binding environments** (§3.1, §5.3): structure-shared variable
//!   bindings with a trail for backtracking ([`bindenv::EnvSet`]).
//! * **Unification** (§3.1): full structural unification over
//!   (term, environment) pairs with a hash-consing fast path, one-way
//!   matching, subsumption and variant checks ([`mod@unify`]).
//! * **Tuples** (§3): self-contained facts, possibly non-ground — CORAL
//!   allows facts with universally quantified variables ([`tuple::Tuple`]).
//! * **Extensibility** (§7.1): user-defined abstract data types as trait
//!   objects standing in for the paper's C++ virtual-method interface
//!   ([`adt::AdtValue`]).

pub mod adt;
pub mod bignum;
pub mod bindenv;
pub mod hashcons;
pub mod meter;
pub mod profile;
pub mod symbol;
pub mod term;
pub mod testutil;
pub mod tuple;
pub mod unify;

pub use adt::AdtValue;
pub use bignum::BigInt;
pub use bindenv::{EnvId, EnvSet, TrailMark};
pub use hashcons::HcId;
pub use symbol::Symbol;
pub use term::{OrderedF64, Term, VarId};
pub use tuple::Tuple;
pub use unify::{match_args, match_one_way, subsumes, unify, unify_all, variant};
