//! # coral-embed — the embedding and extensibility API (§6, §7)
//!
//! CORAL extends C++ "by providing a collection of new classes
//! (relations, tuples, args and scan descriptors) and a suite of
//! associated methods", plus "a construct to embed CORAL commands in C++
//! code" and a `_coral_export` mechanism for defining new predicates in
//! the host language. The host language here is Rust; the same four
//! abstractions are:
//!
//! * [`CoralDb`] — the embedding root. [`CoralDb::run`] executes embedded
//!   CORAL command text (the preprocessor-bracketed blocks of §6.1);
//!   `main`-program-style usage never touches the interactive interface,
//!   exactly as the paper describes.
//! * [`RelHandle`] — the `Relation` class: build relation values "through
//!   a series of explicit inserts and deletes, or through a call to a
//!   declarative CORAL module", and manipulate them without breaking the
//!   relation abstraction.
//! * Tuples and args — `coral_term::Tuple` and `coral_term::Term`
//!   re-exported, with the [`args!`] helper macro for construction.
//! * [`ScanDesc`] — the `C_ScanDesc` cursor over a relation or a query.
//!   As in §6.1, "variables cannot be returned as answers": the cursor
//!   yields ground tuples and reports an error on a non-ground answer
//!   rather than exposing binding environments.
//!
//! New predicates are defined in Rust with
//! [`CoralDb::define_predicate`] — the `_coral_export` analog: the
//! function receives the call pattern and returns candidate tuples, and
//! the predicate is immediately usable from declarative rules
//! ("incrementally loaded", §6.2). §7's data-type extensibility
//! ([`AdtValue`]) and access-structure extensibility (the [`Relation`]
//! trait) are re-exported so an embedding application can register both.

use coral_core::error::{EvalError, EvalResult};
use coral_core::session::{Answer, Session};
use coral_lang::PredRef;
use coral_rel::{IndexSpec, RelError, RelResult, Relation, TupleIter};
use coral_term::{Symbol, Term, Tuple};
use std::cell::RefCell;
use std::rc::Rc;

pub use coral_rel::relation::iter_from_vec;
pub use coral_term::adt::{registry as adt_registry, AdtValue};
pub use coral_term::{BigInt, Tuple as CoralTuple};

/// Build an argument list (`Vec<Term>`) from Rust values.
///
/// ```
/// use coral_embed::args;
/// use coral_term::Term;
/// let a = args![1, "msn", 2.5];
/// assert_eq!(a, vec![Term::int(1), Term::str("msn"), Term::double(2.5)]);
/// ```
#[macro_export]
macro_rules! args {
    ($($v:expr),* $(,)?) => {
        vec![$($crate::IntoArg::into_arg($v)),*]
    };
}

/// Conversion into a CORAL argument term (the `Arg` constructors of
/// §6.1).
pub trait IntoArg {
    /// Convert into a term.
    fn into_arg(self) -> Term;
}

impl IntoArg for i64 {
    fn into_arg(self) -> Term {
        Term::int(self)
    }
}
impl IntoArg for i32 {
    fn into_arg(self) -> Term {
        Term::int(self as i64)
    }
}
impl IntoArg for f64 {
    fn into_arg(self) -> Term {
        Term::double(self)
    }
}
impl IntoArg for &str {
    fn into_arg(self) -> Term {
        Term::str(self)
    }
}
impl IntoArg for Term {
    fn into_arg(self) -> Term {
        self
    }
}
impl IntoArg for BigInt {
    fn into_arg(self) -> Term {
        Term::big(self)
    }
}

/// The function type behind a Rust-defined predicate: receives the call
/// pattern (one term per argument; variables where unbound) and returns
/// the candidate facts.
pub type PredicateFn = dyn Fn(&[Term]) -> Result<Vec<Tuple>, String>;

/// A relation computed by a host function (§6.2 / §7.2: "relations
/// defined by C++ functions").
pub struct ComputedRelation {
    name: String,
    arity: usize,
    f: Box<PredicateFn>,
}

impl ComputedRelation {
    /// Wrap a host function as a relation.
    pub fn new(
        name: &str,
        arity: usize,
        f: impl Fn(&[Term]) -> Result<Vec<Tuple>, String> + 'static,
    ) -> ComputedRelation {
        ComputedRelation {
            name: name.to_string(),
            arity,
            f: Box::new(f),
        }
    }
}

impl Relation for ComputedRelation {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn len(&self) -> usize {
        0
    }

    fn insert(&self, _tuple: Tuple) -> RelResult<bool> {
        Err(RelError::BadIndex(format!(
            "{} is computed by host code; facts cannot be inserted",
            self.name
        )))
    }

    fn delete(&self, _tuple: &Tuple) -> RelResult<bool> {
        Err(RelError::BadIndex(format!(
            "{} is computed by host code; facts cannot be deleted",
            self.name
        )))
    }

    fn scan(&self) -> TupleIter {
        // A scan is a fully open call.
        let pattern: Vec<Term> = (0..self.arity as u32).map(Term::var).collect();
        self.lookup(&pattern)
    }

    fn lookup(&self, pattern: &[Term]) -> TupleIter {
        match (self.f)(pattern) {
            Ok(tuples) => iter_from_vec(tuples),
            Err(msg) => Box::new(std::iter::once(Err(RelError::BadIndex(format!(
                "host predicate {} failed: {msg}",
                self.name
            ))))),
        }
    }

    fn make_index(&self, _spec: IndexSpec) -> RelResult<()> {
        Err(RelError::BadIndex(
            "computed relations cannot be indexed".into(),
        ))
    }

    fn describe(&self) -> String {
        format!("computed relation {} (host function)", self.name)
    }
}

/// A cursor over query answers or a relation scan — the paper's
/// `C_ScanDesc`.
pub struct ScanDesc {
    inner: RefCell<coral_core::session::Answers>,
}

impl ScanDesc {
    /// Fetch the next tuple; ground answers only (§6.1's interface
    /// restriction: non-ground terms are hidden at the interface).
    pub fn next(&self) -> EvalResult<Option<Tuple>> {
        match self.inner.borrow_mut().next_answer()? {
            Some(Answer { tuple, .. }) => {
                if tuple.is_ground() {
                    Ok(Some(tuple))
                } else {
                    Err(EvalError::ModuleProtocol(
                        "non-ground answer at the embedding interface; \
                         variables cannot be returned as answers (§6.1)"
                            .into(),
                    ))
                }
            }
            None => Ok(None),
        }
    }

    /// Drain the remaining tuples.
    pub fn collect_tuples(&self) -> EvalResult<Vec<Tuple>> {
        let mut out = Vec::new();
        while let Some(t) = self.next()? {
            out.push(t);
        }
        Ok(out)
    }
}

/// A handle to a named relation — the paper's `Relation` class for
/// embedded code.
pub struct RelHandle {
    db: CoralDb,
    pred: PredRef,
}

impl RelHandle {
    /// Insert a fact built from argument terms.
    pub fn insert(&self, args: Vec<Term>) -> EvalResult<bool> {
        let rel = self
            .db
            .session
            .engine()
            .db()
            .get(self.pred.name, self.pred.arity)
            .ok_or_else(|| EvalError::UnknownPredicate(self.pred.to_string()))?;
        Ok(rel.insert(Tuple::new(args))?)
    }

    /// Delete a fact.
    pub fn delete(&self, args: Vec<Term>) -> EvalResult<bool> {
        let rel = self
            .db
            .session
            .engine()
            .db()
            .get(self.pred.name, self.pred.arity)
            .ok_or_else(|| EvalError::UnknownPredicate(self.pred.to_string()))?;
        Ok(rel.delete(&Tuple::new(args))?)
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.db
            .session
            .engine()
            .db()
            .get(self.pred.name, self.pred.arity)
            .map(|r| r.len())
            .unwrap_or(0)
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Open a cursor over facts matching `pattern` (variables for open
    /// positions). The relation may be base, module-defined or computed:
    /// the scan interface is uniform (§5.6).
    pub fn open_scan(&self, pattern: Vec<Term>) -> EvalResult<ScanDesc> {
        let lit = coral_lang::pretty::term_to_string(&Term::app(self.pred.name, pattern), &|v| {
            format!("V{}", v.0)
        });
        self.db.query(&lit)
    }
}

/// The embedding root: a CORAL session plus the §6 conveniences.
#[derive(Clone)]
pub struct CoralDb {
    session: Rc<Session>,
}

impl Default for CoralDb {
    fn default() -> CoralDb {
        CoralDb::new()
    }
}

impl CoralDb {
    /// A fresh embedded CORAL system.
    pub fn new() -> CoralDb {
        CoralDb {
            session: Rc::new(Session::new()),
        }
    }

    /// The underlying session (full interactive API).
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// Execute embedded CORAL commands — "any sequence of commands that
    /// can be typed in at the CORAL interactive command interface can be
    /// embedded" (§6.1). Answers of embedded queries are returned in
    /// order.
    pub fn run(&self, commands: &str) -> EvalResult<Vec<Vec<Answer>>> {
        self.session.consult_str(commands)
    }

    /// A handle to the relation `name/arity` (created empty if absent;
    /// the handle also reaches module-defined and computed relations).
    pub fn relation(&self, name: &str, arity: usize) -> RelHandle {
        let pred = PredRef::new(name, arity);
        if self.session.engine().db().get(pred.name, arity).is_none()
            && self.session.engine().module_of(pred).is_none()
        {
            self.session.engine().db().get_or_create(pred.name, arity);
        }
        RelHandle {
            db: self.clone(),
            pred,
        }
    }

    /// Open a query cursor, e.g. `db.query("path(1, X)")`.
    pub fn query(&self, q: &str) -> EvalResult<ScanDesc> {
        Ok(ScanDesc {
            inner: RefCell::new(self.session.query(q)?),
        })
    }

    /// Define a predicate computed by a Rust function — the
    /// `_coral_export` mechanism of §6.2. The predicate becomes usable
    /// from declarative rules immediately ("incrementally loaded").
    pub fn define_predicate(
        &self,
        name: &str,
        arity: usize,
        f: impl Fn(&[Term]) -> Result<Vec<Tuple>, String> + 'static,
    ) {
        let rel = Rc::new(ComputedRelation::new(name, arity, f));
        self.session
            .engine()
            .register_relation(Symbol::intern(name), rel);
    }

    /// Register a user abstract data type constructor (§7.1's single
    /// registration command).
    pub fn register_adt(&self, type_name: &'static str, ctor: coral_term::adt::AdtConstructor) {
        adt_registry::register(type_name, ctor);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_values_through_inserts_and_scans() {
        let db = CoralDb::new();
        let flights = db.relation("flight", 3);
        assert!(flights.is_empty());
        flights.insert(args!["msn", "ord", 120]).unwrap();
        flights.insert(args!["ord", "jfk", 250]).unwrap();
        flights.insert(args!["msn", "atl", 300]).unwrap();
        assert_eq!(flights.len(), 3);
        flights.delete(args!["msn", "atl", 300]).unwrap();
        assert_eq!(flights.len(), 2);
        let scan = flights
            .open_scan(args![Term::var(0), "ord", Term::var(1)])
            .unwrap();
        let got = scan.collect_tuples().unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].args()[0], Term::str("msn"));
    }

    #[test]
    fn declarative_module_from_embedded_commands() {
        let db = CoralDb::new();
        db.run("edge(1, 2). edge(2, 3).").unwrap();
        db.run(
            "module tc. export path(bf).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             end_module.",
        )
        .unwrap();
        let scan = db.query("path(1, X)").unwrap();
        assert_eq!(scan.collect_tuples().unwrap().len(), 2);
        // Module exports are reachable through relation handles too.
        let h = db.relation("path", 2);
        let got = h.open_scan(args![1, Term::var(0)]).unwrap();
        assert_eq!(got.collect_tuples().unwrap().len(), 2);
    }

    #[test]
    fn rust_defined_predicate_used_from_rules() {
        let db = CoralDb::new();
        // double(X, Y): Y = 2 * X, for a bound first argument.
        db.define_predicate("double", 2, |pattern| match &pattern[0] {
            Term::Int(v) => Ok(vec![Tuple::new(vec![Term::int(*v), Term::int(v * 2)])]),
            _ => Err("double/2 needs a bound integer first argument".into()),
        });
        db.run("n(3). n(5).").unwrap();
        db.run(
            "module m. export d(ff).\n\
             d(X, Y) :- n(X), double(X, Y).\n\
             end_module.",
        )
        .unwrap();
        let got = db.query("d(X, Y)").unwrap().collect_tuples().unwrap();
        let mut strs: Vec<String> = got.iter().map(|t| t.to_string()).collect();
        strs.sort();
        assert_eq!(strs, vec!["(3, 6)", "(5, 10)"]);
    }

    #[test]
    fn host_predicate_errors_propagate() {
        let db = CoralDb::new();
        db.define_predicate("fail", 1, |_| Err("always fails".into()));
        db.run("module m. export f(f). f(X) :- fail(X). end_module.")
            .unwrap();
        let res = db.query("f(X)").and_then(|s| s.collect_tuples());
        assert!(res.is_err());
    }

    #[test]
    fn computed_relation_rejects_mutation() {
        let db = CoralDb::new();
        db.define_predicate("pi", 1, |_| {
            Ok(vec![Tuple::new(vec![Term::double(std::f64::consts::PI)])])
        });
        let h = db.relation("pi", 1);
        assert!(h.insert(args![1]).is_err());
        assert_eq!(
            db.query("pi(X)").unwrap().collect_tuples().unwrap().len(),
            1
        );
    }

    #[test]
    fn nonground_answers_hidden_at_interface() {
        let db = CoralDb::new();
        db.run("likes(X, pizza).").unwrap();
        let scan = db.query("likes(P, F)").unwrap();
        assert!(scan.next().is_err(), "non-ground answers are hidden (§6.1)");
    }

    #[test]
    fn args_macro_conversions() {
        let a = args![1i64, 2i32, "x", 1.5, Term::nil(), BigInt::from_i64(9)];
        assert_eq!(a.len(), 6);
        assert_eq!(a[0], Term::int(1));
        assert_eq!(a[1], Term::int(2));
        assert_eq!(a[2], Term::str("x"));
        assert_eq!(a[3], Term::double(1.5));
        assert!(a[4].is_nil());
        assert_eq!(a[5], Term::big(BigInt::from_i64(9)));
    }
}
