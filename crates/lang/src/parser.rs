//! Recursive-descent parser for the CORAL language.

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use coral_term::{Symbol, Term, VarId};
use std::fmt;

/// A parse error with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based source line (0 for end-of-input).
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Per-clause variable numbering (first occurrence order; `_` is always
/// fresh).
#[derive(Default)]
struct VarCtx {
    names: Vec<String>,
}

impl VarCtx {
    fn get(&mut self, name: &str) -> VarId {
        if name == "_" {
            let id = VarId(self.names.len() as u32);
            self.names.push(format!("_G{}", self.names.len()));
            return id;
        }
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return VarId(i as u32);
        }
        let id = VarId(self.names.len() as u32);
        self.names.push(name.to_string());
        id
    }
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|s| &s.tok)
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|s| s.line)
            .unwrap_or(0)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: &Tok) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => {
                let t = t.clone();
                self.err(format!("expected {want}, found {t}"))
            }
            None => self.err(format!("expected {want}, found end of input")),
        }
    }

    fn expect_atom(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Tok::Atom(s)) => Ok(s),
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected an identifier, found {t}"))
            }
            None => self.err("expected an identifier, found end of input"),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Atom(s)) if s == kw)
    }

    // -----------------------------------------------------------------
    // Terms and expressions
    // -----------------------------------------------------------------

    /// expr := mul (('+' | '-') mul)*
    fn parse_expr(&mut self, ctx: &mut VarCtx) -> Result<Term, ParseError> {
        let mut lhs = self.parse_mul(ctx)?;
        loop {
            match self.peek() {
                Some(Tok::Op(op @ ("+" | "-"))) => {
                    let op = *op;
                    self.pos += 1;
                    let rhs = self.parse_mul(ctx)?;
                    lhs = Term::apps(op, vec![lhs, rhs]);
                }
                _ => return Ok(lhs),
            }
        }
    }

    /// mul := unary (('*' | '/' | 'mod') unary)*
    fn parse_mul(&mut self, ctx: &mut VarCtx) -> Result<Term, ParseError> {
        let mut lhs = self.parse_unary(ctx)?;
        loop {
            match self.peek() {
                Some(Tok::Op(op @ ("*" | "/" | "mod"))) => {
                    let op = *op;
                    self.pos += 1;
                    let rhs = self.parse_unary(ctx)?;
                    lhs = Term::apps(op, vec![lhs, rhs]);
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn parse_unary(&mut self, ctx: &mut VarCtx) -> Result<Term, ParseError> {
        if matches!(self.peek(), Some(Tok::Op("-"))) {
            self.pos += 1;
            let inner = self.parse_unary(ctx)?;
            return Ok(match inner {
                Term::Int(v) => Term::int(-v),
                Term::Double(d) => Term::double(-d.get()),
                Term::Big(b) => Term::big(-(*b).clone()),
                other => Term::apps("-", vec![other]),
            });
        }
        self.parse_primary(ctx)
    }

    fn parse_primary(&mut self, ctx: &mut VarCtx) -> Result<Term, ParseError> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Term::int(v)),
            Some(Tok::Big(b)) => Ok(Term::big(b)),
            Some(Tok::Double(v)) => Ok(Term::double(v)),
            Some(Tok::Str(s)) => Ok(Term::str(&s)),
            Some(Tok::Var(name)) => Ok(Term::Var(ctx.get(&name))),
            Some(Tok::Atom(name)) => {
                if self.peek() == Some(&Tok::LParen) {
                    self.pos += 1;
                    let args = self.parse_term_list(ctx, Tok::RParen)?;
                    Ok(Term::app(Symbol::intern(&name), args))
                } else {
                    Ok(Term::str(&name))
                }
            }
            Some(Tok::LBracket) => self.parse_list(ctx),
            Some(Tok::LParen) => {
                let t = self.parse_expr(ctx)?;
                self.expect(&Tok::RParen)?;
                Ok(t)
            }
            Some(t) => {
                self.pos -= 1;
                self.err(format!("expected a term, found {t}"))
            }
            None => self.err("expected a term, found end of input"),
        }
    }

    fn parse_term_list(&mut self, ctx: &mut VarCtx, close: Tok) -> Result<Vec<Term>, ParseError> {
        let mut args = Vec::new();
        if self.peek() == Some(&close) {
            self.pos += 1;
            return Ok(args);
        }
        loop {
            args.push(self.parse_expr(ctx)?);
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(t) if t == close => return Ok(args),
                Some(t) => {
                    self.pos -= 1;
                    return self.err(format!("expected ',' or {close}, found {t}"));
                }
                None => return self.err("unterminated argument list"),
            }
        }
    }

    /// `[` already consumed.
    fn parse_list(&mut self, ctx: &mut VarCtx) -> Result<Term, ParseError> {
        if self.peek() == Some(&Tok::RBracket) {
            self.pos += 1;
            return Ok(Term::nil());
        }
        let mut elems = vec![self.parse_expr(ctx)?];
        loop {
            match self.next() {
                Some(Tok::Comma) => elems.push(self.parse_expr(ctx)?),
                Some(Tok::Bar) => {
                    let tail = self.parse_expr(ctx)?;
                    self.expect(&Tok::RBracket)?;
                    let mut t = tail;
                    for e in elems.into_iter().rev() {
                        t = Term::cons(e, t);
                    }
                    return Ok(t);
                }
                Some(Tok::RBracket) => {
                    return Ok(Term::list(elems));
                }
                Some(t) => {
                    self.pos -= 1;
                    return self.err(format!("expected ',', '|' or ']', found {t}"));
                }
                None => return self.err("unterminated list"),
            }
        }
    }

    // -----------------------------------------------------------------
    // Literals, clauses, queries
    // -----------------------------------------------------------------

    fn term_to_literal(&self, t: Term) -> Result<Literal, ParseError> {
        match t {
            Term::App(a) => Ok(Literal {
                pred: a.sym(),
                args: a.args().to_vec(),
            }),
            Term::Str(s) => Ok(Literal {
                pred: s,
                args: Vec::new(),
            }),
            other => self.err(format!("expected a predicate literal, found term {other}")),
        }
    }

    fn parse_body_item(&mut self, ctx: &mut VarCtx) -> Result<BodyItem, ParseError> {
        if self.at_keyword("not") {
            // `not p(...)` — but `not(...)` with parens is a plain functor
            // term named not; require a following literal.
            self.pos += 1;
            let t = self.parse_expr(ctx)?;
            return Ok(BodyItem::Negated(self.term_to_literal(t)?));
        }
        let lhs = self.parse_expr(ctx)?;
        let op = match self.peek() {
            Some(Tok::Op("=")) => Some(CmpOp::Unify),
            Some(Tok::Op("\\=")) => Some(CmpOp::NotUnify),
            Some(Tok::Op("<")) => Some(CmpOp::Lt),
            Some(Tok::Op("=<")) => Some(CmpOp::Le),
            Some(Tok::Op(">")) => Some(CmpOp::Gt),
            Some(Tok::Op(">=")) => Some(CmpOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.parse_expr(ctx)?;
                Ok(BodyItem::Compare { op, lhs, rhs })
            }
            None => Ok(BodyItem::Literal(self.term_to_literal(lhs)?)),
        }
    }

    /// A clause `head.` or `head :- body.` (terminating `.` consumed).
    fn parse_clause(&mut self) -> Result<Rule, ParseError> {
        let mut ctx = VarCtx::default();
        let head_term = self.parse_expr(&mut ctx)?;
        let head = self.term_to_literal(head_term)?;
        let mut body = Vec::new();
        if self.peek() == Some(&Tok::If) {
            self.pos += 1;
            loop {
                body.push(self.parse_body_item(&mut ctx)?);
                match self.peek() {
                    Some(Tok::Comma) => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        self.expect(&Tok::Dot)?;
        Ok(Rule {
            head,
            body,
            nvars: ctx.names.len() as u32,
            var_names: ctx.names,
        })
    }

    fn parse_query_body(&mut self) -> Result<Query, ParseError> {
        let mut ctx = VarCtx::default();
        let t = self.parse_expr(&mut ctx)?;
        let literal = self.term_to_literal(t)?;
        self.expect(&Tok::Dot)?;
        Ok(Query {
            literal,
            nvars: ctx.names.len() as u32,
            var_names: ctx.names,
        })
    }

    // -----------------------------------------------------------------
    // Annotations
    // -----------------------------------------------------------------

    /// `@` already consumed.
    fn parse_annotation(&mut self) -> Result<Annotation, ParseError> {
        let name = self.expect_atom()?;
        let ann = match name.as_str() {
            "pipelining" => Annotation::Pipelining,
            "materialize" => Annotation::Materialize,
            "bsn" => Annotation::Fixpoint(FixpointKind::Bsn),
            "psn" => Annotation::Fixpoint(FixpointKind::Psn),
            "naive" => Annotation::Fixpoint(FixpointKind::Naive),
            "ordered_search" => Annotation::OrderedSearch,
            "save_module" => Annotation::SaveModule,
            "lazy" => Annotation::Lazy,
            "no_intelligent_backtracking" => Annotation::NoIntelligentBacktracking,
            "no_auto_index" => Annotation::NoAutoIndex,
            "reorder_joins" => Annotation::ReorderJoins,
            "profile" => Annotation::Profile,
            "rewrite" => {
                let which = self.expect_atom()?;
                let kind = match which.as_str() {
                    "supplementary" => RewriteKind::SupplementaryMagic,
                    "magic" => RewriteKind::Magic,
                    "goalid" => RewriteKind::SupplementaryMagicGoalId,
                    "factoring" => RewriteKind::Factoring,
                    "none" => RewriteKind::None,
                    other => {
                        return self.err(format!(
                            "unknown rewriting {other:?} (expected supplementary, magic, goalid, factoring or none)"
                        ))
                    }
                };
                Annotation::Rewrite(kind)
            }
            "multiset" => {
                let pname = self.expect_atom()?;
                self.expect(&Tok::Op("/"))?;
                let arity = match self.next() {
                    Some(Tok::Int(n)) if n >= 0 => n as usize,
                    _ => return self.err("expected arity after '/'"),
                };
                Annotation::Multiset(PredRef::new(&pname, arity))
            }
            "maintain" => {
                // The strategy atom is optional: `@maintain.` alone
                // means cost-based auto selection.
                let kind = match self.peek() {
                    Some(Tok::Atom(_)) => {
                        let which = self.expect_atom()?;
                        match which.as_str() {
                            "auto" => MaintainKind::Auto,
                            "counting" => MaintainKind::Counting,
                            "dred" => MaintainKind::Dred,
                            "recompute" => MaintainKind::Recompute,
                            other => {
                                return self.err(format!(
                                    "unknown maintenance strategy {other:?} (expected auto, counting, dred or recompute)"
                                ))
                            }
                        }
                    }
                    _ => MaintainKind::Auto,
                };
                Annotation::Maintain(kind)
            }
            "aggregate_selection" => self.parse_aggregate_selection()?,
            "make_index" => self.parse_make_index()?,
            other => return self.err(format!("unknown annotation @{other}")),
        };
        self.expect(&Tok::Dot)?;
        Ok(ann)
    }

    /// `@aggregate_selection p(X,Y,P,C) (X,Y) min(C).`
    fn parse_aggregate_selection(&mut self) -> Result<Annotation, ParseError> {
        let pname = self.expect_atom()?;
        self.expect(&Tok::LParen)?;
        let mut pattern_vars = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Var(v)) => {
                    let sym = Symbol::intern(&v);
                    if pattern_vars.contains(&sym) {
                        return self.err(format!(
                            "aggregate_selection pattern variables must be distinct ({v} repeats)"
                        ));
                    }
                    pattern_vars.push(sym);
                }
                _ => return self.err("aggregate_selection pattern arguments must be variables"),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return self.err("expected ',' or ')'"),
            }
        }
        self.expect(&Tok::LParen)?;
        let mut group_vars = Vec::new();
        if self.peek() == Some(&Tok::RParen) {
            self.pos += 1;
        } else {
            loop {
                match self.next() {
                    Some(Tok::Var(v)) => group_vars.push(Symbol::intern(&v)),
                    _ => return self.err("group-by arguments must be variables"),
                }
                match self.next() {
                    Some(Tok::Comma) => continue,
                    Some(Tok::RParen) => break,
                    _ => return self.err("expected ',' or ')'"),
                }
            }
        }
        let fname = self.expect_atom()?;
        let agg = AggFn::from_name(&fname).ok_or_else(|| ParseError {
            message: format!("unknown aggregate function {fname:?}"),
            line: self.line(),
        })?;
        self.expect(&Tok::LParen)?;
        let agg_var = match self.next() {
            Some(Tok::Var(v)) => Symbol::intern(&v),
            _ => return self.err("aggregate argument must be a variable"),
        };
        self.expect(&Tok::RParen)?;
        for v in group_vars.iter().chain([&agg_var]) {
            if !pattern_vars.contains(v) {
                return self.err(format!("variable {v} does not occur in the pattern"));
            }
        }
        Ok(Annotation::AggregateSelection {
            pred: PredRef {
                name: Symbol::intern(&pname),
                arity: pattern_vars.len(),
            },
            group_vars,
            agg,
            agg_var,
            pattern_vars,
        })
    }

    /// `@make_index emp(Name, addr(Street, City)) (Name, City).`
    fn parse_make_index(&mut self) -> Result<Annotation, ParseError> {
        let pname = self.expect_atom()?;
        let mut ctx = VarCtx::default();
        self.expect(&Tok::LParen)?;
        let pattern = self.parse_term_list(&mut ctx, Tok::RParen)?;
        self.expect(&Tok::LParen)?;
        let mut key_vars = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Var(v)) => {
                    if !ctx.names.contains(&v) {
                        return self.err(format!("key variable {v} does not occur in the pattern"));
                    }
                    key_vars.push(ctx.get(&v));
                }
                _ => return self.err("index key arguments must be variables"),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return self.err("expected ',' or ')'"),
            }
        }
        Ok(Annotation::MakeIndex {
            pred: PredRef {
                name: Symbol::intern(&pname),
                arity: pattern.len(),
            },
            pattern,
            key_vars,
        })
    }

    // -----------------------------------------------------------------
    // Modules and programs
    // -----------------------------------------------------------------

    /// `export s_p(bfff, ffff).` — keyword already consumed.
    fn parse_export(&mut self) -> Result<Export, ParseError> {
        let pname = self.expect_atom()?;
        self.expect(&Tok::LParen)?;
        let mut forms = Vec::new();
        loop {
            match self.next() {
                Some(Tok::Atom(s)) => match Adornment::parse(&s) {
                    Some(a) => forms.push(a),
                    None => {
                        return self.err(format!(
                            "bad query form {s:?} (must be a string of 'b' and 'f')"
                        ))
                    }
                },
                _ => return self.err("expected a query form such as bf"),
            }
            match self.next() {
                Some(Tok::Comma) => continue,
                Some(Tok::RParen) => break,
                _ => return self.err("expected ',' or ')'"),
            }
        }
        self.expect(&Tok::Dot)?;
        let arity = forms[0].arity();
        if forms.iter().any(|f| f.arity() != arity) {
            return self.err("query forms of one export must have equal arity");
        }
        Ok(Export {
            pred: PredRef {
                name: Symbol::intern(&pname),
                arity,
            },
            forms,
        })
    }

    /// `module name.` already consumed up to the name.
    fn parse_module(&mut self) -> Result<Module, ParseError> {
        let name = self.expect_atom()?;
        self.expect(&Tok::Dot)?;
        let mut module = Module {
            name,
            ..Module::default()
        };
        loop {
            if self.at_keyword("end_module") {
                self.pos += 1;
                self.expect(&Tok::Dot)?;
                return Ok(module);
            }
            match self.peek() {
                None => return self.err("missing end_module."),
                Some(Tok::At) => {
                    self.pos += 1;
                    module.annotations.push(self.parse_annotation()?);
                }
                Some(Tok::Atom(s)) if s == "export" && self.peek2() != Some(&Tok::LParen) => {
                    self.pos += 1;
                    module.exports.push(self.parse_export()?);
                }
                _ => module.rules.push(self.parse_clause()?),
            }
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut prog = Program::default();
        while self.peek().is_some() {
            match self.peek() {
                Some(Tok::At) => {
                    self.pos += 1;
                    prog.items
                        .push(ProgramItem::Annotation(self.parse_annotation()?));
                }
                Some(Tok::QueryPrefix) => {
                    self.pos += 1;
                    prog.items
                        .push(ProgramItem::Query(self.parse_query_body()?));
                }
                Some(Tok::Atom(s)) if s == "module" && self.peek2() != Some(&Tok::LParen) => {
                    self.pos += 1;
                    prog.items.push(ProgramItem::Module(self.parse_module()?));
                }
                _ => {
                    let clause = self.parse_clause()?;
                    if !clause.is_fact() {
                        return self.err(
                            "rules must appear inside a module (only facts are allowed at top level)",
                        );
                    }
                    prog.items.push(ProgramItem::Fact(clause));
                }
            }
        }
        Ok(prog)
    }
}

/// Parse a whole program file.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    p.parse_program()
}

/// Parse a query, with or without the `?-` prefix, e.g.
/// `"?- path(1, X)."` or `"path(1, X)"` (trailing `.` optional).
pub fn parse_query(src: &str) -> Result<Query, ParseError> {
    let mut src = src.trim().to_string();
    if !src.ends_with('.') {
        src.push('.');
    }
    let toks = lex(&src)?;
    let mut p = Parser { toks, pos: 0 };
    if p.peek() == Some(&Tok::QueryPrefix) {
        p.pos += 1;
    }
    let q = p.parse_query_body()?;
    if p.peek().is_some() {
        return p.err("trailing input after query");
    }
    Ok(q)
}

/// Parse a standalone term; returns the term and the variable names in
/// id order.
pub fn parse_term(src: &str) -> Result<(Term, Vec<String>), ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut ctx = VarCtx::default();
    let t = p.parse_expr(&mut ctx)?;
    if p.peek().is_some() {
        return p.err("trailing input after term");
    }
    Ok((t, ctx.names))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_facts_and_rules() {
        let prog = parse_program(
            "edge(1, 2).\n\
             module tc.\n\
             export path(bf, ff).\n\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             end_module.\n",
        )
        .unwrap();
        assert_eq!(prog.facts().count(), 1);
        let m = prog.modules().next().unwrap();
        assert_eq!(m.name, "tc");
        assert_eq!(m.rules.len(), 2);
        assert_eq!(m.exports.len(), 1);
        assert_eq!(m.exports[0].forms.len(), 2);
        assert_eq!(m.exports[0].pred, PredRef::new("path", 2));
        let r = &m.rules[1];
        assert_eq!(r.nvars, 3);
        assert_eq!(r.var_names, vec!["X", "Y", "Z"]);
    }

    #[test]
    fn var_numbering_first_occurrence() {
        let prog = parse_program("module m. p(Y, X) :- q(X, Y, X). end_module.").unwrap();
        let r = &prog.modules().next().unwrap().rules[0];
        // Y=V0, X=V1.
        assert_eq!(r.head.args, vec![Term::var(0), Term::var(1)]);
        let BodyItem::Literal(q) = &r.body[0] else {
            panic!()
        };
        assert_eq!(q.args, vec![Term::var(1), Term::var(0), Term::var(1)]);
    }

    #[test]
    fn anonymous_vars_are_fresh() {
        let prog = parse_program("module m. p(X) :- q(_, _, X). end_module.").unwrap();
        let r = &prog.modules().next().unwrap().rules[0];
        assert_eq!(r.nvars, 3);
    }

    #[test]
    fn body_builtins() {
        let prog = parse_program(
            "module m. p(X, C1) :- q(X, C), C1 = C + 1, C1 < 10, not r(X). end_module.",
        )
        .unwrap();
        let r = &prog.modules().next().unwrap().rules[0];
        assert_eq!(r.body.len(), 4);
        assert!(matches!(
            &r.body[1],
            BodyItem::Compare {
                op: CmpOp::Unify,
                ..
            }
        ));
        assert!(matches!(
            &r.body[2],
            BodyItem::Compare { op: CmpOp::Lt, .. }
        ));
        assert!(matches!(&r.body[3], BodyItem::Negated(l) if l.pred == Symbol::intern("r")));
        // Arithmetic parsed into functor terms.
        let BodyItem::Compare { rhs, .. } = &r.body[1] else {
            panic!()
        };
        assert_eq!(rhs.to_string(), "\"+\"(V2, 1)");
    }

    #[test]
    fn arithmetic_precedence() {
        let (t, _) = parse_term("1 + 2 * 3 - 4").unwrap();
        assert_eq!(t.to_string(), "\"-\"(\"+\"(1, \"*\"(2, 3)), 4)");
        let (t, _) = parse_term("(1 + 2) * 3").unwrap();
        assert_eq!(t.to_string(), "\"*\"(\"+\"(1, 2), 3)");
        let (t, _) = parse_term("-X + 3").unwrap();
        assert_eq!(t.to_string(), "\"+\"(\"-\"(V0), 3)");
        let (t, _) = parse_term("10 mod 3").unwrap();
        assert_eq!(t.to_string(), "mod(10, 3)");
    }

    #[test]
    fn negative_literals_fold() {
        let (t, _) = parse_term("-5").unwrap();
        assert_eq!(t, Term::int(-5));
        let (t, _) = parse_term("-2.5").unwrap();
        assert_eq!(t, Term::double(-2.5));
    }

    #[test]
    fn lists_parse() {
        let (t, _) = parse_term("[1, 2 | T]").unwrap();
        assert_eq!(t.to_string(), "[1, 2 | V0]");
        let (t, _) = parse_term("[]").unwrap();
        assert!(t.is_nil());
        let (t, _) = parse_term("[edge(Z, Y)]").unwrap();
        assert_eq!(t.to_string(), "[edge(V0, V1)]");
    }

    /// The complete Figure 3 program parses.
    #[test]
    fn figure_3_shortest_path() {
        let src = r#"
module s_p.
export s_p(bfff, ffff).
@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
@aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(C)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                   append([edge(Z, Y)], P, P1), C1 = C + EC.
p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
end_module.
"#;
        let prog = parse_program(src).unwrap();
        let m = prog.modules().next().unwrap();
        assert_eq!(m.name, "s_p");
        assert_eq!(m.rules.len(), 4);
        assert_eq!(m.annotations.len(), 2);
        match &m.annotations[0] {
            Annotation::AggregateSelection {
                pred,
                group_vars,
                agg,
                agg_var,
                ..
            } => {
                assert_eq!(*pred, PredRef::new("p", 4));
                assert_eq!(group_vars.len(), 2);
                assert_eq!(*agg, AggFn::Min);
                assert_eq!(*agg_var, Symbol::intern("C"));
            }
            other => panic!("unexpected annotation {other:?}"),
        }
        // Head aggregation term parsed structurally.
        assert_eq!(m.rules[1].head.args[2].to_string(), "min(V2)");
    }

    #[test]
    fn make_index_annotation() {
        let prog =
            parse_program("@make_index emp(Name, addr(Street, City)) (Name, City).").unwrap();
        match &prog.items[0] {
            ProgramItem::Annotation(Annotation::MakeIndex {
                pred,
                pattern,
                key_vars,
            }) => {
                assert_eq!(*pred, PredRef::new("emp", 2));
                assert_eq!(pattern.len(), 2);
                assert_eq!(pattern[1].to_string(), "addr(V1, V2)");
                assert_eq!(key_vars, &vec![VarId(0), VarId(2)]);
            }
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn control_annotations() {
        let prog = parse_program(
            "module m.\n@pipelining.\n@psn.\n@rewrite magic.\n@multiset p/3.\n\
             @save_module.\n@lazy.\n@ordered_search.\np(1).\nend_module.",
        )
        .unwrap();
        let m = prog.modules().next().unwrap();
        assert_eq!(m.annotations.len(), 7);
        assert_eq!(m.annotations[0], Annotation::Pipelining);
        assert_eq!(m.annotations[1], Annotation::Fixpoint(FixpointKind::Psn));
        assert_eq!(m.annotations[2], Annotation::Rewrite(RewriteKind::Magic));
        assert_eq!(m.annotations[3], Annotation::Multiset(PredRef::new("p", 3)));
    }

    #[test]
    fn queries_parse() {
        let q = parse_query("?- path(1, X).").unwrap();
        assert_eq!(q.literal.pred, Symbol::intern("path"));
        assert_eq!(q.nvars, 1);
        assert_eq!(q.adornment().to_string(), "bf");
        let q2 = parse_query("path(a, X)").unwrap();
        assert_eq!(q2.adornment().to_string(), "bf");
        let q3 = parse_query("go").unwrap();
        assert_eq!(q3.literal.args.len(), 0);
    }

    #[test]
    fn propositional_atoms() {
        let prog = parse_program("module m. win :- move. move. end_module.").unwrap();
        let m = prog.modules().next().unwrap();
        assert_eq!(m.rules[0].head.args.len(), 0);
        assert!(m.rules[1].is_fact());
    }

    #[test]
    fn nonground_facts_allowed() {
        let prog = parse_program("likes(X, pizza).").unwrap();
        let f = prog.facts().next().unwrap();
        assert_eq!(f.head.args[0], Term::var(0));
    }

    #[test]
    fn errors_are_reported_with_lines() {
        let err = parse_program("module m.\np(X) :- .\nend_module.").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(
            parse_program("p(X) :- q(X).").is_err(),
            "top-level rules rejected"
        );
        assert!(parse_program("module m. export p(bx). end_module.").is_err());
        assert!(parse_program("module m. @rewrite bogus. end_module.").is_err());
        assert!(
            parse_program("module m. p(1). ").is_err(),
            "missing end_module"
        );
        assert!(
            parse_query("?- p(X), q(X).").is_err(),
            "conjunctive queries unsupported"
        );
    }

    #[test]
    fn module_and_export_usable_as_atoms() {
        // 'module' followed by '(' is an ordinary predicate.
        let prog = parse_program("module(a).").unwrap();
        assert_eq!(prog.facts().count(), 1);
    }

    #[test]
    fn maintain_annotation() {
        let prog = parse_program(
            "module m.\n@maintain.\np(1).\nend_module.\n\
             module n.\n@maintain counting.\np(1).\nend_module.\n\
             module o.\n@maintain dred.\np(1).\nend_module.\n\
             module q.\n@maintain recompute.\np(1).\nend_module.",
        )
        .unwrap();
        let kinds: Vec<_> = prog.modules().map(|m| m.annotations[0].clone()).collect();
        assert_eq!(
            kinds,
            vec![
                Annotation::Maintain(MaintainKind::Auto),
                Annotation::Maintain(MaintainKind::Counting),
                Annotation::Maintain(MaintainKind::Dred),
                Annotation::Maintain(MaintainKind::Recompute),
            ]
        );
        assert!(parse_program("module m. @maintain frob. end_module.").is_err());
    }

    #[test]
    fn aggregate_selection_validation() {
        assert!(parse_program("@aggregate_selection p(X, X) (X) min(X).").is_err());
        assert!(parse_program("@aggregate_selection p(X, Y) (Z) min(Y).").is_err());
        assert!(parse_program("@aggregate_selection p(X, Y) (X) frob(Y).").is_err());
    }
}
