//! Pretty-printer: AST back to CORAL source text.
//!
//! The optimizer dumps rewritten programs "as a text file — which is
//! useful as a debugging aid for the user" (§2); this module produces
//! that text. Output re-parses to an equivalent AST (round-trip tested).

use crate::ast::*;
use coral_term::{Term, VarId};
use std::fmt::Write;

/// Render a term using a clause's variable names.
pub fn term_to_string(t: &Term, name_of: &dyn Fn(VarId) -> String) -> String {
    let mut s = String::new();
    write_term(&mut s, t, name_of);
    s
}

fn needs_quotes(name: &str) -> bool {
    let mut cs = name.chars();
    match cs.next() {
        Some(c) if c.is_ascii_lowercase() => {
            !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => true,
    }
}

fn write_atom(out: &mut String, name: &str) {
    if needs_quotes(name) {
        let escaped = name.replace('\\', "\\\\").replace('\'', "\\'");
        let _ = write!(out, "'{escaped}'");
    } else {
        out.push_str(name);
    }
}

fn write_term(out: &mut String, t: &Term, name_of: &dyn Fn(VarId) -> String) {
    match t {
        Term::Var(v) => out.push_str(&name_of(*v)),
        Term::Int(v) => {
            let _ = write!(out, "{v}");
        }
        Term::Big(b) => {
            let _ = write!(out, "{b}");
        }
        Term::Double(d) => {
            let x = d.get();
            if x == x.trunc() && x.is_finite() {
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Term::Str(s) => write_atom(out, &s.as_str()),
        Term::App(_) if t.is_nil() => out.push_str("[]"),
        Term::App(_) if t.as_cons().is_some() => {
            out.push('[');
            let mut cur = t;
            let mut first = true;
            loop {
                match cur.as_cons() {
                    Some((h, rest)) => {
                        if !first {
                            out.push_str(", ");
                        }
                        write_term(out, h, name_of);
                        first = false;
                        cur = rest;
                    }
                    None => {
                        if !cur.is_nil() {
                            out.push_str(" | ");
                            write_term(out, cur, name_of);
                        }
                        break;
                    }
                }
            }
            out.push(']');
        }
        Term::App(a) => {
            // Binary arithmetic back to infix.
            let name = a.sym().as_str();
            if a.args().len() == 2 && matches!(name.as_str(), "+" | "-" | "*" | "/" | "mod") {
                out.push('(');
                write_term(out, &a.args()[0], name_of);
                let _ = write!(out, " {name} ");
                write_term(out, &a.args()[1], name_of);
                out.push(')');
                return;
            }
            write_atom(out, &name);
            if !a.args().is_empty() {
                out.push('(');
                for (i, arg) in a.args().iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    write_term(out, arg, name_of);
                }
                out.push(')');
            }
        }
        Term::Adt(v) => out.push_str(&v.print()),
    }
}

fn write_literal(out: &mut String, l: &Literal, name_of: &dyn Fn(VarId) -> String) {
    write_atom(out, &l.pred.as_str());
    if !l.args.is_empty() {
        out.push('(');
        for (i, arg) in l.args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_term(out, arg, name_of);
        }
        out.push(')');
    }
}

/// Render one rule (with terminating period).
pub fn rule_to_string(r: &Rule) -> String {
    let name_of = |v: VarId| r.var_name(v);
    let mut out = String::new();
    write_literal(&mut out, &r.head, &name_of);
    if !r.body.is_empty() {
        out.push_str(" :- ");
        for (i, item) in r.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            match item {
                BodyItem::Literal(l) => write_literal(&mut out, l, &name_of),
                BodyItem::Negated(l) => {
                    out.push_str("not ");
                    write_literal(&mut out, l, &name_of);
                }
                BodyItem::Compare { op, lhs, rhs } => {
                    write_term(&mut out, lhs, &name_of);
                    let _ = write!(out, " {op} ");
                    write_term(&mut out, rhs, &name_of);
                }
            }
        }
    }
    out.push('.');
    out
}

fn annotation_to_string(a: &Annotation) -> String {
    match a {
        Annotation::Pipelining => "@pipelining.".into(),
        Annotation::Materialize => "@materialize.".into(),
        Annotation::Fixpoint(FixpointKind::Bsn) => "@bsn.".into(),
        Annotation::Fixpoint(FixpointKind::Psn) => "@psn.".into(),
        Annotation::Fixpoint(FixpointKind::Naive) => "@naive.".into(),
        Annotation::Rewrite(k) => format!(
            "@rewrite {}.",
            match k {
                RewriteKind::SupplementaryMagic => "supplementary",
                RewriteKind::Magic => "magic",
                RewriteKind::SupplementaryMagicGoalId => "goalid",
                RewriteKind::Factoring => "factoring",
                RewriteKind::None => "none",
            }
        ),
        Annotation::OrderedSearch => "@ordered_search.".into(),
        Annotation::SaveModule => "@save_module.".into(),
        Annotation::Lazy => "@lazy.".into(),
        Annotation::NoIntelligentBacktracking => "@no_intelligent_backtracking.".into(),
        Annotation::NoAutoIndex => "@no_auto_index.".into(),
        Annotation::ReorderJoins => "@reorder_joins.".into(),
        Annotation::Profile => "@profile.".into(),
        Annotation::Maintain(k) => format!(
            "@maintain {}.",
            match k {
                MaintainKind::Auto => "auto",
                MaintainKind::Counting => "counting",
                MaintainKind::Dred => "dred",
                MaintainKind::Recompute => "recompute",
            }
        ),
        Annotation::Multiset(p) => format!("@multiset {}/{}.", p.name, p.arity),
        Annotation::AggregateSelection {
            pred,
            group_vars,
            agg,
            agg_var,
            pattern_vars,
        } => {
            let pat: Vec<String> = pattern_vars.iter().map(|s| s.as_str()).collect();
            let grp: Vec<String> = group_vars.iter().map(|s| s.as_str()).collect();
            format!(
                "@aggregate_selection {}({}) ({}) {}({}).",
                pred.name,
                pat.join(", "),
                grp.join(", "),
                agg.name(),
                agg_var
            )
        }
        Annotation::MakeIndex {
            pred,
            pattern,
            key_vars,
        } => {
            let name_of = |v: VarId| format!("V{}", v.0);
            let pat: Vec<String> = pattern
                .iter()
                .map(|t| term_to_string(t, &name_of))
                .collect();
            let keys: Vec<String> = key_vars.iter().map(|v| format!("V{}", v.0)).collect();
            format!(
                "@make_index {}({}) ({}).",
                pred.name,
                pat.join(", "),
                keys.join(", ")
            )
        }
    }
}

/// Render a module.
pub fn module_to_string(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module {}.", m.name);
    for e in &m.exports {
        let forms: Vec<String> = e.forms.iter().map(|f| f.to_string()).collect();
        let _ = writeln!(out, "export {}({}).", e.pred.name, forms.join(", "));
    }
    for a in &m.annotations {
        let _ = writeln!(out, "{}", annotation_to_string(a));
    }
    for r in &m.rules {
        let _ = writeln!(out, "{}", rule_to_string(r));
    }
    out.push_str("end_module.\n");
    out
}

/// Render a whole program.
pub fn program_to_string(p: &Program) -> String {
    let mut out = String::new();
    for item in &p.items {
        match item {
            ProgramItem::Module(m) => out.push_str(&module_to_string(m)),
            ProgramItem::Fact(f) => {
                let _ = writeln!(out, "{}", rule_to_string(f));
            }
            ProgramItem::Annotation(a) => {
                let _ = writeln!(out, "{}", annotation_to_string(a));
            }
            ProgramItem::Query(q) => {
                let name_of = |v: VarId| {
                    q.var_names
                        .get(v.0 as usize)
                        .cloned()
                        .unwrap_or_else(|| format!("V{}", v.0))
                };
                let mut s = String::new();
                write_literal(&mut s, &q.literal, &name_of);
                let _ = writeln!(out, "?- {s}.");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn roundtrip(src: &str) {
        let p1 = parse_program(src).unwrap();
        let printed = program_to_string(&p1);
        let p2 = parse_program(&printed)
            .unwrap_or_else(|e| panic!("reprinted text failed to parse: {e}\n{printed}"));
        let reprinted = program_to_string(&p2);
        assert_eq!(printed, reprinted, "printing is a fixpoint");
    }

    #[test]
    fn roundtrip_simple() {
        roundtrip("edge(1, 2).\nedge(2, 3).\n");
    }

    #[test]
    fn roundtrip_module_with_everything() {
        roundtrip(
            r#"
module s_p.
export s_p(bfff, ffff).
@aggregate_selection p(X, Y, P, C) (X, Y) min(C).
@make_index emp(Name, addr(S, C)) (Name, C).
@psn.
s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).
s_p_length(X, Y, min(C)) :- p(X, Y, P, C).
p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),
                   append([edge(Z, Y)], P, P1), C1 = C + EC.
p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).
end_module.
?- s_p(1, X, P, C).
"#,
        );
    }

    #[test]
    fn roundtrip_builtins_and_negation() {
        roundtrip(
            "module m.\nexport p(ff).\np(X, Y) :- q(X), not r(X), Y = X * 2 + 1, Y >= 0, X \\= 3.\nend_module.\n",
        );
    }

    #[test]
    fn quoted_atoms_preserved() {
        roundtrip("likes('Alice Smith', \"long string\").\n");
        let p = parse_program("p('odd atom').").unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("'odd atom'"), "{text}");
    }

    #[test]
    fn rule_rendering_uses_original_names() {
        let p = parse_program("module m. p(Cost) :- q(Cost, _). end_module.").unwrap();
        let m = p.modules().next().unwrap();
        let s = rule_to_string(&m.rules[0]);
        assert_eq!(s, "p(Cost) :- q(Cost, _G1).");
    }

    #[test]
    fn lists_render() {
        let p = parse_program("f([1, 2], [H | T], []).").unwrap();
        let s = program_to_string(&p);
        assert_eq!(s, "f([1, 2], [H | T], []).\n");
    }
}
