//! # coral-lang — the CORAL declarative language
//!
//! The front end of Figure 1: lexer, parser, AST and pretty-printer for
//! CORAL's declarative language (described in the paper's companion
//! reference \[24\], with every construct this paper relies on):
//!
//! * program **modules** with `module m.` … `end_module.`, exported
//!   predicates with **query forms** (`export s_p(bfff, ffff).`);
//! * Horn rules with complex terms, lists, arithmetic, comparison
//!   built-ins, negated literals (`not p(X)`), and head aggregation
//!   (`s_p_length(X, Y, min(C)) :- …`);
//! * facts — possibly **non-ground** (CORAL facts may contain
//!   universally quantified variables);
//! * **annotations**: `@aggregate_selection`, `@make_index`,
//!   `@pipelining`, `@save_module`, `@lazy`, `@ordered_search`,
//!   `@bsn`/`@psn`, `@rewrite …`, `@multiset p/n` (§4, §5);
//! * interactive queries `?- p(X, Y).`
//!
//! The pretty-printer regenerates source text from the AST — the
//! optimizer uses it to dump rewritten programs "as a text file, which is
//! useful as a debugging aid for the user" (§2).

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod pretty;

pub use ast::*;
pub use parser::{parse_program, parse_query, parse_term, ParseError};
