//! Tokenizer for the CORAL language.
//!
//! Prolog-flavoured lexical syntax: lowercase identifiers are atoms,
//! capitalized/underscore identifiers are variables, `%` starts a line
//! comment, `/* … */` nests one level of block comment, `'quoted atoms'`
//! and `"strings"` are supported, and `.` terminates a clause when
//! followed by layout (so `1.5` and `[H|T]` lex correctly).

use coral_term::BigInt;
use std::fmt;

/// A lexical token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    /// Lowercase or quoted atom.
    Atom(String),
    /// Variable name (capitalized or `_`).
    Var(String),
    /// Machine-width integer literal.
    Int(i64),
    /// Integer literal exceeding `i64`.
    Big(BigInt),
    /// Floating literal.
    Double(f64),
    /// `"…"` string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// Clause-terminating `.`
    Dot,
    /// `|`
    Bar,
    /// `:-`
    If,
    /// `?-`
    QueryPrefix,
    /// `@`
    At,
    /// An operator: `= \= < =< > >= + - * / mod`
    Op(&'static str),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Atom(s) => write!(f, "{s}"),
            Tok::Var(s) => write!(f, "{s}"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Big(v) => write!(f, "{v}"),
            Tok::Double(v) => write!(f, "{v}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Comma => f.write_str(","),
            Tok::Dot => f.write_str("."),
            Tok::Bar => f.write_str("|"),
            Tok::If => f.write_str(":-"),
            Tok::QueryPrefix => f.write_str("?-"),
            Tok::At => f.write_str("@"),
            Tok::Op(s) => f.write_str(s),
        }
    }
}

/// A token with its source line (1-based).
#[derive(Clone, PartialEq, Debug)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// A lexical error with its source line.
#[derive(Clone, PartialEq, Debug)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize `src`.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Vec::new();
    macro_rules! push {
        ($t:expr) => {
            out.push(SpannedTok { tok: $t, line })
        };
    }
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '%' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                i += 2;
                loop {
                    match bytes.get(i) {
                        Some(b'*') if bytes.get(i + 1) == Some(&b'/') => {
                            i += 2;
                            break;
                        }
                        Some(b'\n') => {
                            line += 1;
                            i += 1;
                        }
                        Some(_) => i += 1,
                        None => {
                            return Err(LexError {
                                message: "unterminated block comment".into(),
                                line,
                            })
                        }
                    }
                }
            }
            '(' => {
                push!(Tok::LParen);
                i += 1;
            }
            ')' => {
                push!(Tok::RParen);
                i += 1;
            }
            '[' => {
                push!(Tok::LBracket);
                i += 1;
            }
            ']' => {
                push!(Tok::RBracket);
                i += 1;
            }
            ',' => {
                push!(Tok::Comma);
                i += 1;
            }
            '|' => {
                push!(Tok::Bar);
                i += 1;
            }
            '@' => {
                push!(Tok::At);
                i += 1;
            }
            ':' if bytes.get(i + 1) == Some(&b'-') => {
                push!(Tok::If);
                i += 2;
            }
            '?' if bytes.get(i + 1) == Some(&b'-') => {
                push!(Tok::QueryPrefix);
                i += 2;
            }
            '.' => {
                // Clause terminator iff followed by layout / EOF / comment.
                match bytes.get(i + 1) {
                    None | Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r') | Some(b'%') => {
                        push!(Tok::Dot);
                        i += 1;
                    }
                    _ => {
                        return Err(LexError {
                            message: "'.' must be followed by whitespace to end a clause".into(),
                            line,
                        })
                    }
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    push!(Tok::Op("=<"));
                    i += 2;
                } else {
                    push!(Tok::Op("="));
                    i += 1;
                }
            }
            '\\' if bytes.get(i + 1) == Some(&b'=') => {
                push!(Tok::Op("\\="));
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Op("=<"));
                    i += 2;
                } else {
                    push!(Tok::Op("<"));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    push!(Tok::Op(">="));
                    i += 2;
                } else {
                    push!(Tok::Op(">"));
                    i += 1;
                }
            }
            '+' => {
                push!(Tok::Op("+"));
                i += 1;
            }
            '-' => {
                push!(Tok::Op("-"));
                i += 1;
            }
            '*' => {
                push!(Tok::Op("*"));
                i += 1;
            }
            '/' => {
                push!(Tok::Op("/"));
                i += 1;
            }
            '"' => {
                let (s, ni, nl) = lex_quoted(bytes, i + 1, line, '"')?;
                push!(Tok::Str(s));
                i = ni;
                line = nl;
            }
            '\'' => {
                let (s, ni, nl) = lex_quoted(bytes, i + 1, line, '\'')?;
                push!(Tok::Atom(s));
                i = ni;
                line = nl;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let is_float = bytes.get(i) == Some(&b'.')
                    && bytes.get(i + 1).is_some_and(|b| b.is_ascii_digit());
                if is_float {
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                    // Optional exponent.
                    if bytes.get(i) == Some(&b'e') || bytes.get(i) == Some(&b'E') {
                        let mut j = i + 1;
                        if bytes.get(j) == Some(&b'+') || bytes.get(j) == Some(&b'-') {
                            j += 1;
                        }
                        if bytes.get(j).is_some_and(|b| b.is_ascii_digit()) {
                            i = j;
                            while i < bytes.len() && bytes[i].is_ascii_digit() {
                                i += 1;
                            }
                        }
                    }
                    let text = &src[start..i];
                    let v: f64 = text.parse().map_err(|_| LexError {
                        message: format!("bad float literal {text:?}"),
                        line,
                    })?;
                    push!(Tok::Double(v));
                } else {
                    let text = &src[start..i];
                    match text.parse::<i64>() {
                        Ok(v) => push!(Tok::Int(v)),
                        Err(_) => {
                            let b: BigInt = text.parse().map_err(|_| LexError {
                                message: format!("bad integer literal {text:?}"),
                                line,
                            })?;
                            push!(Tok::Big(b));
                        }
                    }
                }
            }
            c if c.is_ascii_lowercase() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &src[start..i];
                if word == "mod" {
                    push!(Tok::Op("mod"));
                } else {
                    push!(Tok::Atom(word.to_string()));
                }
            }
            c if c.is_ascii_uppercase() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                push!(Tok::Var(src[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(out)
}

fn lex_quoted(
    bytes: &[u8],
    mut i: usize,
    mut line: u32,
    quote: char,
) -> Result<(String, usize, u32), LexError> {
    let mut s = String::new();
    loop {
        match bytes.get(i) {
            None => {
                return Err(LexError {
                    message: format!("unterminated {quote} literal"),
                    line,
                })
            }
            Some(&b) if b as char == quote => return Ok((s, i + 1, line)),
            Some(b'\\') => {
                match bytes.get(i + 1) {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(&q) if q as char == quote => s.push(quote),
                    other => {
                        return Err(LexError {
                            message: format!("bad escape \\{:?}", other.map(|b| *b as char)),
                            line,
                        })
                    }
                }
                i += 2;
            }
            Some(b'\n') => {
                line += 1;
                s.push('\n');
                i += 1;
            }
            Some(&b) => {
                s.push(b as char);
                i += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn simple_fact() {
        assert_eq!(
            toks("edge(a, 1)."),
            vec![
                Tok::Atom("edge".into()),
                Tok::LParen,
                Tok::Atom("a".into()),
                Tok::Comma,
                Tok::Int(1),
                Tok::RParen,
                Tok::Dot
            ]
        );
    }

    #[test]
    fn rule_with_ops() {
        assert_eq!(
            toks("p(X) :- q(X, Y), Y >= 3, X = Y + 1."),
            vec![
                Tok::Atom("p".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::If,
                Tok::Atom("q".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::Comma,
                Tok::Var("Y".into()),
                Tok::RParen,
                Tok::Comma,
                Tok::Var("Y".into()),
                Tok::Op(">="),
                Tok::Int(3),
                Tok::Comma,
                Tok::Var("X".into()),
                Tok::Op("="),
                Tok::Var("Y".into()),
                Tok::Op("+"),
                Tok::Int(1),
                Tok::Dot
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 1.5 2.0e3 123456789012345678901234567890"),
            vec![
                Tok::Int(1),
                Tok::Double(1.5),
                Tok::Double(2000.0),
                Tok::Big("123456789012345678901234567890".parse().unwrap()),
            ]
        );
    }

    #[test]
    fn float_vs_clause_dot() {
        // "1." is a clause-ending dot after the integer 1.
        assert_eq!(
            toks("f(1). g(1.5)."),
            vec![
                Tok::Atom("f".into()),
                Tok::LParen,
                Tok::Int(1),
                Tok::RParen,
                Tok::Dot,
                Tok::Atom("g".into()),
                Tok::LParen,
                Tok::Double(1.5),
                Tok::RParen,
                Tok::Dot,
            ]
        );
    }

    #[test]
    fn lists_and_bars() {
        assert_eq!(
            toks("[X | T]"),
            vec![
                Tok::LBracket,
                Tok::Var("X".into()),
                Tok::Bar,
                Tok::Var("T".into()),
                Tok::RBracket
            ]
        );
    }

    #[test]
    fn comments_ignored() {
        assert_eq!(
            toks("a. % comment here\n/* block\ncomment */ b."),
            vec![
                Tok::Atom("a".into()),
                Tok::Dot,
                Tok::Atom("b".into()),
                Tok::Dot
            ]
        );
    }

    #[test]
    fn strings_and_quoted_atoms() {
        assert_eq!(
            toks(r#""hi there" 'Odd Atom' "esc\"q""#),
            vec![
                Tok::Str("hi there".into()),
                Tok::Atom("Odd Atom".into()),
                Tok::Str("esc\"q".into())
            ]
        );
    }

    #[test]
    fn query_and_annotations() {
        assert_eq!(
            toks("?- p(X). @pipelining."),
            vec![
                Tok::QueryPrefix,
                Tok::Atom("p".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::At,
                Tok::Atom("pipelining".into()),
                Tok::Dot
            ]
        );
    }

    #[test]
    fn error_positions() {
        let err = lex("a.\nb.\n &").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(lex("\"open").is_err());
        assert!(lex("/* open").is_err());
        assert!(lex("x.y").is_err(), "dot must end a clause");
    }

    #[test]
    fn anonymous_and_named_vars() {
        assert_eq!(
            toks("_ _X Abc"),
            vec![
                Tok::Var("_".into()),
                Tok::Var("_X".into()),
                Tok::Var("Abc".into())
            ]
        );
    }

    #[test]
    fn mod_is_an_operator() {
        assert_eq!(
            toks("X mod 2"),
            vec![Tok::Var("X".into()), Tok::Op("mod"), Tok::Int(2)]
        );
    }
}
