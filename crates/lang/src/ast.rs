//! Abstract syntax for CORAL programs.

use coral_term::{Symbol, Term, VarId};

/// A predicate reference: name and arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct PredRef {
    /// Predicate name.
    pub name: Symbol,
    /// Number of arguments.
    pub arity: usize,
}

impl PredRef {
    /// Build from a name string and arity.
    pub fn new(name: &str, arity: usize) -> PredRef {
        PredRef {
            name: Symbol::intern(name),
            arity,
        }
    }
}

impl std::fmt::Display for PredRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// Binding status of one argument position in a query form (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Binding {
    /// `b`: bindings in this position are propagated.
    Bound,
    /// `f`: bindings in this position are ignored (final selection only).
    Free,
}

/// An adornment: one [`Binding`] per argument (`bff`).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(pub Vec<Binding>);

impl Adornment {
    /// Parse `"bfbf"`.
    pub fn parse(s: &str) -> Option<Adornment> {
        s.chars()
            .map(|c| match c {
                'b' => Some(Binding::Bound),
                'f' => Some(Binding::Free),
                _ => None,
            })
            .collect::<Option<Vec<_>>>()
            .map(Adornment)
    }

    /// All-free adornment of the given arity.
    pub fn all_free(arity: usize) -> Adornment {
        Adornment(vec![Binding::Free; arity])
    }

    /// All-bound adornment of the given arity.
    pub fn all_bound(arity: usize) -> Adornment {
        Adornment(vec![Binding::Bound; arity])
    }

    /// Number of argument positions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Indices of the bound positions.
    pub fn bound_positions(&self) -> Vec<usize> {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, b)| **b == Binding::Bound)
            .map(|(i, _)| i)
            .collect()
    }

    /// True iff every position is free.
    pub fn is_all_free(&self) -> bool {
        self.0.iter().all(|b| *b == Binding::Free)
    }
}

impl std::fmt::Display for Adornment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for b in &self.0 {
            f.write_str(match b {
                Binding::Bound => "b",
                Binding::Free => "f",
            })?;
        }
        Ok(())
    }
}

/// A positive atom `p(t1, …, tn)`.
#[derive(Clone, PartialEq, Debug)]
pub struct Literal {
    /// Predicate name.
    pub pred: Symbol,
    /// Argument terms (variables numbered within the enclosing clause).
    pub args: Vec<Term>,
}

impl Literal {
    /// The predicate reference.
    pub fn pred_ref(&self) -> PredRef {
        PredRef {
            name: self.pred,
            arity: self.args.len(),
        }
    }
}

/// Comparison / unification built-ins usable in rule bodies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `=` — unification, with arithmetic evaluation of ground
    /// arithmetic terms on either side (`C1 = C + EC` in Figure 3).
    Unify,
    /// `\=` — not unifiable.
    NotUnify,
    /// `<`
    Lt,
    /// `=<`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CmpOp::Unify => "=",
            CmpOp::NotUnify => "\\=",
            CmpOp::Lt => "<",
            CmpOp::Le => "=<",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One conjunct of a rule body.
#[derive(Clone, PartialEq, Debug)]
pub enum BodyItem {
    /// A positive literal over a base, derived or built-in predicate.
    Literal(Literal),
    /// A negated literal `not p(…)` (§5.4.1).
    Negated(Literal),
    /// A comparison or unification built-in.
    Compare {
        /// The operator.
        op: CmpOp,
        /// Left operand (may be an arithmetic term).
        lhs: Term,
        /// Right operand (may be an arithmetic term).
        rhs: Term,
    },
}

impl BodyItem {
    /// The literal, if this item is one (positive or negated).
    pub fn literal(&self) -> Option<&Literal> {
        match self {
            BodyItem::Literal(l) | BodyItem::Negated(l) => Some(l),
            BodyItem::Compare { .. } => None,
        }
    }
}

/// A rule `head :- body.` — a fact when `body` is empty.
#[derive(Clone, PartialEq, Debug)]
pub struct Rule {
    /// Head atom; its arguments may contain aggregate terms
    /// (`min(C)`, `count(X)`, …) denoting grouping/aggregation.
    pub head: Literal,
    /// Body conjuncts, evaluated left-to-right by default (§4.1).
    pub body: Vec<BodyItem>,
    /// Number of distinct variables in the clause.
    pub nvars: u32,
    /// Original variable names, indexed by [`VarId`] (for pretty
    /// printing and explanations).
    pub var_names: Vec<String>,
}

impl Rule {
    /// True iff the rule has no body (it is a fact).
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Name for a variable: the declared name, or `V<n>`.
    pub fn var_name(&self, v: VarId) -> String {
        self.var_names
            .get(v.0 as usize)
            .cloned()
            .unwrap_or_else(|| format!("V{}", v.0))
    }
}

/// Aggregate functions usable in rule heads and aggregate selections.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AggFn {
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Count of tuples in the group.
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// An arbitrary witness.
    Any,
}

impl AggFn {
    /// Parse an aggregate function name.
    pub fn from_name(s: &str) -> Option<AggFn> {
        Some(match s {
            "min" => AggFn::Min,
            "max" => AggFn::Max,
            "count" => AggFn::Count,
            "sum" => AggFn::Sum,
            "avg" => AggFn::Avg,
            "any" => AggFn::Any,
            _ => return None,
        })
    }

    /// The surface name.
    pub fn name(&self) -> &'static str {
        match self {
            AggFn::Min => "min",
            AggFn::Max => "max",
            AggFn::Count => "count",
            AggFn::Sum => "sum",
            AggFn::Avg => "avg",
            AggFn::Any => "any",
        }
    }
}

/// Which selection-propagating rewriting to use for a module (§4.1).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RewriteKind {
    /// Supplementary Magic Templates — CORAL's default.
    #[default]
    SupplementaryMagic,
    /// Plain Magic Templates.
    Magic,
    /// Supplementary Magic with goal identifiers (§4.1).
    SupplementaryMagicGoalId,
    /// Context factoring for left-/right-linear rules.
    Factoring,
    /// No rewriting: evaluate the original rules bottom-up.
    None,
}

/// Incremental-maintenance strategy for a materialized module's derived
/// relations (`@maintain …`). Selected per module; `Auto` consults the
/// dependency graph (counting for non-recursive strata, delete/rederive
/// for recursive ones) and the statistics catalog.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MaintainKind {
    /// Pick per stratum: counting when non-recursive, DRed when
    /// recursive, plain recompute when statistics say the base data is
    /// too small to bother.
    #[default]
    Auto,
    /// Counting maintenance: per-tuple derivation counts adjusted from
    /// base deltas without re-running the stratum. Falls back to DRed on
    /// recursive strata, where counts are not well defined.
    Counting,
    /// Delete-and-rederive: overdelete the affected cone, rederive
    /// survivors, then propagate insertions semi-naively.
    Dred,
    /// No maintenance: base updates invalidate the materialized module
    /// wholesale (the historical behavior).
    Recompute,
}

/// The fixpoint variant for a materialized module (§4.2, §5.3).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum FixpointKind {
    /// Basic Semi-Naive.
    #[default]
    Bsn,
    /// Predicate Semi-Naive.
    Psn,
    /// Naive re-evaluation (the baseline semi-naive is measured
    /// against; §5.3 paper ref \[2\]).
    Naive,
}

/// A module-level or relation-level annotation (§4, §5).
#[derive(Clone, PartialEq, Debug)]
pub enum Annotation {
    /// `@pipelining.` — evaluate the module top-down (§5.2).
    Pipelining,
    /// `@materialize.` — bottom-up fixpoint (default).
    Materialize,
    /// `@bsn.` / `@psn.`
    Fixpoint(FixpointKind),
    /// `@rewrite supplementary|magic|goalid|factoring|none.`
    Rewrite(RewriteKind),
    /// `@ordered_search.` (§5.4.1).
    OrderedSearch,
    /// `@save_module.` (§5.4.2).
    SaveModule,
    /// `@lazy.` (§5.4.3).
    Lazy,
    /// `@no_intelligent_backtracking.` — ablation: chronological
    /// backtracking only (§4.2 lists intelligent backtracking as an
    /// optimizer decision).
    NoIntelligentBacktracking,
    /// `@no_auto_index.` — ablation: suppress the optimizer's automatic
    /// index selection (§4.2); only user `@make_index` indices remain.
    NoAutoIndex,
    /// `@reorder_joins.` — opt into the optimizer's join-order selection
    /// (§4.2): positive body literals are greedily reordered
    /// most-bound-first; CORAL's default keeps the user's left-to-right
    /// order ("more generally, in a user specified order", §5.6).
    ReorderJoins,
    /// `@profile.` — collect an `EngineProfile` (per-layer counters and
    /// per-SCC fixpoint sections) for every call into this module.
    Profile,
    /// `@maintain.` / `@maintain counting|dred|recompute.` — keep the
    /// module's derived relations incrementally maintained under base
    /// inserts and deletes instead of invalidating them wholesale.
    Maintain(MaintainKind),
    /// `@multiset p/2.` — multiset semantics for one predicate (§4.2).
    Multiset(PredRef),
    /// `@aggregate_selection p(X,Y,P,C) (X,Y) min(C).` (§5.5.2). The
    /// pattern's arguments must be distinct variables.
    AggregateSelection {
        /// The predicate and its variable pattern.
        pred: PredRef,
        /// Group-by variables.
        group_vars: Vec<Symbol>,
        /// The aggregate function.
        agg: AggFn,
        /// Its argument variable.
        agg_var: Symbol,
        /// Variable names of the pattern, in argument order.
        pattern_vars: Vec<Symbol>,
    },
    /// `@make_index p(Name, addr(S, C)) (Name, C).` (§5.5.1). When the
    /// pattern arguments are distinct variables this is an argument-form
    /// index; otherwise a pattern-form index.
    MakeIndex {
        /// The predicate.
        pred: PredRef,
        /// The pattern, one term per column.
        pattern: Vec<Term>,
        /// Key variables (ids within the pattern's numbering).
        key_vars: Vec<VarId>,
    },
}

/// An exported predicate with its permitted query forms (§2).
#[derive(Clone, PartialEq, Debug)]
pub struct Export {
    /// The predicate.
    pub pred: PredRef,
    /// Allowed adornments; a query must match one of them.
    pub forms: Vec<Adornment>,
}

/// A program module — the unit of compilation and evaluation (§5).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Exported predicates with query forms.
    pub exports: Vec<Export>,
    /// The rules (facts included).
    pub rules: Vec<Rule>,
    /// Module and predicate annotations.
    pub annotations: Vec<Annotation>,
}

impl Module {
    /// The export declaration for `pred`, if any.
    pub fn export_of(&self, pred: PredRef) -> Option<&Export> {
        self.exports.iter().find(|e| e.pred == pred)
    }

    /// Predicates defined by rules in this module.
    pub fn defined_preds(&self) -> Vec<PredRef> {
        let mut out: Vec<PredRef> = Vec::new();
        for r in &self.rules {
            let p = r.head.pred_ref();
            if !out.contains(&p) {
                out.push(p);
            }
        }
        out
    }
}

/// A query `?- p(X, 5).`
#[derive(Clone, PartialEq, Debug)]
pub struct Query {
    /// The queried literal.
    pub literal: Literal,
    /// Number of distinct variables.
    pub nvars: u32,
    /// Variable names, indexed by id.
    pub var_names: Vec<String>,
}

impl Query {
    /// The adornment induced by the query's ground arguments.
    pub fn adornment(&self) -> Adornment {
        Adornment(
            self.literal
                .args
                .iter()
                .map(|t| {
                    if t.is_ground() {
                        Binding::Bound
                    } else {
                        Binding::Free
                    }
                })
                .collect(),
        )
    }
}

/// One top-level item of a consulted file.
#[derive(Clone, PartialEq, Debug)]
pub enum ProgramItem {
    /// A module definition.
    Module(Module),
    /// A bare fact for a base relation.
    Fact(Rule),
    /// A top-level annotation (applies to base relations).
    Annotation(Annotation),
    /// A query.
    Query(Query),
}

/// A parsed file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Items in source order.
    pub items: Vec<ProgramItem>,
}

impl Program {
    /// The modules, in source order.
    pub fn modules(&self) -> impl Iterator<Item = &Module> {
        self.items.iter().filter_map(|i| match i {
            ProgramItem::Module(m) => Some(m),
            _ => None,
        })
    }

    /// Bare facts, in source order.
    pub fn facts(&self) -> impl Iterator<Item = &Rule> {
        self.items.iter().filter_map(|i| match i {
            ProgramItem::Fact(f) => Some(f),
            _ => None,
        })
    }
}
