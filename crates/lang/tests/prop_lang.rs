#![cfg(feature = "proptest")]

//! Property tests: pretty-printing a parsed program re-parses to the
//! same AST (printing is a retraction of parsing).

use coral_lang::pretty::program_to_string;
use coral_lang::{parse_program, parse_term, Program};
use proptest::prelude::*;

/// Random term source text built from a small grammar.
fn term_src() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-999i64..999).prop_map(|v| v.to_string()),
        (0u32..3).prop_map(|v| format!("X{v}")),
        prop_oneof![Just("a"), Just("b"), Just("foo")].prop_map(str::to_string),
        Just("\"a string\"".to_string()),
        Just("[]".to_string()),
        (1u32..99).prop_map(|v| format!("{v}.5")),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (
                prop_oneof![Just("f"), Just("g"), Just("edge")],
                proptest::collection::vec(inner.clone(), 1..3),
            )
                .prop_map(|(name, args)| format!("{name}({})", args.join(", "))),
            proptest::collection::vec(inner.clone(), 0..3)
                .prop_map(|elems| format!("[{}]", elems.join(", "))),
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a} + {b})")),
        ]
    })
}

/// Random clause text.
fn clause_src() -> impl Strategy<Value = String> {
    let head_args = proptest::collection::vec(term_src(), 1..3);
    let body_item = prop_oneof![
        (
            prop_oneof![Just("p"), Just("q"), Just("r")],
            proptest::collection::vec(term_src(), 1..3),
        )
            .prop_map(|(n, a)| format!("{n}({})", a.join(", "))),
        (
            term_src(),
            prop_oneof![Just("<"), Just(">="), Just("=")],
            term_src()
        )
            .prop_map(|(l, op, r)| format!("{l} {op} {r}")),
        (
            prop_oneof![Just("p"), Just("q")],
            proptest::collection::vec(term_src(), 1..2),
        )
            .prop_map(|(n, a)| format!("not {n}({})", a.join(", "))),
    ];
    (
        prop_oneof![Just("h"), Just("p")],
        head_args,
        proptest::collection::vec(body_item, 0..3),
    )
        .prop_map(|(name, args, body)| {
            let head = format!("{name}({})", args.join(", "));
            if body.is_empty() {
                format!("{head}.")
            } else {
                format!("{head} :- {}.", body.join(", "))
            }
        })
}

fn program_src() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(clause_src(), 1..5),
        proptest::collection::vec(term_src(), 0..3),
    )
        .prop_map(|(clauses, fact_args)| {
            let mut src = String::new();
            for t in &fact_args {
                src.push_str(&format!("base({t}).\n"));
            }
            src.push_str("module m.\nexport h(ff).\n");
            for c in &clauses {
                src.push_str(c);
                src.push('\n');
            }
            src.push_str("end_module.\n");
            src
        })
}

/// Compare programs modulo variable *names* (printing uses the stored
/// names, so ASTs should match exactly here).
fn assert_roundtrip(src: &str) -> Result<(), TestCaseError> {
    let p1: Program = match parse_program(src) {
        Ok(p) => p,
        // Generated text can be ill-formed (e.g. a comparison as a rule
        // head); that's a property of the generator, not a bug.
        Err(_) => return Ok(()),
    };
    let printed = program_to_string(&p1);
    let p2 = parse_program(&printed)
        .map_err(|e| TestCaseError::fail(format!("reprint failed to parse: {e}\n{printed}")))?;
    let reprinted = program_to_string(&p2);
    prop_assert_eq!(printed, reprinted, "printing not a fixpoint for {}", src);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn program_print_parse_fixpoint(src in program_src()) {
        assert_roundtrip(&src)?;
    }

    #[test]
    fn term_print_parse_roundtrip(src in term_src()) {
        if let Ok((t1, names)) = parse_term(&src) {
            let name_of = |v: coral_term::VarId| {
                names.get(v.0 as usize).cloned().unwrap_or_else(|| format!("V{}", v.0))
            };
            let printed = coral_lang::pretty::term_to_string(&t1, &name_of);
            let (t2, _) = parse_term(&printed)
                .map_err(|e| TestCaseError::fail(format!("{e}: {printed}")))?;
            prop_assert!(coral_term::variant(&t1, &t2), "{} vs {}", t1, t2);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser never panics, whatever bytes arrive.
    #[test]
    fn parser_total_on_arbitrary_input(src in "\\PC*") {
        let _ = parse_program(&src);
        let _ = parse_term(&src);
        let _ = coral_lang::parse_query(&src);
    }

    /// ... including inputs built from the language's own token shards.
    #[test]
    fn parser_total_on_token_soup(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("module"), Just("end_module."), Just("export"), Just("p(bf)."),
                Just(":-"), Just("?-"), Just("."), Just(","), Just("("), Just(")"),
                Just("["), Just("]"), Just("|"), Just("not"), Just("@psn."),
                Just("X"), Just("foo"), Just("42"), Just("1.5"), Just("\"s\""),
                Just("="), Just("<"), Just("+"), Just("'q a'"),
            ],
            0..40,
        )
    ) {
        let src = parts.join(" ");
        let _ = parse_program(&src);
    }
}
