//! Property tests for incremental statistics maintenance.
//!
//! The oracle is differential: replay a random interleaving of inserts
//! and deletes (deletes only ever target live rows, as coral-rel
//! guarantees) into an incrementally maintained [`RelStats`], and at
//! checkpoints rebuild statistics from scratch with
//! [`RelStats::analyze`] over the live multiset. Cardinality must agree
//! exactly always; per-column distincts must agree exactly while the
//! column is in exact mode. Counts must never go negative (observable
//! as cardinality/distinct staying consistent with the live multiset,
//! and as saturation under spurious deletes).

use coral_stats::{RelStats, EXACT_CAP};
use coral_term::testutil::TestRng;
use coral_term::Term;

const ARITY: usize = 3;

fn random_row(rng: &mut TestRng, domain: usize) -> Vec<Term> {
    (0..ARITY)
        .map(|_| Term::int(rng.gen_range(0, domain) as i64))
        .collect()
}

/// Replay `ops` random insert/delete operations and check the
/// differential oracle at every 16th step and at the end.
fn run_interleaving(seed: u64, domain: usize, ops: usize) {
    let mut rng = TestRng::new(seed);
    let mut stats = RelStats::new(ARITY);
    let mut live: Vec<Vec<Term>> = Vec::new();
    for step in 0..ops {
        let delete = !live.is_empty() && rng.gen_bool(0.4);
        if delete {
            let i = rng.gen_range(0, live.len());
            let row = live.swap_remove(i);
            stats.on_delete(&row);
        } else {
            let row = random_row(&mut rng, domain);
            stats.on_insert(&row);
            live.push(row);
        }
        assert_eq!(
            stats.cardinality(),
            live.len() as u64,
            "seed {seed} step {step}: cardinality diverged from live multiset"
        );
        for c in 0..ARITY {
            let d = stats.distinct(c);
            assert!(
                d <= stats.cardinality(),
                "seed {seed} step {step} col {c}: distinct {d} exceeds cardinality"
            );
            if stats.cardinality() > 0 {
                assert!(
                    d >= 1,
                    "seed {seed} step {step} col {c}: distinct 0 with live rows"
                );
            }
        }
        if step % 16 == 15 || step + 1 == ops {
            let fresh = RelStats::analyze(ARITY, live.iter().map(|r| r.as_slice()));
            assert_eq!(stats.cardinality(), fresh.cardinality());
            for c in 0..ARITY {
                if stats.is_exact(c) && !stats.is_stale() {
                    assert_eq!(
                        stats.distinct(c),
                        fresh.distinct(c),
                        "seed {seed} step {step} col {c}: exact-mode incremental \
                         maintenance diverged from fresh ANALYZE"
                    );
                }
            }
        }
    }
}

#[test]
fn exact_mode_converges_to_analyze() {
    // Domain of 8 values per column: stays far under EXACT_CAP, so the
    // oracle applies to every checkpoint of every seed.
    for seed in 0..40u64 {
        run_interleaving(seed, 8, 400);
    }
}

#[test]
fn sketch_mode_invariants_hold() {
    // Domain far past EXACT_CAP: columns degrade to the KMV sketch,
    // deletes mark them stale, and the bounds (distinct ≤ cardinality,
    // ≥ 1 while non-empty, cardinality exact) must still hold.
    const { assert!(10_000 > EXACT_CAP) };
    for seed in 0..20u64 {
        run_interleaving(seed, 10_000, 600);
    }
}

#[test]
fn drain_and_refill_converges() {
    // Insert-heavy, then delete everything, then refill: the empty
    // state must be exactly recoverable in exact mode.
    let mut rng = TestRng::new(7);
    let mut stats = RelStats::new(ARITY);
    let mut live: Vec<Vec<Term>> = Vec::new();
    for _ in 0..100 {
        let row = random_row(&mut rng, 6);
        stats.on_insert(&row);
        live.push(row);
    }
    while let Some(row) = live.pop() {
        stats.on_delete(&row);
    }
    assert_eq!(stats.cardinality(), 0);
    for c in 0..ARITY {
        assert_eq!(stats.distinct(c), 0);
    }
    assert!(!stats.is_stale());
    for _ in 0..50 {
        let row = random_row(&mut rng, 6);
        stats.on_insert(&row);
        live.push(row);
    }
    let fresh = RelStats::analyze(ARITY, live.iter().map(|r| r.as_slice()));
    for c in 0..ARITY {
        assert_eq!(stats.distinct(c), fresh.distinct(c));
    }
}

#[test]
fn spurious_deletes_saturate() {
    // Deletes of rows never inserted must not underflow anything.
    let mut stats = RelStats::new(ARITY);
    stats.on_insert(&[Term::int(1), Term::int(2), Term::int(3)]);
    for _ in 0..5 {
        stats.on_delete(&[Term::int(9), Term::int(9), Term::int(9)]);
    }
    assert_eq!(stats.cardinality(), 0);
    for c in 0..ARITY {
        assert_eq!(stats.distinct(c), 0, "col {c}");
    }
}
