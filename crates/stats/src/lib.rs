//! coral-stats: per-relation statistics for cost-based planning.
//!
//! CORAL's optimizer (§4.2) chooses join orders and rewriting strategy
//! from static heuristics. This crate supplies the missing signal: per
//! relation, the exact tuple cardinality plus a per-column
//! distinct-value estimate, maintained *incrementally* on every
//! insert/delete and refreshable from a full scan (`ANALYZE`). The
//! planner in coral-core turns these into selectivities and estimated
//! intermediate-result sizes.
//!
//! Per column the estimator is two-tier:
//!
//! * **Exact counters** while the domain is small: a map from value
//!   hash to live count, capped at [`EXACT_CAP`] distinct values.
//!   Within the cap, insert/delete maintenance is exactly convergent
//!   with a fresh `ANALYZE` scan (the property-test oracle relies on
//!   this).
//! * **KMV sketch** beyond the cap: the `k` minimum value hashes
//!   ([`KMV_K`]), the classic k-minimum-values distinct estimator.
//!   Inserts keep the sketch exact-over-inserts; deletes cannot be
//!   subtracted from a sketch, so the column is marked stale and the
//!   estimate becomes an upper bound until the next `ANALYZE`.
//!
//! Hashing uses `std::collections::hash_map::DefaultHasher` seeded by
//! `DefaultHasher::new()`, which is zero-keyed SipHash — deterministic
//! across processes, so persisted sketches stay meaningful on reopen.

use coral_term::Term;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Maximum distinct values tracked exactly per column before degrading
/// to the KMV sketch.
pub const EXACT_CAP: usize = 64;

/// Number of minimum hashes kept by the KMV sketch.
pub const KMV_K: usize = 64;

fn hash_term(t: &Term) -> u64 {
    let mut h = DefaultHasher::new();
    t.hash(&mut h);
    h.finish()
}

/// K-minimum-values distinct sketch over 64-bit value hashes.
#[derive(Debug, Clone, Default, PartialEq)]
struct Kmv {
    /// The up-to-`KMV_K` smallest distinct hashes seen, sorted
    /// ascending.
    mins: Vec<u64>,
}

impl Kmv {
    fn observe(&mut self, h: u64) {
        match self.mins.binary_search(&h) {
            Ok(_) => {}
            Err(pos) => {
                if self.mins.len() < KMV_K {
                    self.mins.insert(pos, h);
                } else if pos < KMV_K {
                    self.mins.insert(pos, h);
                    self.mins.pop();
                }
            }
        }
    }

    /// Estimated number of distinct values observed.
    fn estimate(&self) -> u64 {
        if self.mins.len() < KMV_K {
            return self.mins.len() as u64;
        }
        // distinct ≈ (k − 1) / normalized k-th minimum.
        let kth = *self.mins.last().unwrap();
        if kth == 0 {
            return self.mins.len() as u64;
        }
        let frac = (kth as f64) / (u64::MAX as f64);
        ((KMV_K as f64 - 1.0) / frac).round() as u64
    }
}

/// Per-column distinct-value state.
#[derive(Debug, Clone, PartialEq)]
struct ColStats {
    /// Exact live counts per value hash while the domain fits
    /// [`EXACT_CAP`]; `None` once degraded to sketch-only.
    exact: Option<HashMap<u64, u64>>,
    /// Sketch maintained alongside from the start, so degradation
    /// loses no history.
    kmv: Kmv,
    /// Set when a delete hit a sketch-only column: the sketch can only
    /// overestimate from here until the next `ANALYZE`.
    stale: bool,
}

impl ColStats {
    fn new() -> ColStats {
        ColStats {
            exact: Some(HashMap::new()),
            kmv: Kmv::default(),
            stale: false,
        }
    }

    fn on_insert(&mut self, h: u64) {
        self.kmv.observe(h);
        if let Some(exact) = &mut self.exact {
            *exact.entry(h).or_insert(0) += 1;
            if exact.len() > EXACT_CAP {
                self.exact = None;
            }
        }
    }

    fn on_delete(&mut self, h: u64) {
        match &mut self.exact {
            Some(exact) => {
                if let Some(c) = exact.get_mut(&h) {
                    *c -= 1;
                    if *c == 0 {
                        exact.remove(&h);
                    }
                }
            }
            None => self.stale = true,
        }
    }

    fn distinct(&self) -> u64 {
        match &self.exact {
            Some(exact) => exact.len() as u64,
            None => self.kmv.estimate(),
        }
    }
}

/// Incrementally maintained statistics for one relation.
#[derive(Debug, Clone, PartialEq)]
pub struct RelStats {
    arity: usize,
    cardinality: u64,
    cols: Vec<ColStats>,
}

impl RelStats {
    /// Empty statistics for a relation of the given arity.
    pub fn new(arity: usize) -> RelStats {
        RelStats {
            arity,
            cardinality: 0,
            cols: (0..arity).map(|_| ColStats::new()).collect(),
        }
    }

    /// Build statistics from a full scan (the `ANALYZE` pass).
    pub fn analyze<'a, I>(arity: usize, rows: I) -> RelStats
    where
        I: IntoIterator<Item = &'a [Term]>,
    {
        let mut s = RelStats::new(arity);
        for row in rows {
            s.on_insert(row);
        }
        s
    }

    /// Arity the statistics were built for.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Record one inserted tuple. Rows shorter than the arity update
    /// only the columns present (defensive; never happens in coral-rel).
    pub fn on_insert(&mut self, row: &[Term]) {
        self.cardinality += 1;
        for (col, t) in self.cols.iter_mut().zip(row.iter()) {
            col.on_insert(hash_term(t));
        }
    }

    /// Record one deleted tuple. Saturates at zero: statistics never go
    /// negative even if fed a spurious delete.
    pub fn on_delete(&mut self, row: &[Term]) {
        self.cardinality = self.cardinality.saturating_sub(1);
        for (col, t) in self.cols.iter_mut().zip(row.iter()) {
            col.on_delete(hash_term(t));
        }
    }

    /// Exact live tuple count.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// Estimated distinct values in column `col` (0 when out of range).
    pub fn distinct(&self, col: usize) -> u64 {
        let Some(c) = self.cols.get(col) else {
            return 0;
        };
        // A sketch never claims more distinct values than live tuples,
        // and never fewer than 1 while the relation is non-empty.
        let d = c.distinct().min(self.cardinality);
        if self.cardinality > 0 {
            d.max(1)
        } else {
            0
        }
    }

    /// True while column `col` still tracks exact counts (the
    /// incremental-vs-ANALYZE differential oracle applies only then).
    pub fn is_exact(&self, col: usize) -> bool {
        self.cols.get(col).is_some_and(|c| c.exact.is_some())
    }

    /// True when any column's sketch has absorbed a delete it could not
    /// subtract; `ANALYZE` clears this.
    pub fn is_stale(&self) -> bool {
        self.cols.iter().any(|c| c.stale)
    }

    /// Combined selectivity of an equality probe on `bound_cols`:
    /// ∏ 1/distinct(c), assuming column independence (System R).
    /// Returns 1.0 when nothing is bound.
    pub fn selectivity(&self, bound_cols: &[usize]) -> f64 {
        let mut s = 1.0;
        for &c in bound_cols {
            let d = self.distinct(c);
            if d > 0 {
                s /= d as f64;
            }
        }
        s
    }

    /// Estimated rows produced by an equality probe on `bound_cols`.
    pub fn estimate_rows(&self, bound_cols: &[usize]) -> f64 {
        self.cardinality as f64 * self.selectivity(bound_cols)
    }

    /// Serialize for the storage catalog. Format (all little-endian):
    /// `[version u8][arity u16][cardinality u64]` then per column
    /// `[mode u8: 1 exact / 0 sketch][stale u8]`, exact payload
    /// `[n u16][(hash u64, count u64)]*n`, then sketch payload
    /// `[n u16][hash u64]*n`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.push(1u8);
        out.extend_from_slice(&(self.arity as u16).to_le_bytes());
        out.extend_from_slice(&self.cardinality.to_le_bytes());
        for col in &self.cols {
            match &col.exact {
                Some(exact) => {
                    out.push(1);
                    out.push(col.stale as u8);
                    out.extend_from_slice(&(exact.len() as u16).to_le_bytes());
                    // Sort for a canonical encoding (HashMap order is
                    // not deterministic).
                    let mut entries: Vec<(u64, u64)> =
                        exact.iter().map(|(h, c)| (*h, *c)).collect();
                    entries.sort_unstable();
                    for (h, c) in entries {
                        out.extend_from_slice(&h.to_le_bytes());
                        out.extend_from_slice(&c.to_le_bytes());
                    }
                }
                None => {
                    out.push(0);
                    out.push(col.stale as u8);
                }
            }
            out.extend_from_slice(&(col.kmv.mins.len() as u16).to_le_bytes());
            for h in &col.kmv.mins {
                out.extend_from_slice(&h.to_le_bytes());
            }
        }
        out
    }

    /// Inverse of [`encode`](RelStats::encode). `None` on any
    /// malformed input (wrong version, truncation).
    pub fn decode(bytes: &[u8]) -> Option<RelStats> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.u8()? != 1 {
            return None;
        }
        let arity = r.u16()? as usize;
        let cardinality = r.u64()?;
        let mut cols = Vec::with_capacity(arity);
        for _ in 0..arity {
            let mode = r.u8()?;
            let stale = r.u8()? != 0;
            let exact = if mode == 1 {
                let n = r.u16()? as usize;
                let mut m = HashMap::with_capacity(n);
                for _ in 0..n {
                    let h = r.u64()?;
                    let c = r.u64()?;
                    m.insert(h, c);
                }
                Some(m)
            } else {
                None
            };
            let n = r.u16()? as usize;
            let mut mins = Vec::with_capacity(n);
            for _ in 0..n {
                mins.push(r.u64()?);
            }
            if !mins.windows(2).all(|w| w[0] < w[1]) {
                return None;
            }
            cols.push(ColStats {
                exact,
                kmv: Kmv { mins },
                stale,
            });
        }
        if r.pos != bytes.len() {
            return None;
        }
        Some(RelStats {
            arity,
            cardinality,
            cols,
        })
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        let s = self.buf.get(self.pos..self.pos + n)?;
        self.pos += n;
        Some(s)
    }
    fn u8(&mut self) -> Option<u8> {
        Some(self.take(1)?[0])
    }
    fn u16(&mut self) -> Option<u16> {
        Some(u16::from_le_bytes(self.take(2)?.try_into().ok()?))
    }
    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coral_term::Term;

    fn row(vals: &[i64]) -> Vec<Term> {
        vals.iter().map(|&v| Term::int(v)).collect()
    }

    #[test]
    fn empty_stats() {
        let s = RelStats::new(2);
        assert_eq!(s.cardinality(), 0);
        assert_eq!(s.distinct(0), 0);
        assert_eq!(s.selectivity(&[0]), 1.0);
    }

    #[test]
    fn insert_delete_exact_roundtrip() {
        let mut s = RelStats::new(2);
        for i in 0..10 {
            s.on_insert(&row(&[i % 3, i]));
        }
        assert_eq!(s.cardinality(), 10);
        assert_eq!(s.distinct(0), 3);
        assert_eq!(s.distinct(1), 10);
        for i in 0..10 {
            s.on_delete(&row(&[i % 3, i]));
        }
        assert_eq!(s.cardinality(), 0);
        assert_eq!(s.distinct(0), 0);
        assert!(!s.is_stale());
    }

    #[test]
    fn degrades_to_sketch_past_cap() {
        let mut s = RelStats::new(1);
        for i in 0..(EXACT_CAP as i64 + 10) {
            s.on_insert(&row(&[i]));
        }
        assert!(!s.is_exact(0));
        let d = s.distinct(0);
        let n = EXACT_CAP as u64 + 10;
        // KMV with k=64 over ~74 values: generous tolerance.
        assert!(d >= n / 2 && d <= n * 2, "distinct {d} for {n} values");
    }

    #[test]
    fn sketch_estimate_in_range_large_domain() {
        let mut s = RelStats::new(1);
        for i in 0..10_000i64 {
            s.on_insert(&row(&[i]));
        }
        let d = s.distinct(0);
        assert!(
            (5_000..=20_000).contains(&d),
            "KMV estimate {d} far from 10000"
        );
    }

    #[test]
    fn delete_on_sketch_marks_stale_never_negative() {
        let mut s = RelStats::new(1);
        for i in 0..200i64 {
            s.on_insert(&row(&[i]));
        }
        for i in 0..200i64 {
            s.on_delete(&row(&[i]));
        }
        assert!(s.is_stale());
        assert_eq!(s.cardinality(), 0);
        // Extra deletes saturate.
        s.on_delete(&row(&[0]));
        assert_eq!(s.cardinality(), 0);
    }

    #[test]
    fn distinct_clamped_by_cardinality() {
        let mut s = RelStats::new(1);
        for i in 0..200i64 {
            s.on_insert(&row(&[i]));
        }
        for i in 0..199i64 {
            s.on_delete(&row(&[i]));
        }
        // Sketch still remembers 200 values, but only 1 row lives.
        assert_eq!(s.distinct(0), 1);
    }

    #[test]
    fn selectivity_multiplies_independent_columns() {
        let mut s = RelStats::new(2);
        for i in 0..12 {
            s.on_insert(&row(&[i % 3, i % 4]));
        }
        let sel = s.selectivity(&[0, 1]);
        assert!((sel - 1.0 / 12.0).abs() < 1e-9, "{sel}");
        let est = s.estimate_rows(&[0]);
        assert!((est - 4.0).abs() < 1e-9, "{est}");
    }

    #[test]
    fn analyze_matches_incremental_in_exact_mode() {
        let mut inc = RelStats::new(2);
        let rows: Vec<Vec<Term>> = (0..40).map(|i| row(&[i % 5, i % 7])).collect();
        for r in &rows {
            inc.on_insert(r);
        }
        let scan = RelStats::analyze(2, rows.iter().map(|r| r.as_slice()));
        assert_eq!(inc.cardinality(), scan.cardinality());
        assert_eq!(inc.distinct(0), scan.distinct(0));
        assert_eq!(inc.distinct(1), scan.distinct(1));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut s = RelStats::new(3);
        for i in 0..100 {
            s.on_insert(&row(&[i % 2, i, i % 30]));
        }
        let bytes = s.encode();
        let d = RelStats::decode(&bytes).expect("decode");
        assert_eq!(d, s);
        assert!(RelStats::decode(&bytes[..bytes.len() - 1]).is_none());
        assert!(RelStats::decode(&[]).is_none());
    }

    #[test]
    fn kmv_deterministic_across_builds() {
        // DefaultHasher::new() is zero-keyed SipHash: two independent
        // runs over the same data agree exactly.
        let mk = || {
            let mut s = RelStats::new(1);
            for i in 0..500i64 {
                s.on_insert(&row(&[i * 7 + 3]));
            }
            s
        };
        assert_eq!(mk().encode(), mk().encode());
    }
}
