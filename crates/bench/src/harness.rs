//! A minimal, dependency-free stand-in for the Criterion benchmark
//! harness.
//!
//! The workspace must build with no network access, so the `criterion`
//! crate is replaced by this module, which implements the exact API
//! surface the `benches/` files use (`Criterion::benchmark_group`,
//! `sample_size`, `warm_up_time`, `measurement_time`,
//! `bench_with_input`, `BenchmarkId::new`, `Bencher::iter`, `finish`,
//! and the `criterion_group!`/`criterion_main!` macros). Bench sources
//! only need to swap `use criterion::…` for `use coral_bench::harness::…`.
//!
//! Beyond timings, each benchmark records the engine's profiling counter
//! deltas (when the `profile` feature is on) and every group is written
//! as machine-readable JSON to `$CORAL_BENCH_JSON_DIR` (default
//! `target/bench-json/BENCH_<group>.json`), so BENCH_*.json entries carry
//! counter deltas alongside timings.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Mirror of `criterion::BenchmarkId::new`.
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Passed to the measurement closure; `iter` runs and times the payload.
pub struct Bencher {
    warmed_up: bool,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<u64>,
}

impl Bencher {
    /// Run `f` repeatedly: first a warm-up phase, then timed samples
    /// until the sample target or the measurement budget is reached.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.warmed_up {
            let t0 = Instant::now();
            loop {
                std::hint::black_box(f());
                if t0.elapsed() >= self.warm_up_time {
                    break;
                }
            }
            self.warmed_up = true;
        }
        let t0 = Instant::now();
        loop {
            let s0 = Instant::now();
            std::hint::black_box(f());
            self.samples_ns.push(s0.elapsed().as_nanos() as u64);
            if self.samples_ns.len() >= self.sample_size || t0.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// One benchmark's results: timing summary plus profiling counter deltas.
pub struct BenchResult {
    pub id: String,
    pub samples_ns: Vec<u64>,
    pub counters: Vec<(String, u64)>,
}

impl BenchResult {
    fn mean_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        (self.samples_ns.iter().map(|&n| n as u128).sum::<u128>() / self.samples_ns.len() as u128)
            as u64
    }

    fn median_ns(&self) -> u64 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }

    fn min_ns(&self) -> u64 {
        self.samples_ns.iter().copied().min().unwrap_or(0)
    }
}

/// Mirror of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
    finished: bool,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark. The input reference is forwarded to the
    /// closure exactly as Criterion does.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            warmed_up: false,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        let counters_before = profile_counters();
        f(&mut b, input);
        let counters = counter_deltas(&counters_before, &profile_counters());
        let result = BenchResult {
            id: id.id,
            samples_ns: b.samples_ns,
            counters,
        };
        println!(
            "{}/{}: median {} (mean {}, min {}, {} samples)",
            self.name,
            result.id,
            fmt_ns(result.median_ns()),
            fmt_ns(result.mean_ns()),
            fmt_ns(result.min_ns()),
            result.samples_ns.len(),
        );
        self.results.push(result);
    }

    /// Write the group's JSON report. Mirror of Criterion's `finish`.
    pub fn finish(&mut self) {
        self.finished = true;
        let dir = std::env::var("CORAL_BENCH_JSON_DIR")
            .unwrap_or_else(|_| "target/bench-json".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let json = self.to_json();
        if std::fs::create_dir_all(&dir).is_ok() {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("wrote {}", path.display());
            }
        }
        self.criterion.reports.push(json);
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"group\": {},\n", json_string(&self.name)));
        s.push_str(&format!("  \"meta\": {},\n", host_meta_json()));
        s.push_str("  \"benchmarks\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": {},\n", json_string(&r.id)));
            s.push_str(&format!("      \"samples\": {},\n", r.samples_ns.len()));
            s.push_str(&format!("      \"median_ns\": {},\n", r.median_ns()));
            s.push_str(&format!("      \"mean_ns\": {},\n", r.mean_ns()));
            s.push_str(&format!("      \"min_ns\": {},\n", r.min_ns()));
            s.push_str("      \"counters\": {");
            for (j, (k, v)) in r.counters.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("{}: {v}", json_string(k)));
            }
            s.push_str("}\n");
            s.push_str(if i + 1 == self.results.len() {
                "    }\n"
            } else {
                "    },\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        if !self.finished {
            self.finish();
        }
    }
}

/// Mirror of `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    reports: Vec<String>,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        // Counter collection is on by default so BENCH_*.json carries
        // deltas; set CORAL_BENCH_PROFILE=0 for counter-free timing runs
        // (the counting overhead is a few percent on term-heavy loads).
        #[cfg(feature = "profile")]
        coral_core::profile::set_profiling(
            !std::env::var("CORAL_BENCH_PROFILE").is_ok_and(|v| v == "0"),
        );
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            results: Vec::new(),
            finished: false,
        }
    }
}

/// Snapshot of all layers' profiling counters (empty when compiled out).
fn profile_counters() -> Vec<(String, u64)> {
    #[cfg(feature = "profile")]
    {
        return coral_core::profile::all_counters();
    }
    #[allow(unreachable_code)]
    Vec::new()
}

fn counter_deltas(before: &[(String, u64)], after: &[(String, u64)]) -> Vec<(String, u64)> {
    after
        .iter()
        .filter_map(|(k, v)| {
            let prev = before
                .iter()
                .find(|(bk, _)| bk == k)
                .map(|(_, bv)| *bv)
                .unwrap_or(0);
            let delta = v.saturating_sub(prev);
            (delta > 0).then(|| (k.clone(), delta))
        })
        .collect()
}

/// Host/configuration header attached to every BENCH_*.json so runs on
/// different machines (or under different CORAL_* knobs) are comparable
/// after the fact.
fn host_meta_json() -> String {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let env_or_unset = |k: &str| match std::env::var(k) {
        Ok(v) => json_string(&v),
        Err(_) => json_string("unset"),
    };
    format!(
        "{{\"host_cpus\": {cpus}, \"coral_threads\": {}, \"coral_columnar\": {}, \"coral_stats\": {}, \"coral_maintain\": {}, \"coral_hashjoin\": {}}}",
        env_or_unset("CORAL_THREADS"),
        env_or_unset("CORAL_COLUMNAR"),
        env_or_unset("CORAL_STATS"),
        env_or_unset("CORAL_MAINTAIN"),
        env_or_unset("CORAL_HASHJOIN"),
    )
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Mirror of `criterion_group!`: collects bench functions under a name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Mirror of `criterion_main!`: the bench binary's entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};
