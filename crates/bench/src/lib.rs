//! # coral-bench — workloads and harness for the paper's claims
//!
//! The CORAL paper (SIGMOD 1993) has no quantitative evaluation section —
//! "performance measurements of a preliminary nature have been made"
//! (§9); its figures are the architecture (Fig. 1), the term
//! representation (Fig. 2) and the shortest-path program (Fig. 3). Each
//! *performance claim in the text* therefore becomes an experiment; the
//! experiment ids E1–E14 are indexed in `DESIGN.md` and reported in
//! `EXPERIMENTS.md`. This crate provides the shared workload generators
//! and program templates; `benches/` holds one Criterion bench per
//! experiment, and `src/bin/experiments.rs` regenerates the
//! EXPERIMENTS.md tables.

use coral_core::session::Session;
use coral_term::testutil::TestRng;
use std::fmt::Write as _;

pub mod harness;

/// Deterministic workload generators.
pub mod workloads {
    use super::*;

    /// `edge(0,1). edge(1,2). …` — a chain of `n` edges.
    pub fn chain(n: usize) -> String {
        let mut s = String::with_capacity(n * 16);
        for i in 0..n {
            let _ = writeln!(s, "edge({i}, {}).", i + 1);
        }
        s
    }

    /// A random directed graph with `v` nodes and `e` edges (may be
    /// cyclic).
    pub fn random_graph(v: usize, e: usize, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        let mut s = String::with_capacity(e * 16);
        for _ in 0..e {
            let a = rng.gen_range(0, v);
            let b = rng.gen_range(0, v);
            let _ = writeln!(s, "edge({a}, {b}).");
        }
        s
    }

    /// A random *costed* directed graph `edge(A, B, C)` with cycles —
    /// the Figure 3 workload.
    pub fn random_costed_graph(v: usize, e: usize, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        let mut s = String::with_capacity(e * 20);
        // A spine so everything is reachable from node 0.
        for i in 0..v - 1 {
            let _ = writeln!(s, "edge({i}, {}, {}).", i + 1, rng.gen_range(1, 20));
        }
        for _ in 0..e.saturating_sub(v - 1) {
            let a = rng.gen_range(0, v);
            let b = rng.gen_range(0, v);
            if a != b {
                let _ = writeln!(s, "edge({a}, {b}, {}).", rng.gen_range(1, 20));
            }
        }
        s
    }

    /// A complete binary tree of `depth` levels: `par(parent, child)`.
    pub fn binary_tree(depth: u32) -> String {
        let mut s = String::new();
        let nodes = (1usize << depth) - 1;
        for i in 1..=nodes {
            let l = 2 * i;
            let r = 2 * i + 1;
            if l < (1usize << (depth + 1)) {
                let _ = writeln!(s, "par({i}, {l}).");
                let _ = writeln!(s, "par({i}, {r}).");
            }
        }
        s
    }

    /// up/flat/down data for same-generation: `layers` layers of
    /// `width` nodes; `flat` connects the top layer.
    pub fn same_gen(layers: usize, width: usize) -> String {
        let mut s = String::new();
        let id = |layer: usize, i: usize| layer * width + i;
        for layer in 0..layers - 1 {
            for i in 0..width {
                let _ = writeln!(s, "up({}, {}).", id(layer, i), id(layer + 1, i / 2));
                let _ = writeln!(s, "down({}, {}).", id(layer + 1, i / 2), id(layer, i));
            }
        }
        for i in 0..width {
            let top = id(layers - 1, i / 2);
            let _ = writeln!(s, "flat({top}, {top}).");
        }
        s
    }

    /// An acyclic win-move game graph: a chain with some shortcuts.
    pub fn game_graph(n: usize, seed: u64) -> String {
        let mut rng = TestRng::new(seed);
        let mut s = String::new();
        for i in 0..n {
            let _ = writeln!(s, "move({i}, {}).", i + 1);
            if i + 3 <= n && rng.gen_bool(0.3) {
                let _ = writeln!(s, "move({i}, {}).", i + 3);
            }
        }
        s
    }

    /// A module with `k` mutually recursive predicates p0..p(k-1), each
    /// feeding the next, closing the cycle — many mutually recursive
    /// predicates in one SCC (the PSN target of §4.2).
    pub fn mutual_recursion_module(k: usize, fixpoint: &str) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "module mu.");
        let _ = writeln!(s, "export p0(bf).");
        let _ = writeln!(s, "@{fixpoint}.");
        let _ = writeln!(s, "p0(X, Y) :- edge(X, Y).");
        for i in 0..k {
            let next = (i + 1) % k;
            let _ = writeln!(s, "p{next}(X, Y) :- p{i}(X, Z), edge(Z, Y).");
        }
        for i in 1..k {
            let _ = writeln!(s, "p0(X, Y) :- p{i}(X, Y).");
        }
        let _ = writeln!(s, "end_module.");
        s
    }
}

/// Program templates.
pub mod programs {
    /// Transitive closure, right-linear, with controls spliced in.
    pub fn tc(annotations: &str, forms: &str) -> String {
        format!(
            "module tc.\nexport path({forms}).\n{annotations}\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- edge(X, Z), path(Z, Y).\n\
             end_module.\n"
        )
    }

    /// Transitive closure, left-linear.
    pub fn tc_left(annotations: &str, forms: &str) -> String {
        format!(
            "module tc.\nexport path({forms}).\n{annotations}\
             path(X, Y) :- edge(X, Y).\n\
             path(X, Y) :- path(X, Z), edge(Z, Y).\n\
             end_module.\n"
        )
    }

    /// Same generation.
    pub fn same_generation(annotations: &str) -> String {
        format!(
            "module sg.\nexport sg(bf).\n{annotations}\
             sg(X, Y) :- flat(X, Y).\n\
             sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
             end_module.\n"
        )
    }

    /// The Figure 3 shortest-path program, optionally without the
    /// min-selection (for bounded-divergence measurements).
    pub fn figure_3(with_selections: bool) -> String {
        let selections = if with_selections {
            "@aggregate_selection p(X, Y, P, C) (X, Y) min(C).\n\
             @aggregate_selection p(X, Y, P, C) (X, Y, C) any(P).\n"
        } else {
            ""
        };
        format!(
            "module s_p.\nexport s_p(bfff).\n{selections}\
             s_p(X, Y, P, C) :- s_p_length(X, Y, C), p(X, Y, P, C).\n\
             s_p_length(X, Y, min(C)) :- p(X, Y, P, C).\n\
             p(X, Y, P1, C1) :- p(X, Z, P, C), edge(Z, Y, EC),\n\
                                append([edge(Z, Y)], P, P1), C1 = C + EC.\n\
             p(X, Y, [edge(X, Y)], C) :- edge(X, Y, C).\n\
             end_module.\n"
        )
    }

    /// Figure 3 with the path witness dropped — costs only. Used for
    /// scaling runs where list building would dominate.
    pub fn shortest_cost(with_selection: bool) -> String {
        let sel = if with_selection {
            "@aggregate_selection p(X, Y, C) (X, Y) min(C).\n"
        } else {
            ""
        };
        format!(
            "module sc.\nexport sp(bff).\n{sel}\
             sp(X, Y, min(C)) :- p(X, Y, C).\n\
             p(X, Y, C1) :- p(X, Z, C), edge(Z, Y, EC), C1 = C + EC.\n\
             p(X, Y, C) :- edge(X, Y, C).\n\
             end_module.\n"
        )
    }

    /// The win-move game under ordered search.
    pub fn win_move() -> String {
        "module game.\nexport win(b).\n@ordered_search.\n\
         win(X) :- move(X, Y), not win(Y).\nend_module.\n"
            .to_string()
    }
}

/// Build a session preloaded with `facts` and `program`.
pub fn session_with(facts: &str, program: &str) -> Session {
    let s = Session::new();
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    s
}

/// Run a query and return the number of answers (panics on error — bench
/// workloads are known-good).
pub fn count_answers(session: &Session, q: &str) -> usize {
    session
        .query_all(q)
        .unwrap_or_else(|e| panic!("query {q}: {e}"))
        .len()
}

/// Wall-clock one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, std::time::Duration) {
    let t0 = std::time::Instant::now();
    let r = f();
    (r, t0.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_tc_counts() {
        let s = session_with(&workloads::chain(50), &programs::tc("", "bf, ff"));
        assert_eq!(count_answers(&s, "path(0, Y)"), 50);
        assert_eq!(count_answers(&s, "path(40, Y)"), 10);
    }

    #[test]
    fn costed_graph_shortest_costs() {
        let s = session_with(
            &workloads::random_costed_graph(24, 60, 7),
            &programs::shortest_cost(true),
        );
        let n = count_answers(&s, "sp(0, Y, C)");
        assert!(n >= 23, "all nodes reachable from the spine: {n}");
    }

    #[test]
    fn same_gen_workload() {
        let s = session_with(&workloads::same_gen(4, 8), &programs::same_generation(""));
        assert!(count_answers(&s, "sg(0, Y)") > 0);
    }

    #[test]
    fn mutual_recursion_workload() {
        for fix in ["bsn", "psn"] {
            let s = session_with(
                &workloads::chain(20),
                &workloads::mutual_recursion_module(4, fix),
            );
            assert_eq!(count_answers(&s, "p0(0, Y)"), 20, "{fix}");
        }
    }

    #[test]
    fn game_graph_is_acyclic_and_playable() {
        let s = session_with(&workloads::game_graph(30, 3), &programs::win_move());
        // Positions alternate along the chain; just require evaluability.
        let _ = count_answers(&s, "win(0)");
        let _ = count_answers(&s, "win(1)");
    }

    #[test]
    fn figure_3_template_parses_both_ways() {
        let s = session_with(
            "edge(a, b, 1). edge(b, a, 1). edge(b, c, 2).",
            &programs::figure_3(true),
        );
        assert_eq!(count_answers(&s, "s_p(a, Y, P, C)"), 3);
    }
}
