//! Check the E20 acceptance criterion against a
//! `BENCH_columnar_seminaive.json` report: on the all-ground
//! transitive-closure workloads the columnar rows must show at least 3×
//! fewer `term.unify_attempts` and `term.bindenv_allocs` than the
//! legacy rows, and the `core.batched_rows` counter must confirm the
//! fast path engaged (and stayed out of the legacy rows).
//!
//! Usage: `check_columnar [path/to/BENCH_columnar_seminaive.json]`
//! (default `BENCH_columnar_seminaive.json` in the current directory).
//! Exits nonzero with a diagnostic when any ratio falls short. A report
//! without counters (the `profile` feature compiled out) passes
//! vacuously — there is nothing to check.

use coral_core::profile::json::{self, Val};
use std::process::ExitCode;

/// Workloads the ≥3× reduction is asserted on. `sg` and
/// `path_functors` are reported but not gated: the three-way join and
/// the side-table fallback make their ratios structurally smaller.
const GATED: [&str; 2] = ["tc_left", "tc_right"];
const COUNTERS: [&str; 2] = ["term.unify_attempts", "term.bindenv_allocs"];
const MIN_RATIO: f64 = 3.0;

fn counter(counters: &[(String, Val)], key: &str) -> u64 {
    json::get_u64(counters, key).unwrap_or(0)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_columnar_seminaive.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_columnar: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check_columnar: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(obj) = root.as_obj() else {
        eprintln!("check_columnar: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    // Reports must carry the host/configuration meta header; a
    // meta-less file predates the header and is not comparable.
    if json::get(obj, "meta").ok().and_then(Val::as_obj).is_none() {
        eprintln!("check_columnar: {path}: missing \"meta\" header (regenerate the report)");
        return ExitCode::FAILURE;
    }
    let benchmarks: Vec<&[(String, Val)]> = json::get(obj, "benchmarks")
        .ok()
        .and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(Val::as_obj).collect())
        .unwrap_or_default();
    let row = |id: &str| -> Option<&[(String, Val)]> {
        benchmarks
            .iter()
            .copied()
            .find(|b| json::get_str(b, "id").is_ok_and(|s| s == id))
    };
    let counters_of = |id: &str| -> Option<&[(String, Val)]> {
        json::get(row(id)?, "counters").ok().and_then(Val::as_obj)
    };

    if benchmarks.iter().all(|b| {
        json::get(b, "counters")
            .ok()
            .and_then(Val::as_obj)
            .is_none_or(<[_]>::is_empty)
    }) {
        println!("check_columnar: {path} has no counters (profile feature compiled out); nothing to check");
        return ExitCode::SUCCESS;
    }

    let mut failures = Vec::new();
    let workloads: Vec<String> = benchmarks
        .iter()
        .filter_map(|b| json::get_str(b, "id").ok())
        .filter_map(|id| id.strip_suffix("/columnar").map(str::to_string))
        .collect();
    for w in &workloads {
        let (Some(c), Some(l)) = (
            counters_of(&format!("{w}/columnar")),
            counters_of(&format!("{w}/legacy")),
        ) else {
            failures.push(format!("{w}: missing columnar or legacy row"));
            continue;
        };
        let gated = GATED.contains(&w.as_str());
        if counter(c, "core.batched_rows") == 0 {
            failures.push(format!("{w}: columnar row counted no batched rows"));
        }
        if counter(l, "core.batched_rows") != 0 {
            failures.push(format!("{w}: legacy row counted batched rows"));
        }
        // Counter totals accumulate over warm-up + samples, and the two
        // rows may run different iteration counts; normalize by
        // `core.get_next_tuple` (one bump per answer delivered, so
        // proportional to iterations) before comparing.
        let (cn, ln) = (
            counter(c, "core.get_next_tuple"),
            counter(l, "core.get_next_tuple"),
        );
        for key in COUNTERS {
            let (cv, lv) = (counter(c, key), counter(l, key));
            let ratio = if cn > 0 && ln > 0 {
                (lv as f64 / ln as f64) / (cv as f64 / cn as f64).max(f64::MIN_POSITIVE)
            } else {
                lv as f64 / (cv as f64).max(f64::MIN_POSITIVE)
            };
            let verdict = if !gated {
                "reported"
            } else if ratio >= MIN_RATIO {
                "ok"
            } else {
                failures.push(format!(
                    "{w}: {key} reduction {ratio:.2}x < {MIN_RATIO}x (legacy {lv}, columnar {cv})"
                ));
                "FAIL"
            };
            println!("{w}: {key} legacy {lv} columnar {cv} ({ratio:.2}x) {verdict}");
        }
    }
    for w in GATED {
        if !workloads.iter().any(|x| x == w) {
            failures.push(format!("{w}: workload missing from report"));
        }
    }
    if failures.is_empty() {
        println!("check_columnar: all gated reductions >= {MIN_RATIO}x");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check_columnar: {f}");
        }
        ExitCode::FAILURE
    }
}
