//! Regenerate the EXPERIMENTS.md tables: one section per experiment
//! E1–E14 from DESIGN.md, each covering a performance claim in the CORAL
//! paper's text (the paper has no quantitative tables of its own).
//!
//! Run with `cargo run --release -p coral-bench --bin experiments`.

use coral_bench::{count_answers, programs, session_with, time, workloads};
use coral_core::save_module::saved_stats;
use coral_core::session::Session;
use coral_lang::PredRef;
use coral_rel::{HashRelation, IndexSpec, PersistentRelation, Relation};
use coral_storage::StorageServer;
use coral_term::{hashcons, EnvSet, Term, Tuple};
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

fn us(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e6)
}

/// Derivation statistics of a save-module after its queries ran.
fn derivations(s: &Session, pred: &str, arity: usize) -> (u64, u64, u64) {
    let mdef = s.engine().module_of(PredRef::new(pred, arity)).unwrap();
    let stats = saved_stats(&mdef);
    let iters: u64 = stats.iter().map(|x| x.iterations).sum();
    let firings: u64 = stats.iter().map(|x| x.rule_firings).sum();
    let facts: u64 = stats.iter().map(|x| x.facts_derived).sum();
    (iters, firings, facts)
}

/// Cost-only recursive path module with optional min-selection; no
/// aggregate heads, so it can carry @save_module for fact counting.
fn pcost_module(with_selection: bool) -> String {
    let sel = if with_selection {
        "@aggregate_selection p(X, Y, C) (X, Y) min(C).\n"
    } else {
        ""
    };
    format!(
        "module pmod.\nexport p(bff).\n@save_module.\n{sel}\
         p(X, Y, C1) :- p(X, Z, C), edge(Z, Y, EC), C1 = C + EC.\n\
         p(X, Y, C) :- edge(X, Y, C).\n\
         end_module.\n"
    )
}

fn e01_shortest_path() {
    println!("## E1 — Figure 3: aggregate selections make shortest path terminate (§5.5.2)\n");
    println!("Single-source `s_p(src, Y, P, C)` on random cyclic graphs, E = 4V.\n");
    println!("| V | E | answers | Fig. 3 with witnesses (ms) | cost-only single source (ms) | p-facts kept |");
    println!("|---|---|---------|----------------------------|------------------------------|--------------|");
    for v in [32usize, 64, 128, 256] {
        let e = 4 * v;
        let facts = workloads::random_costed_graph(v, e, 0xE1);
        let s = session_with(&facts, &programs::figure_3(true));
        let (n, d) = time(|| count_answers(&s, "s_p(0, Y, P, C)"));
        // The O(E*V) claim is about the path-length computation: time the
        // cost-only module (single source via magic) and count its facts.
        let s2 = session_with(&facts, &pcost_module(true));
        let (_, d2) = time(|| count_answers(&s2, "p(0, Y, C)"));
        let (_, _, kept) = derivations(&s2, "p", 3);
        println!("| {v} | {e} | {n} | {} | {} | {kept} |", ms(d), ms(d2));
    }
    println!();
    println!(
        "Without the `min(C)` selection the recursive rule generates cyclic paths of\n\
         increasing length and the program diverges (the paper: \"without it the program\n\
         may run for ever\"); on an acyclic 3-layer lattice the no-selection variant\n\
         still enumerates every simple path:\n"
    );
    println!("| layers×width | p-facts with min(C) | p-facts without | blowup |");
    println!("|--------------|---------------------|-----------------|--------|");
    for w in [4usize, 6, 8] {
        // A layered DAG with w^2 alternative paths per layer pair.
        let mut facts = String::new();
        for layer in 0..3 {
            for a in 0..w {
                for b in 0..w {
                    facts.push_str(&format!(
                        "edge(n{layer}_{a}, n{}_{b}, {}).\n",
                        layer + 1,
                        1 + (a * 3 + b * 5) % 9
                    ));
                }
            }
        }
        let run = |with_sel: bool| {
            let s = session_with(&facts, &pcost_module(with_sel));
            count_answers(&s, "p(n0_0, Y, C)");
            derivations(&s, "p", 3).2
        };
        let with = run(true);
        let without = run(false);
        println!(
            "| 4×{w} | {with} | {without} | {:.1}× |",
            without as f64 / with as f64
        );
    }
    println!();
}

fn e02_magic_vs_naive() {
    println!("## E2 — magic rewriting propagates query selections (§4.1)\n");
    println!("`path(bf)` on a chain of N edges, query bound near the end (suffix of 16).\n");
    println!("| N | supplementary magic (ms) | facts | no rewriting (ms) | facts | speedup |");
    println!("|---|--------------------------|-------|-------------------|-------|---------|");
    for n in [256usize, 512, 1024, 2048] {
        let facts = workloads::chain(n);
        let src = n - 16;
        let run = |ann: &str| {
            let s = session_with(
                &facts,
                &programs::tc(&format!("@save_module.\n{ann}"), "bf"),
            );
            let (cnt, d) = time(|| count_answers(&s, &format!("path({src}, Y)")));
            assert_eq!(cnt, 16);
            (d, derivations(&s, "path", 2).2)
        };
        let (magic, mf) = run("");
        let (none, nf) = run("@rewrite none.\n");
        println!(
            "| {n} | {} | {mf} | {} | {nf} | {:.1}× |",
            ms(magic),
            ms(none),
            none.as_secs_f64() / magic.as_secs_f64()
        );
    }
    println!();
}

fn e03_rewritings() {
    println!("## E3 — the rewriting menu: each superior somewhere (§4.1)\n");
    println!("Right-linear reachability `path(bf)`, chain of N = 1024 (suffix query), and");
    println!("same-generation `sg(bf)` on an 8-layer tree of width 64.\n");
    println!("| rewriting | right-linear reach (ms) | same generation (ms) |");
    println!("|-----------|-------------------------|----------------------|");
    let chain = workloads::chain(1024);
    let sg_data = workloads::same_gen(8, 64);
    for rw in ["supplementary", "magic", "goalid", "factoring"] {
        let ann = format!("@rewrite {rw}.\n");
        let s = session_with(&chain, &programs::tc(&ann, "bf"));
        let (_, d1) = time(|| count_answers(&s, "path(960, Y)"));
        let s2 = session_with(&sg_data, &programs::same_generation(&ann));
        let (_, d2) = time(|| count_answers(&s2, "sg(0, Y)"));
        println!("| {rw} | {} | {} |", ms(d1), ms(d2));
    }
    println!();
}

fn e04_bsn_vs_psn() {
    println!("## E4 — PSN beats BSN on many mutually recursive predicates (§4.2)\n");
    println!("k mutually recursive predicates over a chain of 64 edges, query `p0(0, Y)`.\n");
    println!("| k | BSN iterations | BSN time (ms) | PSN iterations | PSN time (ms) |");
    println!("|---|----------------|---------------|----------------|---------------|");
    for k in [2usize, 4, 8, 16] {
        let facts = workloads::chain(64);
        let run = |fix: &str| {
            let module = workloads::mutual_recursion_module(k, fix)
                .replace("export p0(bf).\n", "export p0(bf).\n@save_module.\n");
            let s = session_with(&facts, &module);
            let (_, d) = time(|| count_answers(&s, "p0(0, Y)"));
            (derivations(&s, "p0", 2).0, d)
        };
        let (bi, bd) = run("bsn");
        let (pi, pd) = run("psn");
        println!("| {k} | {bi} | {} | {pi} | {} |", ms(bd), ms(pd));
    }
    println!();
}

fn e05_pipeline_vs_mat() {
    println!("## E5 — pipelining returns answers on the fly (§5.2, §5.6)\n");
    println!("`path(bf)` on a chain of N edges, query at the head of the chain.\n");
    println!("| N | pipelined 1st answer (µs) | pipelined all (ms) | materialized 1st answer (ms) | materialized all (ms) |");
    println!("|---|---------------------------|--------------------|------------------------------|-----------------------|");
    for n in [250usize, 500, 1000] {
        let facts = workloads::chain(n);
        let sp = session_with(&facts, &programs::tc("@pipelining.\n", "bf"));
        let (first_p, dp_first) = time(|| {
            let mut a = sp.query("path(0, Y)").unwrap();
            a.next_answer().unwrap().unwrap()
        });
        drop(first_p);
        let (_, dp_all) = time(|| count_answers(&sp, "path(0, Y)"));
        let sm = session_with(&facts, &programs::tc("", "bf"));
        let (_, dm_first) = time(|| {
            let mut a = sm.query("path(0, Y)").unwrap();
            a.next_answer().unwrap().unwrap()
        });
        let (_, dm_all) = time(|| count_answers(&sm, "path(0, Y)"));
        println!(
            "| {n} | {} | {} | {} | {} |",
            us(dp_first),
            ms(dp_all),
            ms(dm_first),
            ms(dm_all)
        );
    }
    println!();
}

fn e06_save_module() {
    println!("## E6 — the save-module facility avoids recomputation (§5.4.2)\n");
    println!("32 single-source queries into `path(bf)` on a chain of 512, sources striding");
    println!("down the chain so every later query overlaps earlier subgoals.\n");
    let facts = workloads::chain(512);
    let sources: Vec<usize> = (0..32).map(|i| 512 - 16 * (i + 1)).collect();
    let run = |save: bool| {
        let ann = if save { "@save_module.\n" } else { "" };
        let s = session_with(&facts, &programs::tc(ann, "bf"));
        time(|| {
            let mut total = 0;
            for &src in &sources {
                total += count_answers(&s, &format!("path({src}, Y)"));
            }
            total
        })
    };
    let (n1, with) = run(true);
    let (n2, without) = run(false);
    assert_eq!(n1, n2);
    println!("| mode | total answers | time (ms) |");
    println!("|------|---------------|-----------|");
    println!("| @save_module | {n1} | {} |", ms(with));
    println!("| fresh state per call | {n2} | {} |", ms(without));
    println!(
        "\nSpeedup from retained state: {:.1}×\n",
        without.as_secs_f64() / with.as_secs_f64()
    );
}

fn e07_hashcons() {
    println!("## E7 — hash-consing makes unification of large terms cheap (§3.1)\n");
    println!("Unify two structurally equal lists of length L, 1000 repetitions.\n");
    println!("| L | structural unify total (ms) | after interning (ms) | speedup |");
    println!("|---|------------------------------|----------------------|---------|");
    for l in [16usize, 64, 256, 1024, 4096] {
        let mk = || Term::list((0..l as i64).map(Term::int).collect::<Vec<_>>());
        let (a, b) = (mk(), mk());
        let reps = 1000;
        let structural = time(|| {
            for _ in 0..reps {
                let mut envs = EnvSet::new();
                let e = envs.push_frame(0);
                assert!(coral_term::unify(&mut envs, &a, e, &b, e));
            }
        })
        .1;
        hashcons::intern(&a);
        hashcons::intern(&b);
        let interned = time(|| {
            for _ in 0..reps {
                let mut envs = EnvSet::new();
                let e = envs.push_frame(0);
                assert!(coral_term::unify(&mut envs, &a, e, &b, e));
            }
        })
        .1;
        println!(
            "| {l} | {} | {} | {:.0}× |",
            ms(structural),
            ms(interned),
            structural.as_secs_f64() / interned.as_secs_f64()
        );
    }
    println!();
}

fn e08_indexing() {
    println!("## E8 — argument- and pattern-form indices beat scans (§3.3, §5.5.1)\n");
    println!("1000 point lookups on an N-tuple `emp(Name, addr(Street, City))` relation.\n");
    println!(
        "| N | no index (ms) | argument index on Name (ms) | pattern index on (Name, City) (ms) |"
    );
    println!("|---|---------------|------------------------------|-------------------------------------|");
    for n in [1_000usize, 10_000, 100_000] {
        let build = || {
            let r = HashRelation::new(2);
            for i in 0..n {
                r.insert(Tuple::ground(vec![
                    Term::str(&format!("name{}", i % (n / 10))),
                    Term::apps(
                        "addr",
                        vec![
                            Term::str(&format!("street{i}")),
                            Term::str(&format!("city{}", i % 100)),
                        ],
                    ),
                ]))
                .unwrap();
            }
            r
        };
        let lookups = 1000usize;
        let probe = |r: &HashRelation, pattern_city: bool| {
            time(|| {
                let mut found = 0usize;
                for i in 0..lookups {
                    let name = Term::str(&format!("name{}", i % (n / 10)));
                    let q = if pattern_city {
                        vec![
                            name,
                            Term::apps(
                                "addr",
                                vec![Term::var(0), Term::str(&format!("city{}", i % 100))],
                            ),
                        ]
                    } else {
                        vec![name, Term::var(0)]
                    };
                    found += r.lookup(&q).count();
                }
                found
            })
            .1
        };
        let r0 = build();
        let scan_t = probe(&r0, false);
        let r1 = build();
        r1.make_index(IndexSpec::Args(vec![0])).unwrap();
        let arg_t = probe(&r1, false);
        let r2 = build();
        r2.make_index(IndexSpec::Pattern {
            pattern: vec![
                Term::var(0),
                Term::apps("addr", vec![Term::var(1), Term::var(2)]),
            ],
            key_vars: vec![coral_term::VarId(0), coral_term::VarId(2)],
        })
        .unwrap();
        let pat_t = probe(&r2, true);
        println!("| {n} | {} | {} | {} |", ms(scan_t), ms(arg_t), ms(pat_t));
    }
    println!();
}

fn e09_storage() {
    println!("## E9 — persistent data pages through the buffer pool on demand (§2, §3.2)\n");
    println!("Full scan of a 20 000-tuple persistent relation under varying pool sizes,");
    println!("cold (evicted) then warm.\n");
    println!("| pool frames | cold scan (ms) | cold misses | warm scan (ms) | warm hit rate |");
    println!("|-------------|----------------|-------------|----------------|---------------|");
    for frames in [8usize, 64, 1024] {
        let dir = std::env::temp_dir().join(format!("coral-e09-{}-{frames}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = StorageServer::open(&dir, frames).unwrap();
        let rel = PersistentRelation::open(&srv, "big", 2).unwrap();
        for i in 0..20_000i64 {
            rel.insert(Tuple::ground(vec![
                Term::int(i),
                Term::str(&format!("payload-{i}")),
            ]))
            .unwrap();
        }
        srv.checkpoint().unwrap();
        srv.pool().evict_all().unwrap();
        srv.reset_stats();
        let (c1, cold) = time(|| rel.scan().count());
        let cold_stats = srv.stats();
        srv.reset_stats();
        let (c2, warm) = time(|| rel.scan().count());
        let warm_stats = srv.stats();
        assert_eq!(c1, 20_000);
        assert_eq!(c2, 20_000);
        let hit_rate = warm_stats.hits as f64 / (warm_stats.hits + warm_stats.misses).max(1) as f64;
        println!(
            "| {frames} | {} | {} | {} | {:.0}% |",
            ms(cold),
            cold_stats.misses,
            ms(warm),
            hit_rate * 100.0
        );
    }
    println!();
}

fn e10_ordered_search() {
    println!("## E10 — Ordered Search evaluates modularly stratified negation (§5.4.1)\n");
    println!("The win-move game on acyclic graphs of N positions, query `win(0)`.\n");
    println!("| N | time (ms) | winning? |");
    println!("|---|-----------|----------|");
    for n in [50usize, 100, 200, 400] {
        let s = session_with(&workloads::game_graph(n, 0xE10), &programs::win_move());
        let (won, d) = time(|| count_answers(&s, "win(0)") > 0);
        println!("| {n} | {} | {won} |", ms(d));
    }
    println!();
}

fn e11_lazy() {
    println!("## E11 — lazy evaluation returns answers at iteration boundaries (§5.4.3)\n");
    println!("`path(bf)` on a chain of N; time until the first answer is in hand.\n");
    println!(
        "| N | lazy 1st answer (µs) | eager 1st answer (ms) | lazy all (ms) | eager all (ms) |"
    );
    println!(
        "|---|----------------------|------------------------|---------------|----------------|"
    );
    for n in [250usize, 500, 1000] {
        let facts = workloads::chain(n);
        let sl = session_with(&facts, &programs::tc("@lazy.\n", "bf"));
        let (_, dl_first) = time(|| {
            let mut a = sl.query("path(0, Y)").unwrap();
            a.next_answer().unwrap().unwrap()
        });
        let (_, dl_all) = time(|| count_answers(&sl, "path(0, Y)"));
        let se = session_with(&facts, &programs::tc("", "bf"));
        let (_, de_first) = time(|| {
            let mut a = se.query("path(0, Y)").unwrap();
            a.next_answer().unwrap().unwrap()
        });
        let (_, de_all) = time(|| count_answers(&se, "path(0, Y)"));
        println!(
            "| {n} | {} | {} | {} | {} |",
            us(dl_first),
            ms(de_first),
            ms(dl_all),
            ms(de_all)
        );
    }
    println!();
}

fn e12_existential() {
    println!("## E12 — existential rewriting pushes projections (§4.1)\n");
    println!("Right-linear `path(ff)` over a chain of N with `?- path(X, _)` (don't-care");
    println!("output) versus `?- path(X, Y)` (full output).\n");
    println!("| N | `path(X, _)` time (ms) | facts | `path(X, Y)` time (ms) | facts |");
    println!("|---|------------------------|-------|------------------------|-------|");
    for n in [128usize, 256, 512] {
        let facts = workloads::chain(n);
        let run = |q: &str| {
            let s = session_with(&facts, &programs::tc("@save_module.\n", "ff"));
            let (_, d) = time(|| count_answers(&s, q));
            (d, derivations(&s, "path", 2).2)
        };
        let (d1, f1) = run("path(X, _)");
        let (d2, f2) = run("path(X, Y)");
        println!("| {n} | {} | {f1} | {} | {f2} |", ms(d1), ms(d2));
    }
    println!();
}

fn e13_seminaive_vs_naive() {
    println!("## E13 — semi-naive avoids naive recomputation (§5.3)\n");
    println!("Left-linear `path(ff)` (full closure) on a chain of N edges.\n");
    println!("| N | BSN time (ms) | BSN firings | naive time (ms) | naive firings | speedup |");
    println!("|---|---------------|-------------|------------------|---------------|---------|");
    for n in [48usize, 96, 192] {
        let facts = workloads::chain(n);
        let run = |fix: &str| {
            let s = session_with(
                &facts,
                &programs::tc_left(&format!("@save_module.\n@{fix}.\n"), "ff"),
            );
            let (cnt, d) = time(|| count_answers(&s, "path(X, Y)"));
            assert_eq!(cnt, n * (n + 1) / 2);
            (d, derivations(&s, "path", 2).1)
        };
        let (bd, bf) = run("bsn");
        let (nd, nf) = run("naive");
        println!(
            "| {n} | {} | {bf} | {} | {nf} | {:.1}× |",
            ms(bd),
            ms(nd),
            nd.as_secs_f64() / bd.as_secs_f64()
        );
    }
    println!();
}

fn e14_duplicates() {
    println!("## E14 — set vs multiset semantics (§4.2)\n");
    println!("Projection `two(Y) :- e(X, Y)` where every Y has K derivations.\n");
    println!(
        "| K (copies) | set answers | set time (ms) | multiset answers | multiset time (ms) |"
    );
    println!(
        "|------------|-------------|----------------|-------------------|---------------------|"
    );
    for k in [4usize, 16, 64] {
        let mut facts = String::new();
        let groups = 2000;
        for y in 0..groups {
            for x in 0..k {
                facts.push_str(&format!("e({x}, {y}).\n"));
            }
        }
        let run = |multiset: bool| {
            let ann = if multiset { "@multiset two/1.\n" } else { "" };
            let s = session_with(
                &facts,
                &format!("module m.\nexport two(f).\n{ann}two(Y) :- e(X, Y).\nend_module.\n"),
            );
            time(|| count_answers(&s, "two(Y)"))
        };
        let (sn, sd) = run(false);
        let (mn, md) = run(true);
        println!("| {k} | {sn} | {} | {mn} | {} |", ms(sd), ms(md));
    }
    println!();
}

fn e15_intelligent_backtracking() {
    println!("## E15 — ablation: intelligent backtracking (§4.2)\n");
    println!("Rule `p(X, Y) :- a(X, A), b(Y), c(X, B)` where c/2 rejects most X: on a");
    println!("failed c probe the join must jump over the independent b loop (size M).\n");
    println!("| M (b facts) | with IB (ms) | without IB (ms) | slowdown without |");
    println!("|-------------|--------------|------------------|------------------|");
    for m in [100usize, 400, 1600] {
        let mut facts = String::new();
        for i in 0..400 {
            facts.push_str(&format!("a({i}, 0).\n"));
        }
        for j in 0..m {
            facts.push_str(&format!("b({j}).\n"));
        }
        // Only a handful of X pass c.
        for i in (0..400).step_by(100) {
            facts.push_str(&format!("c({i}, 1).\n"));
        }
        let run = |ann: &str| {
            let s = session_with(
                &facts,
                &format!(
                    "module m.\nexport p(ff).\n{ann}\
                     p(X, Y) :- a(X, A), b(Y), c(X, B).\n\
                     end_module.\n"
                ),
            );
            time(|| count_answers(&s, "p(X, Y)")).1
        };
        let with = run("");
        let without = run("@no_intelligent_backtracking.\n");
        println!(
            "| {m} | {} | {} | {:.1}x |",
            ms(with),
            ms(without),
            without.as_secs_f64() / with.as_secs_f64()
        );
    }
    println!();
}

fn e16_auto_index() {
    println!("## E16 — ablation: automatic index selection (§4.2)\n");
    println!("Left-linear closure of a chain of N: the optimizer's index on path's");
    println!("first column turns each recursive probe from a scan into a hash lookup.\n");
    println!("| N | auto index (ms) | no auto index (ms) | slowdown without |");
    println!("|---|------------------|---------------------|------------------|");
    for n in [64usize, 128, 256] {
        let facts = workloads::chain(n);
        let run = |ann: &str| {
            let s = session_with(&facts, &programs::tc_left(ann, "ff"));
            time(|| count_answers(&s, "path(X, Y)")).1
        };
        let with = run("");
        let without = run("@no_auto_index.\n");
        println!(
            "| {n} | {} | {} | {:.1}x |",
            ms(with),
            ms(without),
            without.as_secs_f64() / with.as_secs_f64()
        );
    }
    println!();
}

fn e17_consult_speed() {
    println!("## E17 — consulting is fast (§2)\n");
    println!("\"'Consulting' a program takes very little time, and is comparable to");
    println!("Prolog systems\" — facts parse into indexed in-memory relations:\n");
    println!("| facts | consult time (ms) | facts/ms |");
    println!("|-------|--------------------|----------|");
    for n in [10_000usize, 50_000, 100_000] {
        let facts = workloads::chain(n);
        let s = Session::new();
        let (_, d) = time(|| s.consult_str(&facts).unwrap());
        println!(
            "| {n} | {} | {:.0} |",
            ms(d),
            n as f64 / (d.as_secs_f64() * 1e3)
        );
    }
    println!();
}

fn e18_join_order() {
    println!("## E18 — optimizer join-order selection (§4.2)\n");
    println!("`p(X, Z) :- big(Y, Z), sel(X, Y)` with the selective literal written");
    println!("second; `@reorder_joins` runs it first, making `big` an indexed probe.\n");
    println!("| big facts | source order (ms) | reordered (ms) | speedup |");
    println!("|-----------|--------------------|-----------------|---------|");
    for n in [2_000usize, 8_000, 32_000] {
        let mut facts = String::new();
        let width = 20;
        for i in 0..(n / width) {
            for j in 0..width {
                facts.push_str(&format!("big({i}, {j}).\n"));
            }
        }
        facts.push_str("sel(k, 7).\n");
        let run = |ann: &str| {
            let s = session_with(
                &facts,
                &format!(
                    "module m.\nexport p(bf).\n{ann}\
                     p(X, Z) :- big(Y, Z), sel(X, Y).\n\
                     end_module.\n"
                ),
            );
            time(|| count_answers(&s, "p(k, Z)")).1
        };
        let plain = run("");
        let reordered = run("@reorder_joins.\n");
        println!(
            "| {n} | {} | {} | {:.1}x |",
            ms(plain),
            ms(reordered),
            plain.as_secs_f64() / reordered.as_secs_f64()
        );
    }
    println!();
}

fn main() {
    println!("# CORAL reproduction — experiment results\n");
    println!(
        "Generated by `cargo run --release -p coral-bench --bin experiments`.\n\
         Absolute numbers depend on the host; the paper's claims are about *shape*\n\
         (who wins, how things scale). Each section names the claim it exercises.\n"
    );
    e01_shortest_path();
    e02_magic_vs_naive();
    e03_rewritings();
    e04_bsn_vs_psn();
    e05_pipeline_vs_mat();
    e06_save_module();
    e07_hashcons();
    e08_indexing();
    e09_storage();
    e10_ordered_search();
    e11_lazy();
    e12_existential();
    e13_seminaive_vs_naive();
    e14_duplicates();
    e15_intelligent_backtracking();
    e16_auto_index();
    e17_consult_speed();
    e18_join_order();
}
