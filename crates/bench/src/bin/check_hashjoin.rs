//! Check the E23 acceptance criterion against a `BENCH_hashjoin.json`
//! report: on the all-ground `tc_right` and `sg` workloads the
//! hash-join rows must show at least 3× fewer `rel.index_probes` than
//! the index rows, the `core.joinhash_tables_built` counter must
//! confirm the path engaged (and stayed out of the index rows), and at
//! least one gated workload must record `core.joinhash_bloom_skips > 0`
//! so the Bloom sideways-information-passing filter is proven live.
//!
//! Usage: `check_hashjoin [path/to/BENCH_hashjoin.json]` (default
//! `BENCH_hashjoin.json` in the current directory). Exits nonzero with
//! a diagnostic when any ratio falls short. A report without counters
//! (the `profile` feature compiled out) passes vacuously — there is
//! nothing to check.

use coral_core::profile::json::{self, Val};
use std::process::ExitCode;

/// Workloads the ≥3× reduction is asserted on. `tc_left` and
/// `tc_parallel` are reported but not gated: the open-pattern batch
/// drive and worker-side chunk relations keep most of their probes off
/// the inner-literal index path already.
const GATED: [&str; 2] = ["tc_right", "sg"];
const COUNTER: &str = "rel.index_probes";
const MIN_RATIO: f64 = 3.0;

fn counter(counters: &[(String, Val)], key: &str) -> u64 {
    json::get_u64(counters, key).unwrap_or(0)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_hashjoin.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_hashjoin: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check_hashjoin: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(obj) = root.as_obj() else {
        eprintln!("check_hashjoin: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    // Reports must carry the host/configuration meta header; a
    // meta-less file predates the header and is not comparable.
    if json::get(obj, "meta").ok().and_then(Val::as_obj).is_none() {
        eprintln!("check_hashjoin: {path}: missing \"meta\" header (regenerate the report)");
        return ExitCode::FAILURE;
    }
    let benchmarks: Vec<&[(String, Val)]> = json::get(obj, "benchmarks")
        .ok()
        .and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(Val::as_obj).collect())
        .unwrap_or_default();
    let row = |id: &str| -> Option<&[(String, Val)]> {
        benchmarks
            .iter()
            .copied()
            .find(|b| json::get_str(b, "id").is_ok_and(|s| s == id))
    };
    let counters_of = |id: &str| -> Option<&[(String, Val)]> {
        json::get(row(id)?, "counters").ok().and_then(Val::as_obj)
    };

    if benchmarks.iter().all(|b| {
        json::get(b, "counters")
            .ok()
            .and_then(Val::as_obj)
            .is_none_or(<[_]>::is_empty)
    }) {
        println!(
            "check_hashjoin: {path} has no counters (profile feature compiled out); nothing to check"
        );
        return ExitCode::SUCCESS;
    }

    let mut failures = Vec::new();
    let mut gated_bloom_skips = 0u64;
    let workloads: Vec<String> = benchmarks
        .iter()
        .filter_map(|b| json::get_str(b, "id").ok())
        .filter_map(|id| id.strip_suffix("/hashjoin").map(str::to_string))
        .collect();
    for w in &workloads {
        let (Some(h), Some(ix)) = (
            counters_of(&format!("{w}/hashjoin")),
            counters_of(&format!("{w}/index")),
        ) else {
            failures.push(format!("{w}: missing hashjoin or index row"));
            continue;
        };
        let gated = GATED.contains(&w.as_str());
        if gated && counter(h, "core.joinhash_tables_built") == 0 {
            failures.push(format!("{w}: hashjoin row built no tables"));
        }
        for key in [
            "core.joinhash_tables_built",
            "core.joinhash_probes",
            "core.joinhash_bloom_skips",
        ] {
            if counter(ix, key) != 0 {
                failures.push(format!("{w}: index row counted {key}"));
            }
        }
        if gated {
            gated_bloom_skips += counter(h, "core.joinhash_bloom_skips");
        }
        // Counter totals accumulate over warm-up + samples, and the two
        // rows may run different iteration counts; normalize by
        // `core.get_next_tuple` (one bump per answer delivered, so
        // proportional to iterations) before comparing.
        let (hn, ixn) = (
            counter(h, "core.get_next_tuple"),
            counter(ix, "core.get_next_tuple"),
        );
        // A fully absorbed probe stream leaves hv == 0; clamp to one
        // probe so the ratio stays finite and readable.
        let (hv, ixv) = (counter(h, COUNTER), counter(ix, COUNTER));
        let ratio = if hn > 0 && ixn > 0 {
            (ixv as f64 / ixn as f64) / (hv as f64 / hn as f64).max(1.0 / hn as f64)
        } else {
            ixv as f64 / (hv as f64).max(1.0)
        };
        let verdict = if !gated {
            "reported"
        } else if ratio >= MIN_RATIO {
            "ok"
        } else {
            failures.push(format!(
                "{w}: {COUNTER} reduction {ratio:.2}x < {MIN_RATIO}x (index {ixv}, hashjoin {hv})"
            ));
            "FAIL"
        };
        println!("{w}: {COUNTER} index {ixv} hashjoin {hv} ({ratio:.2}x) {verdict}");
    }
    for w in GATED {
        if !workloads.iter().any(|x| x == w) {
            failures.push(format!("{w}: workload missing from report"));
        }
    }
    if gated_bloom_skips == 0 && failures.is_empty() {
        failures.push(
            "no gated workload recorded a Bloom-filter skip — sideways passing unexercised"
                .to_string(),
        );
    }
    if failures.is_empty() {
        println!(
            "check_hashjoin: all gated reductions >= {MIN_RATIO}x \
             ({gated_bloom_skips} bloom skips on gated workloads)"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check_hashjoin: {f}");
        }
        ExitCode::FAILURE
    }
}
