//! Check the E21 acceptance criterion against a `BENCH_plan_skew.json`
//! report: on the skewed non-recursive join the cost-based rows must
//! show at least 3× fewer `core.join_probes` and `term.unify_attempts`
//! than the static rows, the `core.plan_reordered` counter must confirm
//! the planner engaged (and stayed out of the static rows), and the
//! recursive `tc_skew` workload must show `core.plan_replans > 0` —
//! the adaptive re-coster fired between fixpoint iterations.
//!
//! Usage: `check_plan [path/to/BENCH_plan_skew.json]` (default
//! `BENCH_plan_skew.json` in the current directory). Exits nonzero with
//! a diagnostic when any check fails. A report without counters (the
//! `profile` feature compiled out) passes vacuously — there is nothing
//! to check.

use coral_core::profile::json::{self, Val};
use std::process::ExitCode;

/// Workloads the ≥3× reduction is asserted on. `tc_skew` is reported
/// but not ratio-gated (the recursive join's totals are dominated by
/// delta sizes, not order); it gates `plan_replans` instead.
const GATED: [&str; 1] = ["skew_join"];
/// `core.join_probes` counts join candidates and is the gated
/// reduction; `term.unify_attempts` is reported but not gated — with
/// the columnar fast path on, ground candidates are decided by column
/// equality and both rows legitimately read zero.
const GATED_COUNTERS: [&str; 1] = ["core.join_probes"];
const REPORTED_COUNTERS: [&str; 1] = ["term.unify_attempts"];
const MIN_RATIO: f64 = 3.0;

fn counter(counters: &[(String, Val)], key: &str) -> u64 {
    json::get_u64(counters, key).unwrap_or(0)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_plan_skew.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_plan: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check_plan: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(obj) = root.as_obj() else {
        eprintln!("check_plan: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    // Reports must carry the host/configuration meta header; a
    // meta-less file predates the header and is not comparable.
    if json::get(obj, "meta").ok().and_then(Val::as_obj).is_none() {
        eprintln!("check_plan: {path}: missing \"meta\" header (regenerate the report)");
        return ExitCode::FAILURE;
    }
    let benchmarks: Vec<&[(String, Val)]> = json::get(obj, "benchmarks")
        .ok()
        .and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(Val::as_obj).collect())
        .unwrap_or_default();
    let row = |id: &str| -> Option<&[(String, Val)]> {
        benchmarks
            .iter()
            .copied()
            .find(|b| json::get_str(b, "id").is_ok_and(|s| s == id))
    };
    let counters_of = |id: &str| -> Option<&[(String, Val)]> {
        json::get(row(id)?, "counters").ok().and_then(Val::as_obj)
    };

    if benchmarks.iter().all(|b| {
        json::get(b, "counters")
            .ok()
            .and_then(Val::as_obj)
            .is_none_or(<[_]>::is_empty)
    }) {
        println!(
            "check_plan: {path} has no counters (profile feature compiled out); nothing to check"
        );
        return ExitCode::SUCCESS;
    }

    let mut failures = Vec::new();
    let workloads: Vec<String> = benchmarks
        .iter()
        .filter_map(|b| json::get_str(b, "id").ok())
        .filter_map(|id| id.strip_suffix("/cost").map(str::to_string))
        .collect();
    for w in &workloads {
        let (Some(c), Some(l)) = (
            counters_of(&format!("{w}/cost")),
            counters_of(&format!("{w}/static")),
        ) else {
            failures.push(format!("{w}: missing cost or static row"));
            continue;
        };
        let gated = GATED.contains(&w.as_str());
        if counter(c, "core.plan_costed") == 0 {
            failures.push(format!("{w}: cost row never costed a rule"));
        }
        if counter(l, "core.plan_costed") + counter(l, "core.plan_reordered") != 0 {
            failures.push(format!("{w}: static row touched the planner"));
        }
        if w == "skew_join" && counter(c, "core.plan_reordered") == 0 {
            failures.push(format!(
                "{w}: planner never reordered the skewed join — the gate is vacuous"
            ));
        }
        if w == "tc_skew" && counter(c, "core.plan_replans") == 0 {
            failures.push(format!(
                "{w}: no mid-fixpoint replan — the adaptive re-coster never fired"
            ));
        }
        // Counter totals accumulate over warm-up + samples, and the two
        // rows may run different iteration counts; normalize by
        // `core.get_next_tuple` (one bump per answer delivered, so
        // proportional to iterations) before comparing.
        let (cn, ln) = (
            counter(c, "core.get_next_tuple"),
            counter(l, "core.get_next_tuple"),
        );
        for key in GATED_COUNTERS.iter().chain(REPORTED_COUNTERS.iter()) {
            let (cv, lv) = (counter(c, key), counter(l, key));
            let ratio = if cn > 0 && ln > 0 {
                (lv as f64 / ln as f64) / (cv as f64 / cn as f64).max(f64::MIN_POSITIVE)
            } else {
                lv as f64 / (cv as f64).max(f64::MIN_POSITIVE)
            };
            let verdict = if !gated || !GATED_COUNTERS.contains(key) {
                "reported"
            } else if ratio >= MIN_RATIO {
                "ok"
            } else {
                failures.push(format!(
                    "{w}: {key} reduction {ratio:.2}x < {MIN_RATIO}x (static {lv}, cost {cv})"
                ));
                "FAIL"
            };
            println!("{w}: {key} static {lv} cost {cv} ({ratio:.2}x) {verdict}");
        }
    }
    for w in GATED.iter().chain(["tc_skew"].iter()) {
        if !workloads.iter().any(|x| x == w) {
            failures.push(format!("{w}: workload missing from report"));
        }
    }
    if failures.is_empty() {
        println!("check_plan: all gated reductions >= {MIN_RATIO}x and the re-coster fired");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check_plan: {f}");
        }
        ExitCode::FAILURE
    }
}
