//! Check the E24 acceptance criterion against a
//! `BENCH_txn_concurrency.json` report: under MVCC, the indexed reader
//! must keep its throughput while a writer thread bulk-loads the same
//! relation — `reader_under_bulkload/mvcc` may take at most
//! [`MAX_SLOWDOWN`]× the median of `reader_baseline/mvcc`. The legacy
//! `rwlock` rows are reported for comparison but not gated (how hard
//! the shared lock stalls readers depends on scheduling). When profile
//! counters are present, every reader row must also show buffer-pool
//! traffic, proving the lookups really went through storage.
//!
//! Usage: `check_txn [path/to/BENCH_txn_concurrency.json]` (default
//! `BENCH_txn_concurrency.json` in the current directory). Exits
//! nonzero with a diagnostic when the bound is exceeded.

use coral_core::profile::json::{self, Val};
use std::process::ExitCode;

const MODES: [&str; 2] = ["mvcc", "rwlock"];

/// Slowdown budget for the MVCC reader under load. Snapshot readers
/// take no relation lock, so the remaining slowdown sources are shared
/// CPU with the loader thread and buffer-pool latching — generously
/// bounded, while a reader serialized behind a bulk load blows far past
/// it (the loader holds the lock for whole batches).
const MAX_SLOWDOWN: f64 = 4.0;

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_txn_concurrency.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_txn: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check_txn: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(obj) = root.as_obj() else {
        eprintln!("check_txn: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    // Reports must carry the host/configuration meta header; a
    // meta-less file predates the header and is not comparable.
    if json::get(obj, "meta").ok().and_then(Val::as_obj).is_none() {
        eprintln!("check_txn: {path}: missing \"meta\" header (regenerate the report)");
        return ExitCode::FAILURE;
    }
    let benchmarks: Vec<&[(String, Val)]> = json::get(obj, "benchmarks")
        .ok()
        .and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(Val::as_obj).collect())
        .unwrap_or_default();
    let row = |id: &str| -> Option<&[(String, Val)]> {
        benchmarks
            .iter()
            .copied()
            .find(|b| json::get_str(b, "id").is_ok_and(|s| s == id))
    };
    let have_counters = benchmarks.iter().any(|b| {
        json::get(b, "counters")
            .ok()
            .and_then(Val::as_obj)
            .is_some_and(|c| !c.is_empty())
    });

    let mut failures = Vec::new();
    for mode in MODES {
        let ids = [
            format!("reader_baseline/{mode}"),
            format!("reader_under_bulkload/{mode}"),
        ];
        let mut medians = [0u64; 2];
        for (i, id) in ids.iter().enumerate() {
            let Some(b) = row(id) else {
                failures.push(format!("{id}: row missing from report"));
                continue;
            };
            medians[i] = json::get_u64(b, "median_ns").unwrap_or(0);
            if medians[i] == 0 {
                failures.push(format!("{id}: zero or missing median_ns"));
            }
            // Thread-local counters cover the measured (reader) thread:
            // real lookups must have touched the buffer pool.
            if have_counters {
                let hits = json::get(b, "counters")
                    .ok()
                    .and_then(Val::as_obj)
                    .and_then(|c| json::get_u64(c, "storage.pool_hits").ok())
                    .unwrap_or(0);
                if hits == 0 {
                    failures.push(format!("{id}: no buffer-pool traffic on the reader thread"));
                }
            }
        }
        let [base, load] = medians;
        if base == 0 || load == 0 {
            continue;
        }
        let slowdown = load as f64 / base as f64;
        let verdict = if mode != "mvcc" {
            "reported"
        } else if slowdown <= MAX_SLOWDOWN {
            "ok"
        } else {
            failures.push(format!(
                "{mode}: reader slowed {slowdown:.2}x under the bulk load \
                 (budget {MAX_SLOWDOWN}x, baseline {base}ns, loaded {load}ns)"
            ));
            "FAIL"
        };
        println!(
            "{mode}: reader baseline {base}ns, under bulk load {load}ns ({slowdown:.2}x) {verdict}"
        );
    }
    if failures.is_empty() {
        println!("check_txn: MVCC reader stays within {MAX_SLOWDOWN}x of baseline under bulk load");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check_txn: {f}");
        }
        ExitCode::FAILURE
    }
}
