//! Check the E22 acceptance criterion against a
//! `BENCH_maintain_churn.json` report: on every churn workload the
//! maintained rows must show at least 10× fewer `core.join_probes` per
//! answer delivered than the recompute rows, the
//! `core.maintain_propagated` counter must confirm the maintenance
//! machinery actually ran (and stayed out of the recompute rows), and
//! the strategy-specific counters must show each strategy engaged:
//! `core.maintain_count_updates > 0` on the counting workload,
//! `core.maintain_overdeleted > 0` on the DRed one.
//!
//! Usage: `check_maintain [path/to/BENCH_maintain_churn.json]` (default
//! `BENCH_maintain_churn.json` in the current directory). Exits nonzero
//! with a diagnostic when any check fails. A report without counters
//! (the `profile` feature compiled out) passes vacuously — there is
//! nothing to check.

use coral_core::profile::json::{self, Val};
use std::process::ExitCode;

const GATED_COUNTER: &str = "core.join_probes";
const MIN_RATIO: f64 = 10.0;
/// Workload → the strategy counter that must be nonzero on its
/// maintained row, or the gate is measuring a recompute fallback.
const ENGAGED: [(&str, &str); 2] = [
    ("tc_churn", "core.maintain_overdeleted"),
    ("hop_churn", "core.maintain_count_updates"),
];

fn counter(counters: &[(String, Val)], key: &str) -> u64 {
    json::get_u64(counters, key).unwrap_or(0)
}

fn main() -> ExitCode {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_maintain_churn.json".to_string());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check_maintain: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let root = match json::parse(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("check_maintain: {path} is not valid JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    let Some(obj) = root.as_obj() else {
        eprintln!("check_maintain: {path}: top level is not an object");
        return ExitCode::FAILURE;
    };
    // Reports must carry the host/configuration meta header; a
    // meta-less file predates the header and is not comparable.
    if json::get(obj, "meta").ok().and_then(Val::as_obj).is_none() {
        eprintln!("check_maintain: {path}: missing \"meta\" header (regenerate the report)");
        return ExitCode::FAILURE;
    }
    let benchmarks: Vec<&[(String, Val)]> = json::get(obj, "benchmarks")
        .ok()
        .and_then(Val::as_arr)
        .map(|a| a.iter().filter_map(Val::as_obj).collect())
        .unwrap_or_default();
    let counters_of = |id: &str| -> Option<&[(String, Val)]> {
        let row = benchmarks
            .iter()
            .copied()
            .find(|b| json::get_str(b, "id").is_ok_and(|s| s == id))?;
        json::get(row, "counters").ok().and_then(Val::as_obj)
    };

    if benchmarks.iter().all(|b| {
        json::get(b, "counters")
            .ok()
            .and_then(Val::as_obj)
            .is_none_or(<[_]>::is_empty)
    }) {
        println!(
            "check_maintain: {path} has no counters (profile feature compiled out); nothing to check"
        );
        return ExitCode::SUCCESS;
    }

    let mut failures = Vec::new();
    for (w, engaged_key) in ENGAGED {
        let (Some(m), Some(r)) = (
            counters_of(&format!("{w}/maintain")),
            counters_of(&format!("{w}/recompute")),
        ) else {
            failures.push(format!("{w}: missing maintain or recompute row"));
            continue;
        };
        if counter(m, "core.maintain_propagated") == 0 {
            failures.push(format!(
                "{w}: maintained row never propagated a base delta — the gate is vacuous"
            ));
        }
        if counter(m, engaged_key) == 0 {
            failures.push(format!(
                "{w}: {engaged_key} is zero — the workload's strategy never engaged"
            ));
        }
        if counter(r, "core.maintain_propagated") != 0 {
            failures.push(format!("{w}: recompute row did maintenance work"));
        }
        // Counter totals accumulate over warm-up + samples, and the two
        // rows run different iteration counts; both deliver the same
        // answer stream per cycle, so normalize by `core.get_next_tuple`
        // (one bump per answer pulled) before comparing.
        let (mn, rn) = (
            counter(m, "core.get_next_tuple"),
            counter(r, "core.get_next_tuple"),
        );
        let (mv, rv) = (counter(m, GATED_COUNTER), counter(r, GATED_COUNTER));
        let ratio = if mn > 0 && rn > 0 {
            (rv as f64 / rn as f64) / (mv as f64 / mn as f64).max(f64::MIN_POSITIVE)
        } else {
            rv as f64 / (mv as f64).max(f64::MIN_POSITIVE)
        };
        let verdict = if ratio >= MIN_RATIO {
            "ok"
        } else {
            failures.push(format!(
                "{w}: {GATED_COUNTER} reduction {ratio:.2}x < {MIN_RATIO}x \
                 (recompute {rv}, maintain {mv})"
            ));
            "FAIL"
        };
        println!("{w}: {GATED_COUNTER} recompute {rv} maintain {mv} ({ratio:.2}x) {verdict}");
    }
    if failures.is_empty() {
        println!(
            "check_maintain: all churn reductions >= {MIN_RATIO}x and both strategies engaged"
        );
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("check_maintain: {f}");
        }
        ExitCode::FAILURE
    }
}
