//! E9 — persistent relations page through the buffer pool on demand
//! (§2, §3.2): cold vs warm scans under varying pool sizes.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_rel::{PersistentRelation, Relation};
use coral_storage::StorageServer;
use coral_term::{Term, Tuple};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e09_storage");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for frames in [8usize, 256] {
        let dir =
            std::env::temp_dir().join(format!("coral-bench-e09-{}-{frames}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = StorageServer::open(&dir, frames).unwrap();
        let rel = PersistentRelation::open(&srv, "big", 2).unwrap();
        for i in 0..5_000i64 {
            rel.insert(Tuple::ground(vec![
                Term::int(i),
                Term::str(&format!("payload-{i}")),
            ]))
            .unwrap();
        }
        srv.checkpoint().unwrap();
        g.bench_with_input(BenchmarkId::new("cold_scan", frames), &frames, |b, _| {
            b.iter(|| {
                srv.pool().evict_all().unwrap();
                rel.scan().count()
            })
        });
        g.bench_with_input(BenchmarkId::new("warm_scan", frames), &frames, |b, _| {
            b.iter(|| rel.scan().count())
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
