//! E21 — cost-based join planning vs the static left-to-right order.
//!
//! Each workload runs the identical program twice; the only difference
//! is `Session::set_stats`, so the timing ratio is the planner speedup
//! and the counter deltas in `BENCH_plan_skew.json` carry the portable
//! claim: on the skewed non-recursive join (`skew_join`, whose source
//! order drives the 20k-row relation against a 5-row selector) the
//! cost-based rows must show ≥3× fewer `core.join_probes` and
//! `term.unify_attempts` than the static rows, because statistics put
//! the selective literal first and the refreshed auto-index turns the
//! big relation into an indexed probe. The `core.plan_reordered` /
//! `core.plan_replans` counters confirm the planner actually engaged
//! (and stay absent from the static rows) — `tc_skew` additionally
//! checks that the adaptive re-coster fires between fixpoint
//! iterations (`core.plan_replans > 0`). Gating lives in the
//! `check_plan` bin (`src/bin/check_plan.rs`).
//!
//! `CORAL_BENCH_SMOKE=1` shrinks workloads and sampling so CI can run
//! the whole group in a few seconds as a does-it-still-engage check.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, workloads};
use coral_core::session::Session;
use coral_term::testutil::TestRng;
use std::fmt::Write as _;

const MODES: [(&str, bool); 2] = [("cost", true), ("static", false)];

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn run(stats: bool, facts: &str, program: &str, query: &str) -> usize {
    let s = Session::new();
    s.set_stats(stats);
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    count_answers(&s, query)
}

/// The skew workload: `big(Y, Z)` with `n` rows over a wide key domain,
/// `sel(X, Y)` with 5 rows. Source order drives `big` first — the
/// worst possible choice, which the statistics expose.
fn skew_facts(n: usize, seed: u64) -> String {
    let mut rng = TestRng::new(seed);
    let mut s = String::with_capacity(n * 16);
    for y in 0..n {
        let _ = writeln!(s, "big({y}, {}).", y % 50);
    }
    for x in 0..5 {
        let y = rng.gen_range(0, n);
        let _ = writeln!(s, "sel({x}, {y}).");
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("plan_skew");
    if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
    }

    // Non-recursive skewed join, deliberately written big-first and
    // without `@reorder_joins`: the static path evaluates it as
    // written; the cost-based path must flip it. The ≥3× reduction is
    // asserted on this row by `check_plan`.
    let n = if smoke() { 2_000 } else { 20_000 };
    let facts = skew_facts(n, 17);
    let skew_prog = "module skew.\nexport p(ff).\n\
                     p(X, Z) :- big(Y, Z), sel(X, Y).\n\
                     end_module.\n";
    for (label, stats) in MODES {
        g.bench_with_input(BenchmarkId::new("skew_join", label), &stats, |b, &m| {
            b.iter(|| run(m, &facts, skew_prog, "p(X, Z)"))
        });
    }

    // Left-linear transitive closure: the recursive delta literal's
    // observed cardinality shrinks across iterations, so the adaptive
    // re-coster must fire (`core.plan_replans > 0` on the cost row).
    let (v, e) = if smoke() { (24, 96) } else { (56, 280) };
    let tc_facts = workloads::random_graph(v, e, 11);
    let tc_prog = "module tc.\nexport path(ff).\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Y) :- path(X, Z), edge(Z, Y).\n\
                   end_module.\n";
    for (label, stats) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_skew", label), &stats, |b, &m| {
            b.iter(|| run(m, &tc_facts, tc_prog, "path(X, Y)"))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
