//! E13 — semi-naive vs naive fixpoints (§5.3).

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e13_seminaive_vs_naive");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [24usize, 48, 96] {
        let facts = workloads::chain(n);
        for fix in ["bsn", "naive"] {
            g.bench_with_input(BenchmarkId::new(fix, n), &n, |b, _| {
                b.iter(|| {
                    let s = session_with(&facts, &programs::tc_left(&format!("@{fix}.\n"), "ff"));
                    count_answers(&s, "path(X, Y)")
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
