//! E8 — argument-form and pattern-form indices vs scans (§3.3, §5.5.1).

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_rel::{HashRelation, IndexSpec, Relation};
use coral_term::{Term, Tuple, VarId};

fn build(n: usize) -> HashRelation {
    let r = HashRelation::new(2);
    for i in 0..n {
        r.insert(Tuple::ground(vec![
            Term::str(&format!("name{}", i % (n / 10).max(1))),
            Term::apps(
                "addr",
                vec![
                    Term::str(&format!("street{i}")),
                    Term::str(&format!("city{}", i % 100)),
                ],
            ),
        ]))
        .unwrap();
    }
    r
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e08_indexing");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [1_000usize, 10_000] {
        let scan_rel = build(n);
        g.bench_with_input(BenchmarkId::new("unindexed_lookup", n), &n, |b, _| {
            b.iter(|| scan_rel.lookup(&[Term::str("name7"), Term::var(0)]).count())
        });
        let arg_rel = build(n);
        arg_rel.make_index(IndexSpec::Args(vec![0])).unwrap();
        g.bench_with_input(BenchmarkId::new("argument_index", n), &n, |b, _| {
            b.iter(|| arg_rel.lookup(&[Term::str("name7"), Term::var(0)]).count())
        });
        let pat_rel = build(n);
        pat_rel
            .make_index(IndexSpec::Pattern {
                pattern: vec![
                    Term::var(0),
                    Term::apps("addr", vec![Term::var(1), Term::var(2)]),
                ],
                key_vars: vec![VarId(0), VarId(2)],
            })
            .unwrap();
        g.bench_with_input(BenchmarkId::new("pattern_index", n), &n, |b, _| {
            b.iter(|| {
                pat_rel
                    .lookup(&[
                        Term::str("name7"),
                        Term::apps("addr", vec![Term::var(0), Term::str("city7")]),
                    ])
                    .count()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
