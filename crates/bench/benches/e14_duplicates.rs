//! E14 — set vs multiset duplicate semantics (§4.2).

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, session_with};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e14_duplicates");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for k in [4usize, 32] {
        let mut facts = String::new();
        for y in 0..500 {
            for x in 0..k {
                facts.push_str(&format!("e({x}, {y}).\n"));
            }
        }
        for (label, ann) in [("set", ""), ("multiset", "@multiset two/1.\n")] {
            g.bench_with_input(BenchmarkId::new(label, k), &k, |b, _| {
                b.iter(|| {
                    let s = session_with(
                        &facts,
                        &format!(
                            "module m.\nexport two(f).\n{ann}two(Y) :- e(X, Y).\nend_module.\n"
                        ),
                    );
                    count_answers(&s, "two(Y)")
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
