//! E5 — pipelining vs materialization (§5.2): first-answer latency vs
//! total-answer throughput.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e05_pipeline_vs_mat");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let facts = workloads::chain(256);
    for (label, ann) in [("pipelined", "@pipelining.\n"), ("materialized", "")] {
        g.bench_with_input(BenchmarkId::new("first_answer", label), label, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::tc(ann, "bf"));
                let mut a = s.query("path(0, Y)").unwrap();
                a.next_answer().unwrap().unwrap()
            })
        });
        g.bench_with_input(BenchmarkId::new("all_answers", label), label, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::tc(ann, "bf"));
                count_answers(&s, "path(0, Y)")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
