//! E6 — the save-module facility (§5.4.2): repeated overlapping
//! subqueries with and without retained state.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e06_save_module");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let facts = workloads::chain(128);
    let sources: Vec<usize> = (0..8).map(|i| 128 - 16 * (i + 1)).collect();
    for (label, ann) in [("save_module", "@save_module.\n"), ("fresh_per_call", "")] {
        g.bench_with_input(BenchmarkId::new("query_sequence", label), label, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::tc(ann, "bf"));
                let mut total = 0usize;
                for &src in &sources {
                    total += count_answers(&s, &format!("path({src}, Y)"));
                }
                total
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
