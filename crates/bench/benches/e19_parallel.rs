//! E19 — parallel semi-naive fixpoint: partitioned delta evaluation.
//!
//! Each workload runs the identical program at 1, 2 and 4 worker
//! threads; the only difference is `Session::set_threads`, so the
//! timing ratio is the parallel speedup and the counter deltas in
//! `BENCH_parallel_seminaive.json` expose the dispatch behaviour
//! (`parallel` sections of the engine profile record chunk counts and
//! skew). Speedup is bounded by the host's core count: on a single-core
//! machine the 2- and 4-thread rows measure pure coordination overhead
//! (snapshot freeze + partition + merge), which is itself a claim worth
//! pinning — it must stay within a few percent of serial.
//!
//! `CORAL_BENCH_SMOKE=1` shrinks workloads and sampling so CI can run
//! the whole group in a few seconds as a does-it-still-dispatch check.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, workloads};
use coral_core::session::Session;
use coral_term::testutil::TestRng;
use std::fmt::Write as _;

const THREADS: [usize; 3] = [1, 2, 4];

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn run(threads: usize, facts: &str, program: &str, query: &str) -> usize {
    let s = Session::new();
    s.set_threads(threads);
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    count_answers(&s, query)
}

/// A random graph over functor-wrapped nodes `n(i)`: every join and
/// insert goes through structured-term unification, so this workload is
/// term-heavy where the integer graphs are hash-heavy.
fn functor_graph(v: usize, e: usize, seed: u64) -> String {
    let mut rng = TestRng::new(seed);
    let mut s = String::with_capacity(e * 24);
    for i in 0..v - 1 {
        let _ = writeln!(s, "edge(n({i}), n({})).", i + 1);
    }
    for _ in 0..e.saturating_sub(v - 1) {
        let a = rng.gen_range(0, v);
        let b = rng.gen_range(0, v);
        let _ = writeln!(s, "edge(n({a}), n({b})).");
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_seminaive");
    if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
    }

    // All-pairs transitive closure on a dense random digraph: big
    // per-iteration deltas, the headline workload of the issue.
    let (v, e) = if smoke() { (24, 96) } else { (56, 280) };
    let tc_facts = workloads::random_graph(v, e, 11);
    let tc_prog = programs::tc("", "ff");
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("tc", t), &t, |b, &t| {
            b.iter(|| run(t, &tc_facts, &tc_prog, "path(X, Y)"))
        });
    }

    // Same generation over a layered up/flat/down graph, exported ff so
    // the recursive sg delta (not a magic seed) drives the joins.
    let (layers, width) = if smoke() { (4, 8) } else { (6, 24) };
    let sg_facts = workloads::same_gen(layers, width);
    let sg_prog = "module sg.\nexport sg(ff).\n\
                   sg(X, Y) :- flat(X, Y).\n\
                   sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
                   end_module.\n";
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("same_generation", t), &t, |b, &t| {
            b.iter(|| run(t, &sg_facts, sg_prog, "sg(X, Y)"))
        });
    }

    // Path over functor-wrapped nodes: unification-bound rather than
    // hash-bound, so worker CPU dominates coordination.
    let (fv, fe) = if smoke() { (20, 70) } else { (44, 200) };
    let fn_facts = functor_graph(fv, fe, 13);
    for t in THREADS {
        g.bench_with_input(BenchmarkId::new("path_functors", t), &t, |b, &t| {
            b.iter(|| run(t, &fn_facts, &tc_prog, "path(X, Y)"))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
