//! E20 — columnar delta batches vs the legacy tuple-at-a-time hot path.
//!
//! Each workload runs the identical program twice; the only difference
//! is `Session::set_columnar`, so the timing ratio is the columnar
//! speedup and the counter deltas in `BENCH_columnar_seminaive.json`
//! carry the claim that matters on any host: on the all-ground
//! transitive-closure workloads the columnar rows must show ≥3× fewer
//! `term.unify_attempts` and `term.bindenv_allocs` than the legacy rows,
//! because ground candidates are decided by flat column equality instead
//! of general unification with a fresh binding environment per
//! candidate. The `core.batched_rows` / `core.vectorized_probes`
//! counters confirm the fast path actually engaged (and stay absent from
//! the legacy rows).
//!
//! `tc_left` is the headline: left-linear recursion puts the delta
//! literal first with an all-free pattern, so the open-pattern batch
//! drive iterates the delta columns directly. `tc_right` exercises the
//! per-candidate ground fast path behind an index probe, `sg` a
//! three-way join, and `path_functors` structured terms whose rows land
//! flat in the batch (functor-typed columns still compare by pointer
//! equality under hash-consing).
//!
//! `CORAL_BENCH_SMOKE=1` shrinks workloads and sampling so CI can run
//! the whole group in a few seconds as a does-it-still-engage check.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, workloads};
use coral_core::session::Session;
use coral_term::testutil::TestRng;
use std::fmt::Write as _;

const MODES: [(&str, bool); 2] = [("columnar", true), ("legacy", false)];

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

// Threads are deliberately not pinned: the session inherits
// CORAL_THREADS (default serial), so the CI smoke matrix exercises the
// columnar/legacy pair under both serial and parallel dispatch while
// measurement runs stay serial.
fn run(columnar: bool, facts: &str, program: &str, query: &str) -> usize {
    let s = Session::new();
    s.set_columnar(columnar);
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    count_answers(&s, query)
}

/// A random graph over functor-wrapped nodes `n(i)`: batch rows hold
/// structured terms, exercising the ground fast path on non-primitive
/// columns.
fn functor_graph(v: usize, e: usize, seed: u64) -> String {
    let mut rng = TestRng::new(seed);
    let mut s = String::with_capacity(e * 24);
    for i in 0..v - 1 {
        let _ = writeln!(s, "edge(n({i}), n({})).", i + 1);
    }
    for _ in 0..e.saturating_sub(v - 1) {
        let a = rng.gen_range(0, v);
        let b = rng.gen_range(0, v);
        let _ = writeln!(s, "edge(n({a}), n({b})).");
    }
    s
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("columnar_seminaive");
    if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
    }

    // All-pairs transitive closure, left-linear: the delta literal is in
    // body position 0 with an all-free pattern, the open-pattern batch
    // drive's home turf. The ≥3× unify/bindenv reduction is asserted on
    // this row by the `check_columnar` bin (`src/bin/check_columnar.rs`).
    let (v, e) = if smoke() { (24, 96) } else { (56, 280) };
    let tc_facts = workloads::random_graph(v, e, 11);
    let tcl_prog = programs::tc_left("", "ff");
    for (label, columnar) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_left", label), &columnar, |b, &m| {
            b.iter(|| run(m, &tc_facts, &tcl_prog, "path(X, Y)"))
        });
    }

    // Right-linear tc: the delta feeds an indexed probe, so the work is
    // per-candidate ground fast matching rather than the batch drive.
    let tcr_prog = programs::tc("", "ff");
    for (label, columnar) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_right", label), &columnar, |b, &m| {
            b.iter(|| run(m, &tc_facts, &tcr_prog, "path(X, Y)"))
        });
    }

    // Same generation over a layered up/flat/down graph, exported ff so
    // the recursive sg delta (not a magic seed) drives the joins.
    let (layers, width) = if smoke() { (4, 8) } else { (6, 24) };
    let sg_facts = workloads::same_gen(layers, width);
    let sg_prog = "module sg.\nexport sg(ff).\n\
                   sg(X, Y) :- flat(X, Y).\n\
                   sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
                   end_module.\n";
    for (label, columnar) in MODES {
        g.bench_with_input(BenchmarkId::new("sg", label), &columnar, |b, &m| {
            b.iter(|| run(m, &sg_facts, sg_prog, "sg(X, Y)"))
        });
    }

    // Path over functor-wrapped nodes: ground but non-primitive columns.
    let (fv, fe) = if smoke() { (20, 70) } else { (44, 200) };
    let fn_facts = functor_graph(fv, fe, 13);
    for (label, columnar) in MODES {
        g.bench_with_input(
            BenchmarkId::new("path_functors", label),
            &columnar,
            |b, &m| b.iter(|| run(m, &fn_facts, &tcl_prog, "path(X, Y)")),
        );
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
