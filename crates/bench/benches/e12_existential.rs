//! E12 — existential query rewriting pushes projections (§4.1):
//! don't-care outputs shrink the materialized facts.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_existential");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let facts = workloads::chain(256);
    for (label, q) in [("dont_care", "path(X, _)"), ("full_output", "path(X, Y)")] {
        g.bench_with_input(BenchmarkId::new("reach_query", label), label, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::tc("", "ff"));
                count_answers(&s, q)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
