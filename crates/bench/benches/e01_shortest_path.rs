//! E1 — Figure 3: single-source shortest path with aggregate selections
//! on cyclic graphs (§5.5.2: "a single source query … runs in time
//! O(E·V)").

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e01_shortest_path");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for v in [16usize, 32, 64] {
        let facts = workloads::random_costed_graph(v, 4 * v, 0xE1);
        g.bench_with_input(BenchmarkId::new("figure3_single_source", v), &v, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::figure_3(true));
                count_answers(&s, "s_p(0, Y, P, C)")
            })
        });
        g.bench_with_input(
            BenchmarkId::new("cost_only_single_source", v),
            &v,
            |b, _| {
                b.iter(|| {
                    let s = session_with(&facts, &programs::shortest_cost(true));
                    count_answers(&s, "sp(0, Y, C)")
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
