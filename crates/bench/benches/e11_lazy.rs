//! E11 — lazy materialized evaluation returns answers at iteration
//! boundaries (§5.4.3): time-to-first-answer.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e11_lazy");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let facts = workloads::chain(256);
    for (label, ann) in [("lazy", "@lazy.\n"), ("eager", "")] {
        g.bench_with_input(BenchmarkId::new("first_answer", label), label, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::tc(ann, "bf"));
                let mut a = s.query("path(0, Y)").unwrap();
                a.next_answer().unwrap().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
