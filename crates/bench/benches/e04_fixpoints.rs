//! E4 — BSN vs PSN on modules with many mutually recursive predicates
//! (§4.2: PSN "is better for programs with many mutually recursive
//! predicates").

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e04_bsn_vs_psn");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let facts = workloads::chain(64);
    for k in [2usize, 8, 16] {
        for fix in ["bsn", "psn"] {
            g.bench_with_input(BenchmarkId::new(fix, k), &k, |b, _| {
                b.iter(|| {
                    let s = session_with(&facts, &workloads::mutual_recursion_module(k, fix));
                    count_answers(&s, "p0(0, Y)")
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
