//! E10 — Ordered Search on the win-move game (§5.4.1).

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_ordered_search");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [25usize, 50] {
        let facts = workloads::game_graph(n, 0xE10);
        g.bench_with_input(BenchmarkId::new("win_move", n), &n, |b, _| {
            b.iter(|| {
                let s = session_with(&facts, &programs::win_move());
                count_answers(&s, "win(0)")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
