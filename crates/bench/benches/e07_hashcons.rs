//! E7 — hash-consing makes unification of large ground terms cheap
//! (§3.1): identifier comparison vs structural descent.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_term::{hashcons, unify, EnvSet, Term};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e07_hashcons");
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for l in [64usize, 512, 4096] {
        let mk = || Term::list((0..l as i64).map(Term::int).collect::<Vec<_>>());
        // Fresh (never interned) copies each iteration: structural cost.
        g.bench_with_input(BenchmarkId::new("structural_unify", l), &l, |b, _| {
            let (a, bb) = (mk(), mk());
            b.iter(|| {
                let mut envs = EnvSet::new();
                let e = envs.push_frame(0);
                // Note: interning may have happened lazily; rebuild to
                // keep the structural path honest.
                let (a2, b2) = (a.clone(), bb.clone());
                unify(&mut envs, &a2, e, &b2, e)
            })
        });
        let (a, bb) = (mk(), mk());
        hashcons::intern(&a);
        hashcons::intern(&bb);
        g.bench_with_input(BenchmarkId::new("interned_unify", l), &l, |b, _| {
            b.iter(|| {
                let mut envs = EnvSet::new();
                let e = envs.push_frame(0);
                unify(&mut envs, &a, e, &bb, e)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
