//! E22 — incremental maintenance vs wholesale recomputation under
//! single-tuple churn.
//!
//! Each workload holds one long-lived session and repeatedly applies
//! the same single-tuple update cycle: insert one base fact, re-query,
//! delete it, re-query. The `maintain` rows run with incremental
//! maintenance on (counting for the non-recursive workload, DRed for
//! the recursive one — both forced by `@maintain` so the strategy under
//! test is unambiguous); the `recompute` rows run the identical cycle
//! with maintenance off, so every mutation invalidates the module and
//! every query recomputes the fixpoint from scratch. Sessions are
//! built — and the maintained state materialized — *before* the
//! measured region, so the counter deltas in `BENCH_maintain_churn.json`
//! cover only the steady-state churn.
//!
//! The portable claim, gated by the `check_maintain` bin
//! (`src/bin/check_maintain.rs`): per answer delivered, the maintained
//! rows must show ≥10× fewer `core.join_probes` than the recompute
//! rows, and the `core.maintain_propagated` counter must confirm the
//! maintenance machinery actually ran (and stayed out of the recompute
//! rows).
//!
//! `CORAL_BENCH_SMOKE=1` shrinks workloads and sampling so CI can run
//! the whole group in a few seconds as a does-it-still-engage check.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, workloads};
use coral_core::session::Session;

const MODES: [(&str, bool); 2] = [("maintain", true), ("recompute", false)];

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

/// Build the long-lived session: consult, then query once so the
/// maintained rows enter the measured region with a live state.
fn churn_session(maintain: bool, facts: &str, program: &str, query: &str) -> Session {
    let s = Session::new();
    s.set_maintain(maintain);
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    count_answers(&s, query);
    s
}

/// One churn cycle: insert a fresh fact, re-query, delete it, re-query.
/// Both modes deliver the identical answer stream, so per-answer
/// counter comparisons are apples to apples.
fn cycle(s: &Session, fact: &str, query: &str) -> usize {
    s.insert_fact(fact).expect("insert");
    let with = count_answers(s, query);
    s.delete_fact(fact).expect("delete");
    with + count_answers(s, query)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("maintain_churn");
    if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
    }

    // Recursive transitive closure under DRed: the churned edge fans a
    // new source into the whole reachable set, so both the insertion
    // propagation and the overdelete/rederive phases run every cycle.
    let (v, e) = if smoke() { (30, 120) } else { (120, 480) };
    let tc_facts = workloads::random_graph(v, e, 23);
    let tc_prog = "module tc.\nexport path(ff).\n\
                   @maintain dred.\n\
                   path(X, Y) :- edge(X, Y).\n\
                   path(X, Y) :- edge(X, Z), path(Z, Y).\n\
                   end_module.\n";
    for (label, maintain) in MODES {
        let s = churn_session(maintain, &tc_facts, tc_prog, "path(X, Y)");
        g.bench_with_input(BenchmarkId::new("tc_churn", label), &(), |b, ()| {
            b.iter(|| cycle(&s, "edge(9001, 0)", "path(X, Y)"))
        });
    }

    // Non-recursive two-hop join under counting: the single-stratum
    // derivation-count path, exercised without any recursion. Vertex 0
    // gets pinned out-edges so the churned edge(9001, 0) always creates
    // (and destroys) hop derivations — random graphs can leave a vertex
    // with no successors, which would make the count-update gate
    // vacuous.
    let hop_facts = format!(
        "{}edge(0, 1).\nedge(0, 2).\n",
        workloads::random_graph(v, e, 29)
    );
    let hop_prog = "module hops.\nexport hop(ff).\n\
                    @maintain counting.\n\
                    hop(X, Y) :- edge(X, Z), edge(Z, Y).\n\
                    end_module.\n";
    for (label, maintain) in MODES {
        let s = churn_session(maintain, &hop_facts, hop_prog, "hop(X, Y)");
        g.bench_with_input(BenchmarkId::new("hop_churn", label), &(), |b, ()| {
            b.iter(|| cycle(&s, "edge(9001, 0)", "hop(X, Y)"))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
