//! E24 — reader throughput during a concurrent bulk load: MVCC snapshot
//! reads vs the legacy relation RwLock (PR 10's transaction manager).
//!
//! One writer thread bulk-loads a persistent relation in txn-bracketed
//! batches while the measured thread runs indexed lookups against the
//! same relation. Under MVCC every lookup pins a snapshot and never
//! takes the relation lock; under `CORAL_MVCC=0` semantics (the
//! `rwlock` mode here) each lookup holds the shared relation lock and
//! contends with the loader's exclusive one. The `reader_baseline` rows
//! measure the same lookups with no loader running, so the gate
//! (`check_txn`) can assert the MVCC reader is not stalled by the load.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_rel::{IndexSpec, PersistentRelation, Relation};
use coral_storage::{StdVfs, StorageClient, StorageServer};
use coral_term::{Term, Tuple};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Concurrency modes compared on every workload.
const MODES: [(&str, bool); 2] = [("mvcc", true), ("rwlock", false)];

/// Rows committed per loader transaction.
const BATCH: i64 = 200;

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v == "1")
}

fn tuple(i: i64) -> Tuple {
    Tuple::ground(vec![Term::int(i), Term::int(i % 97)])
}

/// One reader pass: `lookups` indexed point lookups spread over the
/// preloaded key range. Returns the number of tuples found so the work
/// cannot be optimized away.
fn read_pass(rel: &PersistentRelation, rows: i64, lookups: i64) -> usize {
    let mut found = 0usize;
    for k in 0..lookups {
        let key = (k * 131) % rows;
        found += rel.lookup(&[Term::int(key), Term::var(0)]).count();
    }
    found
}

/// Start the bulk loader: txn-bracketed batches of fresh keys until
/// `stop` is raised. Returns the join handle; `batches` counts commits.
fn spawn_loader(
    srv: &StorageClient,
    mvcc: bool,
    stop: &Arc<AtomicBool>,
    batches: &Arc<AtomicU64>,
) -> std::thread::JoinHandle<()> {
    let srv = Arc::clone(srv);
    let stop = Arc::clone(stop);
    let batches = Arc::clone(batches);
    std::thread::spawn(move || {
        let rel = PersistentRelation::open(&srv, "load", 2).unwrap();
        let mut next = 1_000_000i64;
        while !stop.load(Ordering::Relaxed) {
            let txn = srv.begin().unwrap();
            if mvcc {
                rel.set_txn(Some(txn));
            }
            let mut failed = false;
            // Stop-aware: on shutdown the in-progress batch is committed
            // short, so even a slow machine records at least one commit.
            for _ in 0..BATCH {
                if rel.insert(tuple(next)).is_err() {
                    failed = true;
                    break;
                }
                next += 1;
                if stop.load(Ordering::Relaxed) {
                    break;
                }
            }
            if mvcc {
                rel.set_txn(None);
            }
            if failed {
                // Conflict mid-batch: abort and retry with fresh keys.
                let _ = srv.abort(txn);
            } else if srv.commit(txn).is_ok() {
                batches.fetch_add(1, Ordering::Relaxed);
            }
        }
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("txn_concurrency");
    let (rows, lookups) = if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
        (4_000i64, 64i64)
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
        (20_000i64, 256i64)
    };
    for (label, mvcc) in MODES {
        let dir =
            std::env::temp_dir().join(format!("coral-bench-e24-{}-{label}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let srv = StorageServer::open_with_mode(&dir, 256, Arc::new(StdVfs), mvcc).unwrap();
        let rel = PersistentRelation::open(&srv, "load", 2).unwrap();
        for i in 0..rows {
            rel.insert(tuple(i)).unwrap();
        }
        rel.make_index(IndexSpec::Args(vec![0])).unwrap();
        srv.checkpoint().unwrap();

        g.bench_with_input(BenchmarkId::new("reader_baseline", label), &rows, |b, _| {
            b.iter(|| read_pass(&rel, rows, lookups))
        });

        let stop = Arc::new(AtomicBool::new(false));
        let batches = Arc::new(AtomicU64::new(0));
        let loader = spawn_loader(&srv, mvcc, &stop, &batches);
        g.bench_with_input(
            BenchmarkId::new("reader_under_bulkload", label),
            &rows,
            |b, _| b.iter(|| read_pass(&rel, rows, lookups)),
        );
        stop.store(true, Ordering::Relaxed);
        loader.join().expect("bulk loader panicked");

        let loaded = batches.load(Ordering::Relaxed);
        let tx = srv.tx_stats();
        println!(
            "txn_concurrency/{label}: loader committed {loaded} batches ({} rows); \
             tx: begun {} committed {} aborted {} conflicts {} snapshots {} group_commits {}",
            loaded * BATCH as u64,
            tx.begun,
            tx.committed,
            tx.aborted,
            tx.conflicts,
            tx.snapshots,
            tx.group_commits,
        );
        // The comparison is meaningless if the loader never ran, and the
        // escape hatch is broken if the legacy mode touched tx counters.
        assert!(loaded > 0, "{label}: bulk loader committed nothing");
        if mvcc {
            assert!(tx.committed > 0 && tx.snapshots > 0);
        } else {
            assert_eq!(
                (tx.begun, tx.committed, tx.snapshots),
                (0, 0, 0),
                "legacy mode must leave MVCC counters untouched"
            );
        }
        srv.checkpoint().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
