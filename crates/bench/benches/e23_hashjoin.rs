//! E23 — transient hash-join tables vs per-delta-row index probing.
//!
//! Each workload runs the identical program twice; the only difference
//! is `Session::set_hashjoin`, so the timing ratio is the hash-join
//! speedup and the counter deltas in `BENCH_hashjoin.json` carry the
//! claim that matters on any host: on the all-ground transitive-closure
//! and same-generation workloads the hash-join rows must show ≥3× fewer
//! `rel.index_probes` than the index rows, because the inner literal's
//! lookups are replaced by one table build plus O(1) bucket probes per
//! delta row. The `core.joinhash_tables_built` / `core.joinhash_probes`
//! counters confirm the path actually engaged (and stay absent from the
//! index rows), and `core.joinhash_bloom_skips > 0` on at least one
//! gated workload proves the Bloom sideways-information-passing filter
//! runs (`check_hashjoin`, `src/bin/check_hashjoin.rs`).
//!
//! `tc_right` is the headline: right-linear recursion probes the `edge`
//! literal once per delta row with a bound first column — exactly the
//! probe stream the hash table absorbs. `sg` adds a three-way join
//! (`up`/`down` both hashed), `tc_left` bounds the *recursive* literal
//! (tables over a moving range, rebuilt per iteration under the cost
//! gate), and `tc_parallel` shares one build across `k=4` workers.
//!
//! `CORAL_BENCH_SMOKE=1` shrinks workloads and sampling so CI can run
//! the whole group in a few seconds as a does-it-still-engage check.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, workloads};
use coral_core::session::Session;

const MODES: [(&str, bool); 2] = [("hashjoin", true), ("index", false)];

fn smoke() -> bool {
    std::env::var("CORAL_BENCH_SMOKE").is_ok_and(|v| v != "0")
}

fn run(hashjoin: bool, threads: usize, facts: &str, program: &str, query: &str) -> usize {
    let s = Session::new();
    s.set_hashjoin(hashjoin);
    s.set_threads(threads);
    s.consult_str(facts).expect("facts consult");
    s.consult_str(program).expect("program consult");
    count_answers(&s, query)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("hashjoin");
    if smoke() {
        g.sample_size(3);
        g.warm_up_time(std::time::Duration::from_millis(50));
        g.measurement_time(std::time::Duration::from_millis(300));
    } else {
        g.sample_size(10);
        g.warm_up_time(std::time::Duration::from_millis(300));
        g.measurement_time(std::time::Duration::from_millis(1500));
    }

    // Right-linear tc: each delta row probes `edge` with a bound first
    // column. The ≥3× `rel.index_probes` reduction is asserted on this
    // row by `check_hashjoin`.
    let (v, e) = if smoke() { (24, 96) } else { (56, 280) };
    let tc_facts = workloads::random_graph(v, e, 11);
    let tcr_prog = programs::tc("", "ff");
    for (label, hj) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_right", label), &hj, |b, &m| {
            b.iter(|| run(m, 1, &tc_facts, &tcr_prog, "path(X, Y)"))
        });
    }

    // Same generation: `up` and `down` are both probed bound per delta
    // row — two tables per fixpoint. Also gated ≥3×.
    let (layers, width) = if smoke() { (4, 8) } else { (6, 24) };
    let sg_facts = workloads::same_gen(layers, width);
    let sg_prog = "module sg.\nexport sg(ff).\n\
                   sg(X, Y) :- flat(X, Y).\n\
                   sg(X, Y) :- up(X, U), sg(U, V), down(V, Y).\n\
                   end_module.\n";
    for (label, hj) in MODES {
        g.bench_with_input(BenchmarkId::new("sg", label), &hj, |b, &m| {
            b.iter(|| run(m, 1, &sg_facts, sg_prog, "sg(X, Y)"))
        });
    }

    // Left-linear tc: the recursive `path` literal is probed bound, so
    // its table covers a moving range and is evicted + cost-re-gated
    // every iteration. Reported, not gated (the open delta drive keeps
    // most probes on the batch path already).
    let tcl_prog = programs::tc_left("", "ff");
    for (label, hj) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_left", label), &hj, |b, &m| {
            b.iter(|| run(m, 1, &tc_facts, &tcl_prog, "path(X, Y)"))
        });
    }

    // Parallel dispatch: one table built by the coordinator, shared by
    // every worker via Arc. Reported, not gated (worker counters fold
    // into the same totals; the interesting signal is that the answers
    // and table counts stay consistent under k=4).
    for (label, hj) in MODES {
        g.bench_with_input(BenchmarkId::new("tc_parallel", label), &hj, |b, &m| {
            b.iter(|| run(m, 4, &tc_facts, &tcr_prog, "path(X, Y)"))
        });
    }

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
