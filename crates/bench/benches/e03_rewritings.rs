//! E3 — Supplementary Magic vs Magic vs GoalId vs Context Factoring
//! (§4.1: "each technique is superior to the rest for some programs").

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e03_rewritings");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    let chain = workloads::chain(256);
    let sg = workloads::same_gen(6, 32);
    for rw in ["supplementary", "magic", "goalid", "factoring"] {
        let ann = format!("@rewrite {rw}.\n");
        g.bench_with_input(BenchmarkId::new("right_linear_reach", rw), rw, |b, _| {
            b.iter(|| {
                let s = session_with(&chain, &programs::tc(&ann, "bf"));
                count_answers(&s, "path(448, Y)")
            })
        });
        g.bench_with_input(BenchmarkId::new("same_generation", rw), rw, |b, _| {
            b.iter(|| {
                let s = session_with(&sg, &programs::same_generation(&ann));
                count_answers(&s, "sg(0, Y)")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
