//! E2 — magic rewriting propagates query selections (§4.1): a bound
//! query on a long chain touches only the reachable suffix.

use coral_bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use coral_bench::{count_answers, programs, session_with, workloads};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e02_magic_vs_none");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_millis(1200));
    for n in [128usize, 512] {
        let facts = workloads::chain(n);
        let src = n - 16;
        for (label, ann) in [("supplementary", ""), ("none", "@rewrite none.\n")] {
            g.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    let s = session_with(&facts, &programs::tc(ann, "bf"));
                    count_answers(&s, &format!("path({src}, Y)"))
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
