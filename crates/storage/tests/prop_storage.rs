#![cfg(feature = "proptest")]

//! Property tests: the B+-tree and heap file against in-memory models.

use coral_storage::btree::BTree;
use coral_storage::buffer::BufferPool;
use coral_storage::file::{FileId, PageFile};
use coral_storage::heap::HeapFile;
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static COUNTER: AtomicU64 = AtomicU64::new(0);

fn fresh_file(prefix: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("coral-prop-storage-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let p = d.join(format!("{prefix}-{n}"));
    let _ = std::fs::remove_file(&p);
    p
}

fn fresh_tree(frames: usize) -> BTree {
    let pool = Arc::new(BufferPool::new(frames));
    pool.register_file(FileId(0), PageFile::open(&fresh_file("bt")).unwrap());
    BTree::open(pool, FileId(0)).unwrap()
}

fn fresh_heap(frames: usize) -> HeapFile {
    let pool = Arc::new(BufferPool::new(frames));
    pool.register_file(FileId(0), PageFile::open(&fresh_file("heap")).unwrap());
    HeapFile::new(pool, FileId(0))
}

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Delete(Vec<u8>),
    Contains(Vec<u8>),
}

fn item_strategy() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..8, 1..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => item_strategy().prop_map(Op::Insert),
        1 => item_strategy().prop_map(Op::Delete),
        1 => item_strategy().prop_map(Op::Contains),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreeset_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let tree = fresh_tree(8); // tiny pool to exercise eviction
        let mut model: BTreeSet<Vec<u8>> = BTreeSet::new();
        for op in &ops {
            match op {
                Op::Insert(item) => {
                    let fresh = tree.insert(item).unwrap();
                    prop_assert_eq!(fresh, model.insert(item.clone()));
                }
                Op::Delete(item) => {
                    let was = tree.delete(item).unwrap();
                    prop_assert_eq!(was, model.remove(item));
                }
                Op::Contains(item) => {
                    prop_assert_eq!(tree.contains(item).unwrap(), model.contains(item));
                }
            }
        }
        prop_assert_eq!(tree.len().unwrap(), model.len() as u64);
        let scanned: Vec<Vec<u8>> = tree.scan_all().unwrap().map(|r| r.unwrap()).collect();
        let expect: Vec<Vec<u8>> = model.iter().cloned().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn btree_range_matches_model(
        items in proptest::collection::btree_set(item_strategy(), 0..80),
        lo in item_strategy(),
        hi in item_strategy(),
    ) {
        let tree = fresh_tree(8);
        for item in &items {
            tree.insert(item).unwrap();
        }
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let got: Vec<Vec<u8>> = tree.range(&lo, Some(&hi)).unwrap().map(|r| r.unwrap()).collect();
        let expect: Vec<Vec<u8>> = items.range(lo.clone()..hi.clone()).cloned().collect();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn heap_matches_map_model(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..300), 1..60),
        delete_mask in proptest::collection::vec(any::<bool>(), 60),
    ) {
        let heap = fresh_heap(4);
        let mut model: HashMap<_, Vec<u8>> = HashMap::new();
        let mut rids = Vec::new();
        for rec in &records {
            let rid = heap.insert(rec).unwrap();
            model.insert(rid, rec.clone());
            rids.push(rid);
        }
        for (rid, del) in rids.iter().zip(&delete_mask) {
            if *del && model.remove(rid).is_some() {
                heap.delete(*rid).unwrap();
            }
        }
        for (rid, rec) in &model {
            prop_assert_eq!(&heap.get(*rid).unwrap(), rec);
        }
        let mut scanned: Vec<(_, Vec<u8>)> = heap.scan().map(|r| r.unwrap()).collect();
        scanned.sort();
        let mut expect: Vec<(_, Vec<u8>)> = model.into_iter().collect();
        expect.sort();
        prop_assert_eq!(scanned, expect);
    }
}
