//! Write-ahead log: atomic multi-page commit and crash recovery.
//!
//! The paper delegates "transactions and concurrency control" to the
//! EXODUS toolkit (§2); this module is the minimal substitute. The buffer
//! pool runs a no-steal policy for transactional pages (they are pinned
//! until commit), so the log is redo-only: at commit, the after-images of
//! every touched page are appended and fsynced; recovery replays the
//! images of committed transactions in order; a checkpoint (taken after
//! flushing the data files) truncates the log.
//!
//! Record format (little-endian):
//!
//! ```text
//! [len: u32][kind: u8][payload][checksum: u64]
//! kind 1 = Commit   payload: txn u64, n_pages u32,
//!                            n × (file u32, page u64, image PAGE_SIZE)
//! kind 2 = Checkpoint  payload: empty
//! ```
//!
//! The checksum is a FNV-1a over kind+payload; a torn or corrupt tail
//! record ends recovery (standard WAL semantics).

use crate::error::{StorageError, StorageResult};
use crate::file::PageId;
use crate::page::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

const KIND_COMMIT: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A committed transaction recovered from the log.
#[derive(Debug, PartialEq, Eq)]
pub struct RecoveredTxn {
    /// Transaction id.
    pub txn: u64,
    /// `(stable file number, page, after-image)` triples.
    pub pages: Vec<(u32, PageId, Vec<u8>)>,
}

/// An append-only write-ahead log file.
pub struct Wal {
    file: File,
    path: PathBuf,
}

impl Wal {
    /// Open (creating if necessary) the log at `path`.
    pub fn open(path: &Path) -> StorageResult<Wal> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> StorageResult<()> {
        crate::profile::bump(|c| c.wal_appends += 1);
        self.file.seek(SeekFrom::End(0))?;
        let len = 1 + payload.len();
        let mut buf = Vec::with_capacity(4 + len + 8);
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&fnv1a(&buf[4..]).to_le_bytes());
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        Ok(())
    }

    /// Append and fsync a commit record.
    pub fn log_commit(&mut self, txn: u64, pages: &[(u32, PageId, &[u8])]) -> StorageResult<()> {
        let mut payload = Vec::with_capacity(12 + pages.len() * (12 + PAGE_SIZE));
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for (file_no, pid, image) in pages {
            debug_assert_eq!(image.len(), PAGE_SIZE);
            payload.extend_from_slice(&file_no.to_le_bytes());
            payload.extend_from_slice(&pid.0.to_le_bytes());
            payload.extend_from_slice(image);
        }
        self.append(KIND_COMMIT, &payload)
    }

    /// Truncate the log and write a checkpoint marker. The caller must
    /// have flushed the data files first.
    pub fn checkpoint(&mut self) -> StorageResult<()> {
        self.file.set_len(0)?;
        self.append(KIND_CHECKPOINT, &[])
    }

    /// Read the committed transactions recorded since the last
    /// checkpoint, in commit order. A torn/corrupt tail record stops the
    /// scan (it was never acknowledged as committed).
    pub fn recover(&mut self) -> StorageResult<Vec<RecoveredTxn>> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut data = Vec::new();
        self.file.read_to_end(&mut data)?;
        let mut txns = Vec::new();
        let mut off = 0usize;
        while off + 4 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if off + 4 + len + 8 > data.len() {
                break; // torn tail
            }
            let body = &data[off + 4..off + 4 + len];
            let stored =
                u64::from_le_bytes(data[off + 4 + len..off + 4 + len + 8].try_into().unwrap());
            if fnv1a(body) != stored {
                break; // corrupt tail
            }
            match body[0] {
                KIND_CHECKPOINT => txns.clear(),
                KIND_COMMIT => {
                    let payload = &body[1..];
                    if payload.len() < 12 {
                        return Err(StorageError::CorruptLog("short commit record".into()));
                    }
                    let txn = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                    let n = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
                    let mut pages = Vec::with_capacity(n);
                    let mut p = 12;
                    for _ in 0..n {
                        if p + 12 + PAGE_SIZE > payload.len() {
                            return Err(StorageError::CorruptLog(
                                "truncated page image in commit record".into(),
                            ));
                        }
                        let file_no = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap());
                        let pid = u64::from_le_bytes(payload[p + 4..p + 12].try_into().unwrap());
                        let image = payload[p + 12..p + 12 + PAGE_SIZE].to_vec();
                        pages.push((file_no, PageId(pid), image));
                        p += 12 + PAGE_SIZE;
                    }
                    txns.push(RecoveredTxn { txn, pages });
                }
                k => return Err(StorageError::CorruptLog(format!("unknown record kind {k}"))),
            }
            off += 4 + len + 8;
        }
        Ok(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(name: &str) -> Wal {
        let d = std::env::temp_dir().join(format!("coral-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        Wal::open(&p).unwrap()
    }

    fn image(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn commit_then_recover() {
        let mut w = wal("basic.wal");
        let img1 = image(1);
        let img2 = image(2);
        w.log_commit(7, &[(0, PageId(3), &img1), (1, PageId(0), &img2)])
            .unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, 7);
        assert_eq!(txns[0].pages.len(), 2);
        assert_eq!(txns[0].pages[0], (0, PageId(3), img1));
        assert_eq!(txns[0].pages[1], (1, PageId(0), img2));
    }

    #[test]
    fn checkpoint_clears_history() {
        let mut w = wal("ckpt.wal");
        w.log_commit(1, &[(0, PageId(0), &image(1))]).unwrap();
        w.checkpoint().unwrap();
        w.log_commit(2, &[(0, PageId(1), &image(2))]).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, 2);
    }

    #[test]
    fn torn_tail_is_ignored() {
        let path = {
            let mut w = wal("torn.wal");
            w.log_commit(1, &[(0, PageId(0), &image(9))]).unwrap();
            w.log_commit(2, &[(0, PageId(1), &image(8))]).unwrap();
            w.path().to_path_buf()
        };
        // Chop bytes off the tail, simulating a crash mid-write.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 100]).unwrap();
        let mut w = Wal::open(&path).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1, "only the fully written txn survives");
        assert_eq!(txns[0].txn, 1);
    }

    #[test]
    fn corrupt_checksum_stops_recovery() {
        let path = {
            let mut w = wal("crc.wal");
            w.log_commit(1, &[(0, PageId(0), &image(1))]).unwrap();
            w.log_commit(2, &[(0, PageId(1), &image(2))]).unwrap();
            w.path().to_path_buf()
        };
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* record's payload.
        let rec1_len = 4 + (1 + 8 + 4 + 12 + PAGE_SIZE) + 8;
        data[rec1_len + 40] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let mut w = Wal::open(&path).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let mut w = wal("empty.wal");
        assert!(w.recover().unwrap().is_empty());
    }

    #[test]
    fn multiple_commits_in_order() {
        let mut w = wal("order.wal");
        for t in 0..5u64 {
            w.log_commit(t, &[(0, PageId(t), &image(t as u8))]).unwrap();
        }
        let txns = w.recover().unwrap();
        assert_eq!(
            txns.iter().map(|t| t.txn).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }
}
