//! Write-ahead log: atomic multi-page commit and crash recovery.
//!
//! The paper delegates "transactions and concurrency control" to the
//! EXODUS toolkit (§2); this module is the minimal substitute. The buffer
//! pool runs a no-steal policy for transactional pages (they are pinned
//! until commit), so the log is redo-only: at commit, the after-images of
//! every touched page are appended and fsynced; recovery replays the
//! images of committed transactions in order; a checkpoint (taken after
//! flushing the data files) truncates the log.
//!
//! Record format (little-endian):
//!
//! ```text
//! [len: u32][kind: u8][payload][checksum: u64]
//! kind 1 = Commit   payload: txn u64, n_pages u32,
//!                            n × (file u32, page u64, image PAGE_SIZE)
//! kind 2 = Checkpoint  payload: empty
//! ```
//!
//! The checksum is a FNV-1a over kind+payload; a torn or corrupt tail
//! record ends recovery (standard WAL semantics), and recovery truncates
//! such a tail away so replay is idempotent.
//!
//! ## Failed appends
//!
//! An append that errors part-way leaves bytes of an *unacknowledged*
//! record in the file. That record must never become visible to recovery:
//! if it did, a transaction whose commit returned `Err` (and which the
//! caller therefore rolled back) could resurrect after a crash, diverging
//! from every state the caller ever observed. So on append failure the
//! log truncates back to the last acknowledged record and syncs; if even
//! that cannot be made durable the log is poisoned — further commits are
//! refused until a successful [`Wal::checkpoint`] rebuilds the log from
//! scratch (safe because checkpoint first makes the data files durable).

use crate::error::{StorageError, StorageResult};
use crate::file::PageId;
use crate::page::PAGE_SIZE;
use crate::vfs::{StdVfs, StorageFile, Vfs};
use std::path::{Path, PathBuf};

const KIND_COMMIT: u8 = 1;
const KIND_CHECKPOINT: u8 = 2;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// One transaction's page after-images as logged at commit:
/// `(stable file number, page, image)` triples.
pub type TxnPages = Vec<(u32, PageId, Box<[u8]>)>;

/// A committed transaction recovered from the log.
#[derive(Debug, PartialEq, Eq)]
pub struct RecoveredTxn {
    /// Transaction id.
    pub txn: u64,
    /// `(stable file number, page, after-image)` triples.
    pub pages: Vec<(u32, PageId, Vec<u8>)>,
}

/// An append-only write-ahead log file.
pub struct Wal {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    /// End offset of the last acknowledged record. Appends always go
    /// here, overwriting any torn garbage from a failed earlier append.
    good_len: u64,
    /// Set when a failed append could not be durably erased; cleared by a
    /// successful checkpoint.
    poisoned: bool,
}

impl Wal {
    /// Open (creating if necessary) the log at `path` on the real file
    /// system.
    pub fn open(path: &Path) -> StorageResult<Wal> {
        Self::open_with(&StdVfs, path)
    }

    /// Open (creating if necessary) the log at `path` through `vfs`.
    pub fn open_with(vfs: &dyn Vfs, path: &Path) -> StorageResult<Wal> {
        let mut file = vfs.open(path)?;
        let good_len = file.len()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            good_len,
            poisoned: false,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn append(&mut self, kind: u8, payload: &[u8]) -> StorageResult<()> {
        if self.poisoned {
            return Err(StorageError::CorruptLog(
                "write-ahead log poisoned by an earlier append failure; \
                 checkpoint to recover"
                    .into(),
            ));
        }
        crate::profile::bump(|c| c.wal_appends += 1);
        let len = 1 + payload.len();
        let mut buf = Vec::with_capacity(4 + len + 8);
        buf.extend_from_slice(&(len as u32).to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(payload);
        buf.extend_from_slice(&fnv1a(&buf[4..]).to_le_bytes());
        let res = self
            .file
            .write_at(self.good_len, &buf)
            .and_then(|()| self.file.sync());
        match res {
            Ok(()) => {
                self.good_len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                // Erase the unacknowledged record so it cannot be taken
                // for committed after a crash. Only a *durable* erase
                // counts; otherwise refuse further appends.
                let erased = self
                    .file
                    .truncate(self.good_len)
                    .and_then(|()| self.file.sync());
                if erased.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Append and fsync a commit record.
    pub fn log_commit(&mut self, txn: u64, pages: &[(u32, PageId, &[u8])]) -> StorageResult<()> {
        let mut payload = Vec::with_capacity(12 + pages.len() * (12 + PAGE_SIZE));
        payload.extend_from_slice(&txn.to_le_bytes());
        payload.extend_from_slice(&(pages.len() as u32).to_le_bytes());
        for (file_no, pid, image) in pages {
            debug_assert_eq!(image.len(), PAGE_SIZE);
            payload.extend_from_slice(&file_no.to_le_bytes());
            payload.extend_from_slice(&pid.0.to_le_bytes());
            payload.extend_from_slice(image);
        }
        self.append(KIND_COMMIT, &payload)
    }

    /// Append and fsync a *batch* of commit records with a single write
    /// and a single sync — the group-commit fast path. The records land
    /// in slice order, which recovery (and therefore the commit-timestamp
    /// assignment that follows a successful batch) preserves. All-or-
    /// nothing at the acknowledgement level: on failure the whole batch
    /// is truncated back (or the log poisoned), exactly like a failed
    /// single append, so no caller ever sees a half-acknowledged batch.
    pub fn log_commit_batch(&mut self, batch: &[(u64, TxnPages)]) -> StorageResult<()> {
        if self.poisoned {
            return Err(StorageError::CorruptLog(
                "write-ahead log poisoned by an earlier append failure; \
                 checkpoint to recover"
                    .into(),
            ));
        }
        let mut buf = Vec::new();
        for (txn, pages) in batch {
            crate::profile::bump(|c| c.wal_appends += 1);
            let mut payload = Vec::with_capacity(12 + pages.len() * (12 + PAGE_SIZE));
            payload.extend_from_slice(&txn.to_le_bytes());
            payload.extend_from_slice(&(pages.len() as u32).to_le_bytes());
            for (file_no, pid, image) in pages {
                debug_assert_eq!(image.len(), PAGE_SIZE);
                payload.extend_from_slice(&file_no.to_le_bytes());
                payload.extend_from_slice(&pid.0.to_le_bytes());
                payload.extend_from_slice(image);
            }
            let start = buf.len();
            buf.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
            buf.push(KIND_COMMIT);
            buf.extend_from_slice(&payload);
            let sum = fnv1a(&buf[start + 4..]);
            buf.extend_from_slice(&sum.to_le_bytes());
        }
        let res = self
            .file
            .write_at(self.good_len, &buf)
            .and_then(|()| self.file.sync());
        match res {
            Ok(()) => {
                self.good_len += buf.len() as u64;
                Ok(())
            }
            Err(e) => {
                let erased = self
                    .file
                    .truncate(self.good_len)
                    .and_then(|()| self.file.sync());
                if erased.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }

    /// Truncate the log and write a checkpoint marker. The caller must
    /// have flushed the data files first. Clears any poison: the data
    /// files are durable, so an empty log is a correct log.
    pub fn checkpoint(&mut self) -> StorageResult<()> {
        self.file.truncate(0)?;
        self.good_len = 0;
        self.poisoned = false;
        self.append(KIND_CHECKPOINT, &[])
    }

    /// Read the committed transactions recorded since the last
    /// checkpoint, in commit order. A torn/corrupt tail record stops the
    /// scan (it was never acknowledged as committed) and is truncated
    /// away, so running recovery twice — e.g. after a crash mid-recovery
    /// — sees the same committed prefix both times.
    pub fn recover(&mut self) -> StorageResult<Vec<RecoveredTxn>> {
        let total = self.file.len()?;
        let mut data = vec![0u8; total as usize];
        self.file.read_at(0, &mut data)?;
        let mut txns = Vec::new();
        let mut off = 0usize;
        while off + 4 <= data.len() {
            let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap()) as usize;
            if off + 4 + len + 8 > data.len() {
                break; // torn tail
            }
            let body = &data[off + 4..off + 4 + len];
            let stored =
                u64::from_le_bytes(data[off + 4 + len..off + 4 + len + 8].try_into().unwrap());
            if fnv1a(body) != stored {
                break; // corrupt tail
            }
            if body.is_empty() {
                break; // zero-length record: torn length prefix
            }
            match body[0] {
                KIND_CHECKPOINT => txns.clear(),
                KIND_COMMIT => {
                    let payload = &body[1..];
                    if payload.len() < 12 {
                        return Err(StorageError::CorruptLog("short commit record".into()));
                    }
                    let txn = u64::from_le_bytes(payload[0..8].try_into().unwrap());
                    let n = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
                    let mut pages = Vec::with_capacity(n);
                    let mut p = 12;
                    for _ in 0..n {
                        if p + 12 + PAGE_SIZE > payload.len() {
                            return Err(StorageError::CorruptLog(
                                "truncated page image in commit record".into(),
                            ));
                        }
                        let file_no = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap());
                        let pid = u64::from_le_bytes(payload[p + 4..p + 12].try_into().unwrap());
                        let image = payload[p + 12..p + 12 + PAGE_SIZE].to_vec();
                        pages.push((file_no, PageId(pid), image));
                        p += 12 + PAGE_SIZE;
                    }
                    txns.push(RecoveredTxn { txn, pages });
                }
                k => return Err(StorageError::CorruptLog(format!("unknown record kind {k}"))),
            }
            off += 4 + len + 8;
        }
        if (off as u64) < total {
            self.file.truncate(off as u64)?;
        }
        self.good_len = off as u64;
        Ok(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal(name: &str) -> Wal {
        let d = std::env::temp_dir().join(format!("coral-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        Wal::open(&p).unwrap()
    }

    fn image(fill: u8) -> Vec<u8> {
        vec![fill; PAGE_SIZE]
    }

    #[test]
    fn commit_then_recover() {
        let mut w = wal("basic.wal");
        let img1 = image(1);
        let img2 = image(2);
        w.log_commit(7, &[(0, PageId(3), &img1), (1, PageId(0), &img2)])
            .unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, 7);
        assert_eq!(txns[0].pages.len(), 2);
        assert_eq!(txns[0].pages[0], (0, PageId(3), img1));
        assert_eq!(txns[0].pages[1], (1, PageId(0), img2));
    }

    #[test]
    fn checkpoint_clears_history() {
        let mut w = wal("ckpt.wal");
        w.log_commit(1, &[(0, PageId(0), &image(1))]).unwrap();
        w.checkpoint().unwrap();
        w.log_commit(2, &[(0, PageId(1), &image(2))]).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0].txn, 2);
    }

    #[test]
    fn torn_tail_is_ignored_and_trimmed() {
        let path = {
            let mut w = wal("torn.wal");
            w.log_commit(1, &[(0, PageId(0), &image(9))]).unwrap();
            w.log_commit(2, &[(0, PageId(1), &image(8))]).unwrap();
            w.path().to_path_buf()
        };
        // Chop bytes off the tail, simulating a crash mid-write.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 100]).unwrap();
        let mut w = Wal::open(&path).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1, "only the fully written txn survives");
        assert_eq!(txns[0].txn, 1);
        // The torn tail was truncated: a second recovery pass (crash
        // mid-recovery) sees the identical committed prefix, and a new
        // commit starts cleanly after record 1.
        let len_after = std::fs::metadata(&path).unwrap().len();
        assert!(len_after < data.len() as u64 - 100);
        assert_eq!(w.recover().unwrap().len(), 1);
        w.log_commit(3, &[(0, PageId(2), &image(7))]).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(
            txns.iter().map(|t| t.txn).collect::<Vec<_>>(),
            vec![1, 3],
            "new commit appends after the trimmed tail"
        );
    }

    #[test]
    fn corrupt_checksum_stops_recovery() {
        let path = {
            let mut w = wal("crc.wal");
            w.log_commit(1, &[(0, PageId(0), &image(1))]).unwrap();
            w.log_commit(2, &[(0, PageId(1), &image(2))]).unwrap();
            w.path().to_path_buf()
        };
        let mut data = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* record's payload.
        let rec1_len = 4 + (1 + 8 + 4 + 12 + PAGE_SIZE) + 8;
        data[rec1_len + 40] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();
        let mut w = Wal::open(&path).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(txns.len(), 1);
    }

    #[test]
    fn empty_log_recovers_nothing() {
        let mut w = wal("empty.wal");
        assert!(w.recover().unwrap().is_empty());
    }

    #[test]
    fn batch_commit_recovers_in_order() {
        let mut w = wal("batch.wal");
        let batch: Vec<(u64, super::TxnPages)> = (0..4u64)
            .map(|t| {
                (
                    t + 10,
                    vec![(0u32, PageId(t), image(t as u8).into_boxed_slice())],
                )
            })
            .collect();
        w.log_commit_batch(&batch).unwrap();
        let txns = w.recover().unwrap();
        assert_eq!(
            txns.iter().map(|t| t.txn).collect::<Vec<_>>(),
            vec![10, 11, 12, 13],
            "batch preserves commit order"
        );
        assert_eq!(txns[2].pages[0].2, image(2));
    }

    #[test]
    fn multiple_commits_in_order() {
        let mut w = wal("order.wal");
        for t in 0..5u64 {
            w.log_commit(t, &[(0, PageId(t), &image(t as u8))]).unwrap();
        }
        let txns = w.recover().unwrap();
        assert_eq!(
            txns.iter().map(|t| t.txn).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4]
        );
    }
}
