//! The storage server and its client handle.
//!
//! EXODUS "has a client-server architecture; CORAL is the client process,
//! and maintains buffers for persistent relations" (§3.2). In this
//! substitute the server is an in-process object owning the catalog of
//! named page files, the buffer pool and the write-ahead log;
//! [`StorageClient`] (a shared handle) is the only way the engine touches
//! persistent data, preserving Figure 1's boundary. "Multiple CORAL
//! processes could interact by accessing persistent data stored using the
//! EXODUS storage manager" — here, multiple engine components share the
//! one server through cloned handles.
//!
//! On open, the server recovers: committed transactions found in the log
//! are replayed into the data files before anything is cached.

use crate::btree::BTree;
use crate::buffer::{BufferPool, BufferStats};
use crate::check::CheckReport;
use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageFile, PageId};
use crate::heap::HeapFile;
use crate::page::PAGE_SIZE;
use crate::vfs::{StdVfs, Vfs};
use crate::wal::Wal;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::{Mutex, RwLock};

/// Shared handle to a storage server.
pub type StorageClient = Arc<StorageServer>;

struct ServerState {
    catalog: HashMap<String, u32>,
    next_file: u32,
    wal: Wal,
    next_txn: u64,
}

/// A single-directory storage server: catalog + page files + buffer pool
/// + write-ahead log.
pub struct StorageServer {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    pool: Arc<BufferPool>,
    state: Mutex<ServerState>,
    /// Named readers-writer locks handed out to storage structures whose
    /// operations span multiple pages (see [`StorageServer::named_lock`]).
    locks: Mutex<HashMap<String, Arc<RwLock<()>>>>,
}

impl StorageServer {
    /// Open (creating if necessary) a server over `dir`, with a buffer
    /// pool of `frames` pages, on the real file system. Runs crash
    /// recovery.
    pub fn open(dir: &Path, frames: usize) -> StorageResult<StorageClient> {
        Self::open_with_vfs(dir, frames, Arc::new(StdVfs))
    }

    /// Open a server over `dir` through `vfs`. All file access — data
    /// pages, the write-ahead log, and the catalog — goes through the
    /// VFS, so a simulated file system (the `coral-sim` crate) can inject
    /// faults and crash points under every byte the server persists.
    pub fn open_with_vfs(
        dir: &Path,
        frames: usize,
        vfs: Arc<dyn Vfs>,
    ) -> StorageResult<StorageClient> {
        vfs.create_dir_all(dir)?;
        let catalog = Self::read_catalog(vfs.as_ref(), &dir.join("catalog"))?;
        let mut wal = Wal::open_with(vfs.as_ref(), &dir.join("wal.log"))?;

        // Recovery: replay committed after-images straight into the data
        // files, then checkpoint. Replay is idempotent: images are whole
        // pages written at fixed offsets, so running it twice — e.g.
        // after a crash mid-recovery — converges on the same state.
        let recovered = wal.recover()?;
        if !recovered.is_empty() {
            let mut files: HashMap<u32, PageFile> = HashMap::new();
            for txn in &recovered {
                for (file_no, pid, image) in &txn.pages {
                    let f = match files.entry(*file_no) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => e.insert(
                            PageFile::open_with(vfs.as_ref(), &Self::file_path(dir, *file_no))?,
                        ),
                    };
                    while f.num_pages() <= pid.0 {
                        f.allocate()?;
                    }
                    debug_assert_eq!(image.len(), PAGE_SIZE);
                    f.write_page(*pid, image)?;
                }
            }
            for f in files.values_mut() {
                f.sync()?;
            }
            wal.checkpoint()?;
        }

        let pool = Arc::new(BufferPool::new(frames));
        let mut next_file = 0;
        for &no in catalog.values() {
            let pf = PageFile::open_with(vfs.as_ref(), &Self::file_path(dir, no))?;
            pool.register_file(FileId(no), pf);
            next_file = next_file.max(no + 1);
        }
        Ok(Arc::new(StorageServer {
            dir: dir.to_path_buf(),
            vfs,
            pool,
            state: Mutex::new(ServerState {
                catalog,
                next_file,
                wal,
                next_txn: 1,
            }),
            locks: Mutex::new(HashMap::new()),
        }))
    }

    fn file_path(dir: &Path, no: u32) -> PathBuf {
        dir.join(format!("f{no}.pages"))
    }

    fn read_catalog(vfs: &dyn Vfs, path: &Path) -> StorageResult<HashMap<String, u32>> {
        let mut catalog = HashMap::new();
        if let Some(text) = vfs.read_to_string(path)? {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (no, name) = line
                    .split_once(' ')
                    .ok_or_else(|| StorageError::Corrupt(format!("bad catalog line: {line:?}")))?;
                let no: u32 = no.parse().map_err(|_| {
                    StorageError::Corrupt(format!("bad catalog file number: {line:?}"))
                })?;
                catalog.insert(name.to_string(), no);
            }
        }
        Ok(catalog)
    }

    fn write_catalog(&self, state: &ServerState) -> StorageResult<()> {
        let mut lines: Vec<String> = state
            .catalog
            .iter()
            .map(|(name, no)| format!("{no} {name}"))
            .collect();
        lines.sort();
        self.vfs.replace(
            &self.dir.join("catalog"),
            (lines.join("\n") + "\n").as_bytes(),
        )
    }

    /// The server's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The readers-writer lock registered under `name` (created on first
    /// use). The buffer pool only serializes access *per page*, so any
    /// structure whose mutations are multi-page read-copy-modify-write
    /// sequences (B+-tree splits, heap + index updates of one relation)
    /// must hold the write side of a shared lock across the whole
    /// mutation. All clients asking for the same name — e.g. every
    /// server session touching one persistent relation — get the same
    /// lock, because each session opens its own structure handles over
    /// the shared pool.
    pub fn named_lock(&self, name: &str) -> Arc<RwLock<()>> {
        Arc::clone(
            self.locks
                .lock()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Look up or create the named page file.
    pub fn file(&self, name: &str) -> StorageResult<FileId> {
        if name.contains('\n') || name.contains(' ') {
            return Err(StorageError::Corrupt(format!(
                "file names may not contain spaces or newlines: {name:?}"
            )));
        }
        let mut state = self.state.lock().unwrap();
        if let Some(&no) = state.catalog.get(name) {
            return Ok(FileId(no));
        }
        let no = state.next_file;
        state.next_file += 1;
        state.catalog.insert(name.to_string(), no);
        self.write_catalog(&state)?;
        let pf = PageFile::open_with(self.vfs.as_ref(), &Self::file_path(&self.dir, no))?;
        self.pool.register_file(FileId(no), pf);
        Ok(FileId(no))
    }

    /// True iff a file with this name exists.
    pub fn file_exists(&self, name: &str) -> bool {
        self.state.lock().unwrap().catalog.contains_key(name)
    }

    /// Named files in the catalog.
    pub fn list_files(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.lock().unwrap().catalog.keys().cloned().collect();
        names.sort();
        names
    }

    /// Open the named heap file (creating its page file if needed).
    pub fn heap(&self, name: &str) -> StorageResult<HeapFile> {
        let fid = self.file(name)?;
        Ok(HeapFile::new(Arc::clone(&self.pool), fid))
    }

    /// Open the named B+-tree (creating/initializing if needed).
    pub fn btree(&self, name: &str) -> StorageResult<BTree> {
        let fid = self.file(name)?;
        BTree::open(Arc::clone(&self.pool), fid)
    }

    /// Begin a transaction (single-user: at most one open).
    pub fn begin(&self) -> StorageResult<u64> {
        self.pool.begin_txn()?;
        let mut state = self.state.lock().unwrap();
        let id = state.next_txn;
        state.next_txn += 1;
        Ok(id)
    }

    /// Commit the open transaction: log after-images, fsync, release.
    ///
    /// The log write happens *before* the pool transaction is closed: if
    /// appending to the log fails, the pool rolls back to the
    /// before-images and the commit returns the error — the caller
    /// observes a clean abort. (Closing the pool transaction first would
    /// leave unlogged dirty pages unpinned and free to reach disk, a
    /// state recovery knows nothing about.)
    pub fn commit(&self, txn: u64) -> StorageResult<()> {
        let images = self.pool.txn_images()?;
        let logged = {
            let mut state = self.state.lock().unwrap();
            let refs: Vec<(u32, PageId, &[u8])> = images
                .iter()
                .map(|((fid, pid), img)| (fid.0, *pid, img.as_ref()))
                .collect();
            state.wal.log_commit(txn, &refs)
        };
        match logged {
            Ok(()) => {
                self.pool.commit_txn()?;
                Ok(())
            }
            Err(e) => {
                // Roll back; if even that fails, the log error still wins
                // (the caller can only treat both as "commit failed").
                let _ = self.pool.abort_txn();
                Err(e)
            }
        }
    }

    /// Abort the open transaction, restoring before-images.
    pub fn abort(&self, _txn: u64) -> StorageResult<()> {
        self.pool.abort_txn()
    }

    /// Flush all data files and truncate the log.
    pub fn checkpoint(&self) -> StorageResult<()> {
        self.pool.flush_all()?;
        self.state.lock().unwrap().wal.checkpoint()
    }

    /// Structural integrity check over every cataloged file (see
    /// [`crate::check`]).
    pub fn check(&self) -> StorageResult<CheckReport> {
        crate::check::check_server(self)
    }

    /// Buffer pool counters.
    pub fn stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Zero the buffer pool counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("coral-server-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn heap_and_btree_roundtrip_through_server() {
        let dir = fresh_dir("basic");
        let srv = StorageServer::open(&dir, 32).unwrap();
        let heap = srv.heap("edges.data").unwrap();
        let rid = heap.insert(b"a->b").unwrap();
        let idx = srv.btree("edges.idx0").unwrap();
        idx.insert(b"a:0").unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"a->b");
        assert!(idx.contains(b"a:0").unwrap());
        assert_eq!(srv.list_files(), vec!["edges.data", "edges.idx0"]);
        assert!(srv.file_exists("edges.data"));
        assert!(!srv.file_exists("nothing"));
    }

    #[test]
    fn data_survives_checkpoint_and_reopen() {
        let dir = fresh_dir("reopen");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            for i in 0..100u32 {
                heap.insert(format!("tuple-{i}").as_bytes()).unwrap();
            }
            srv.checkpoint().unwrap();
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            assert_eq!(heap.scan().count(), 100);
        }
    }

    #[test]
    fn committed_txn_survives_crash_without_checkpoint() {
        let dir = fresh_dir("crash");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let txn = srv.begin().unwrap();
            heap.insert(b"committed-tuple").unwrap();
            srv.commit(txn).unwrap();
            // No checkpoint: dirty pages are only in the pool + WAL.
            // Dropping the server simulates a crash (nothing flushed).
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
            assert_eq!(all, vec![b"committed-tuple".to_vec()]);
        }
    }

    #[test]
    fn aborted_txn_leaves_no_trace() {
        let dir = fresh_dir("abort");
        let srv = StorageServer::open(&dir, 16).unwrap();
        let heap = srv.heap("r.data").unwrap();
        let rid = heap.insert(b"keep").unwrap();
        srv.checkpoint().unwrap();
        let txn = srv.begin().unwrap();
        heap.insert(b"discard").unwrap();
        srv.abort(txn).unwrap();
        let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(all, vec![b"keep".to_vec()]);
        assert_eq!(heap.get(rid).unwrap(), b"keep");
    }

    #[test]
    fn uncommitted_txn_lost_on_crash() {
        let dir = fresh_dir("uncommitted");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            heap.insert(b"base").unwrap();
            srv.checkpoint().unwrap();
            let _txn = srv.begin().unwrap();
            heap.insert(b"in-flight").unwrap();
            // Crash: neither commit nor abort nor checkpoint.
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
            assert_eq!(all, vec![b"base".to_vec()]);
        }
    }

    #[test]
    fn file_ids_stable_across_reopen() {
        let dir = fresh_dir("stable");
        let (a1, b1) = {
            let srv = StorageServer::open(&dir, 8).unwrap();
            (srv.file("alpha").unwrap(), srv.file("beta").unwrap())
        };
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert_eq!(srv.file("alpha").unwrap(), a1);
        assert_eq!(srv.file("beta").unwrap(), b1);
        assert_ne!(a1, b1);
    }

    #[test]
    fn bad_file_names_rejected() {
        let dir = fresh_dir("names");
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert!(srv.file("has space").is_err());
        assert!(srv.file("has\nnewline").is_err());
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn fresh_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coral-server-mt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// "Multiple CORAL processes could interact by accessing persistent
    /// data stored using the EXODUS storage manager" (§2): here multiple
    /// threads share one server through cloned client handles.
    #[test]
    fn concurrent_heap_writers_and_readers() {
        let srv = StorageServer::open(&fresh_dir("rw"), 32).unwrap();
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let client: StorageClient = Arc::clone(&srv);
                std::thread::spawn(move || {
                    let heap = client.heap(&format!("shard{w}.data")).unwrap();
                    let mut rids = Vec::new();
                    for i in 0..200u32 {
                        rids.push(heap.insert(format!("w{w}-r{i}").as_bytes()).unwrap());
                    }
                    (w, rids)
                })
            })
            .collect();
        let results: Vec<_> = writers.into_iter().map(|h| h.join().unwrap()).collect();
        // Every record is readable with the written content.
        for (w, rids) in results {
            let heap = srv.heap(&format!("shard{w}.data")).unwrap();
            for (i, rid) in rids.iter().enumerate() {
                assert_eq!(heap.get(*rid).unwrap(), format!("w{w}-r{i}").as_bytes());
            }
            assert_eq!(heap.scan().count(), 200);
        }
    }

    #[test]
    fn concurrent_btree_readers() {
        let srv = StorageServer::open(&fresh_dir("bt"), 16).unwrap();
        let tree = srv.btree("shared.bt").unwrap();
        for i in 0..500u32 {
            tree.insert(format!("k{i:05}").as_bytes()).unwrap();
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let client: StorageClient = Arc::clone(&srv);
                std::thread::spawn(move || {
                    let tree = client.btree("shared.bt").unwrap();
                    let mut hits = 0;
                    for i in (0..500u32).step_by(7) {
                        if tree.contains(format!("k{i:05}").as_bytes()).unwrap() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        for h in readers {
            assert_eq!(h.join().unwrap(), 72);
        }
    }
}
