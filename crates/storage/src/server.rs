//! The storage server and its client handle.
//!
//! EXODUS "has a client-server architecture; CORAL is the client process,
//! and maintains buffers for persistent relations" (§3.2). In this
//! substitute the server is an in-process object owning the catalog of
//! named page files, the buffer pool and the write-ahead log;
//! [`StorageClient`] (a shared handle) is the only way the engine touches
//! persistent data, preserving Figure 1's boundary. "Multiple CORAL
//! processes could interact by accessing persistent data stored using the
//! EXODUS storage manager" — here, multiple engine components share the
//! one server through cloned handles.
//!
//! On open, the server recovers: committed transactions found in the log
//! are replayed into the data files before anything is cached.

use crate::btree::BTree;
use crate::buffer::{BufferPool, BufferStats, PageImage};
use crate::check::CheckReport;
use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageFile, PageId};
use crate::heap::HeapFile;
use crate::page::PAGE_SIZE;
use crate::tx::{PageKey, TxStats, View};
use crate::vfs::{StdVfs, Vfs};
use crate::wal::Wal;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::sync::{Condvar, Mutex, RwLock};
use std::time::Duration;

/// Shared handle to a storage server.
pub type StorageClient = Arc<StorageServer>;

struct ServerState {
    catalog: HashMap<String, u32>,
    next_file: u32,
    wal: Wal,
    next_txn: u64,
    /// Transactions begun and not yet committed/aborted. Commit and
    /// abort refuse ids that are not here ([`StorageError::UnknownTxn`]),
    /// catching double-aborts and mismatched begin/commit pairs.
    active: HashSet<u64>,
}

/// Group-commit rendezvous: the first committer becomes the leader and
/// flushes everyone queued behind it with one WAL write+fsync.
#[derive(Default)]
struct GcInner {
    queue: Vec<u64>,
    leader_active: bool,
    results: HashMap<u64, StorageResult<()>>,
}

/// A single-directory storage server: catalog + page files + buffer pool
/// + write-ahead log.
pub struct StorageServer {
    dir: PathBuf,
    vfs: Arc<dyn Vfs>,
    pool: Arc<BufferPool>,
    state: Mutex<ServerState>,
    /// Whether the MVCC concurrency manager is on (`CORAL_MVCC`, default
    /// on; `CORAL_MVCC=0` restores the PR-2 single-slot + RwLock path).
    mvcc: bool,
    /// Named readers-writer locks handed out to storage structures whose
    /// operations span multiple pages (see [`StorageServer::named_lock`]).
    locks: Mutex<HashMap<String, Arc<RwLock<()>>>>,
    /// Group-commit queue (MVCC mode only).
    gc: Mutex<GcInner>,
    gc_cv: Condvar,
    /// Serializes commit-batch install against checkpoint, so the WAL is
    /// never truncated between logging a commit and installing it.
    commit_mx: Mutex<()>,
    /// Per-relation mutation epochs: bumped by `coral-rel` on every
    /// insert/delete so cross-session observers (the maintained-state
    /// machinery of `coral-core`) can tell whether they saw every change.
    epochs: Mutex<HashMap<String, u64>>,
}

impl StorageServer {
    /// Open (creating if necessary) a server over `dir`, with a buffer
    /// pool of `frames` pages, on the real file system. Runs crash
    /// recovery.
    pub fn open(dir: &Path, frames: usize) -> StorageResult<StorageClient> {
        Self::open_with_vfs(dir, frames, Arc::new(StdVfs))
    }

    /// Open a server over `dir` through `vfs`. All file access — data
    /// pages, the write-ahead log, and the catalog — goes through the
    /// VFS, so a simulated file system (the `coral-sim` crate) can inject
    /// faults and crash points under every byte the server persists.
    /// MVCC is on unless `CORAL_MVCC=0`.
    pub fn open_with_vfs(
        dir: &Path,
        frames: usize,
        vfs: Arc<dyn Vfs>,
    ) -> StorageResult<StorageClient> {
        let mvcc = std::env::var("CORAL_MVCC").map_or(true, |v| v != "0");
        Self::open_with_mode(dir, frames, vfs, mvcc)
    }

    /// Open with an explicit concurrency mode (`mvcc = false` is the
    /// legacy single-slot-transaction + relation-RwLock path).
    pub fn open_with_mode(
        dir: &Path,
        frames: usize,
        vfs: Arc<dyn Vfs>,
        mvcc: bool,
    ) -> StorageResult<StorageClient> {
        vfs.create_dir_all(dir)?;
        let catalog = Self::read_catalog(vfs.as_ref(), &dir.join("catalog"))?;
        let mut wal = Wal::open_with(vfs.as_ref(), &dir.join("wal.log"))?;

        // Recovery: replay committed after-images straight into the data
        // files, then checkpoint. Replay is idempotent: images are whole
        // pages written at fixed offsets, so running it twice — e.g.
        // after a crash mid-recovery — converges on the same state.
        let recovered = wal.recover()?;
        if !recovered.is_empty() {
            let mut files: HashMap<u32, PageFile> = HashMap::new();
            for txn in &recovered {
                for (file_no, pid, image) in &txn.pages {
                    let f = match files.entry(*file_no) {
                        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                        std::collections::hash_map::Entry::Vacant(e) => e.insert(
                            PageFile::open_with(vfs.as_ref(), &Self::file_path(dir, *file_no))?,
                        ),
                    };
                    while f.num_pages() <= pid.0 {
                        f.allocate()?;
                    }
                    debug_assert_eq!(image.len(), PAGE_SIZE);
                    f.write_page(*pid, image)?;
                }
            }
            for f in files.values_mut() {
                f.sync()?;
            }
            wal.checkpoint()?;
        }

        let pool = Arc::new(if mvcc {
            BufferPool::new_mvcc(frames)
        } else {
            BufferPool::new(frames)
        });
        let mut next_file = 0;
        for &no in catalog.values() {
            let pf = PageFile::open_with(vfs.as_ref(), &Self::file_path(dir, no))?;
            pool.register_file(FileId(no), pf);
            next_file = next_file.max(no + 1);
        }
        Ok(Arc::new(StorageServer {
            dir: dir.to_path_buf(),
            vfs,
            pool,
            state: Mutex::new(ServerState {
                catalog,
                next_file,
                wal,
                next_txn: 1,
                active: HashSet::new(),
            }),
            mvcc,
            locks: Mutex::new(HashMap::new()),
            gc: Mutex::new(GcInner::default()),
            gc_cv: Condvar::new(),
            commit_mx: Mutex::new(()),
            epochs: Mutex::new(HashMap::new()),
        }))
    }

    fn file_path(dir: &Path, no: u32) -> PathBuf {
        dir.join(format!("f{no}.pages"))
    }

    fn read_catalog(vfs: &dyn Vfs, path: &Path) -> StorageResult<HashMap<String, u32>> {
        let mut catalog = HashMap::new();
        if let Some(text) = vfs.read_to_string(path)? {
            for line in text.lines() {
                let line = line.trim();
                if line.is_empty() {
                    continue;
                }
                let (no, name) = line
                    .split_once(' ')
                    .ok_or_else(|| StorageError::Corrupt(format!("bad catalog line: {line:?}")))?;
                let no: u32 = no.parse().map_err(|_| {
                    StorageError::Corrupt(format!("bad catalog file number: {line:?}"))
                })?;
                catalog.insert(name.to_string(), no);
            }
        }
        Ok(catalog)
    }

    fn write_catalog(&self, state: &ServerState) -> StorageResult<()> {
        let mut lines: Vec<String> = state
            .catalog
            .iter()
            .map(|(name, no)| format!("{no} {name}"))
            .collect();
        lines.sort();
        self.vfs.replace(
            &self.dir.join("catalog"),
            (lines.join("\n") + "\n").as_bytes(),
        )
    }

    /// The server's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The shared buffer pool.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// The readers-writer lock registered under `name` (created on first
    /// use). The buffer pool only serializes access *per page*, so any
    /// structure whose mutations are multi-page read-copy-modify-write
    /// sequences (B+-tree splits, heap + index updates of one relation)
    /// must hold the write side of a shared lock across the whole
    /// mutation. All clients asking for the same name — e.g. every
    /// server session touching one persistent relation — get the same
    /// lock, because each session opens its own structure handles over
    /// the shared pool.
    pub fn named_lock(&self, name: &str) -> Arc<RwLock<()>> {
        let mut locks = self.locks.lock().unwrap();
        // Garbage-collect entries nobody holds anymore (relations come
        // and go over a server's lifetime; the registry must not grow
        // unboundedly). `strong_count == 1` means only the registry's
        // own Arc is left.
        locks.retain(|_, l| Arc::strong_count(l) > 1);
        Arc::clone(locks.entry(name.to_string()).or_default())
    }

    /// Drop the named lock's registry entry (called when its structure
    /// is dropped or cleared). Outstanding handles keep their Arc; a
    /// later `named_lock` for the same name starts fresh.
    pub fn drop_named_lock(&self, name: &str) {
        self.locks.lock().unwrap().remove(name);
    }

    /// Number of live entries in the named-lock registry (test hook).
    pub fn named_lock_count(&self) -> usize {
        let mut locks = self.locks.lock().unwrap();
        locks.retain(|_, l| Arc::strong_count(l) > 1);
        locks.len()
    }

    /// Bump and return the mutation epoch of `rel` (called by the
    /// relation layer after every applied insert/delete).
    pub fn bump_epoch(&self, rel: &str) -> u64 {
        let mut epochs = self.epochs.lock().unwrap();
        let e = epochs.entry(rel.to_string()).or_insert(0);
        *e += 1;
        *e
    }

    /// Current mutation epoch of `rel` (0 = never mutated this run).
    pub fn epoch(&self, rel: &str) -> u64 {
        self.epochs.lock().unwrap().get(rel).copied().unwrap_or(0)
    }

    /// Forget the epoch entries of a dropped/cleared relation.
    pub fn drop_epoch(&self, rel: &str) {
        let mut epochs = self.epochs.lock().unwrap();
        epochs.remove(rel);
        epochs.remove(&Self::schema_epoch_key(rel));
    }

    /// Key for the schema (index-set) epoch of `rel` in the shared
    /// epochs map. The NUL separator cannot appear in a relation name
    /// that reaches storage (file names reject control characters at
    /// the catalog layer), so the keyspaces cannot collide.
    fn schema_epoch_key(rel: &str) -> String {
        format!("{rel}\u{0}schema")
    }

    /// Bump and return the schema epoch of `rel` (called by the
    /// relation layer after persisting a changed index set). Handles
    /// opened by other sessions compare this against the epoch they
    /// last loaded the schema at, and re-read the index list on a
    /// mismatch — otherwise their writes would silently skip an index
    /// another session created after they opened.
    pub fn bump_schema_epoch(&self, rel: &str) -> u64 {
        let mut epochs = self.epochs.lock().unwrap();
        let e = epochs.entry(Self::schema_epoch_key(rel)).or_insert(0);
        *e += 1;
        *e
    }

    /// Raise `rel`'s schema epoch to at least `at_least`. Called at
    /// relation open with the generation stamped in the persisted schema
    /// record: the epoch counter is in-memory and restarts at zero, so
    /// without seeding, post-restart bumps could stay below a generation
    /// an earlier run persisted and stale-handle detection would miss
    /// real changes.
    pub fn seed_schema_epoch(&self, rel: &str, at_least: u64) {
        let mut epochs = self.epochs.lock().unwrap();
        let e = epochs.entry(Self::schema_epoch_key(rel)).or_insert(0);
        *e = (*e).max(at_least);
    }

    /// Current schema epoch of `rel` (0 = unchanged this run).
    pub fn schema_epoch(&self, rel: &str) -> u64 {
        self.epochs
            .lock()
            .unwrap()
            .get(&Self::schema_epoch_key(rel))
            .copied()
            .unwrap_or(0)
    }

    /// Look up or create the named page file.
    pub fn file(&self, name: &str) -> StorageResult<FileId> {
        if name.contains('\n') || name.contains(' ') {
            return Err(StorageError::Corrupt(format!(
                "file names may not contain spaces or newlines: {name:?}"
            )));
        }
        let mut state = self.state.lock().unwrap();
        if let Some(&no) = state.catalog.get(name) {
            return Ok(FileId(no));
        }
        let no = state.next_file;
        state.next_file += 1;
        state.catalog.insert(name.to_string(), no);
        self.write_catalog(&state)?;
        let pf = PageFile::open_with(self.vfs.as_ref(), &Self::file_path(&self.dir, no))?;
        self.pool.register_file(FileId(no), pf);
        Ok(FileId(no))
    }

    /// True iff a file with this name exists.
    pub fn file_exists(&self, name: &str) -> bool {
        self.state.lock().unwrap().catalog.contains_key(name)
    }

    /// Named files in the catalog.
    pub fn list_files(&self) -> Vec<String> {
        let mut names: Vec<String> = self.state.lock().unwrap().catalog.keys().cloned().collect();
        names.sort();
        names
    }

    /// Open the named heap file (creating its page file if needed).
    pub fn heap(&self, name: &str) -> StorageResult<HeapFile> {
        let fid = self.file(name)?;
        Ok(HeapFile::new(Arc::clone(&self.pool), fid))
    }

    /// Open the named B+-tree (creating/initializing if needed).
    pub fn btree(&self, name: &str) -> StorageResult<BTree> {
        let fid = self.file(name)?;
        BTree::open(Arc::clone(&self.pool), fid)
    }

    /// Open the named B+-tree with all accesses — including a new file's
    /// meta initialization — routed through `view`. Transactions creating
    /// trees (e.g. an index build) must use this so the initialization
    /// writes belong to the transaction instead of being ambiguous live
    /// writes.
    pub fn btree_with_view(&self, name: &str, view: View) -> StorageResult<BTree> {
        let fid = self.file(name)?;
        BTree::open_with_view(Arc::clone(&self.pool), fid, view)
    }

    /// True iff the MVCC concurrency manager is on.
    pub fn mvcc_enabled(&self) -> bool {
        self.mvcc
    }

    /// Set the page write-lock wait budget (MVCC mode). Zero makes
    /// contended acquisitions fail immediately — deterministic for the
    /// simulator.
    pub fn set_lock_timeout(&self, timeout: Duration) {
        self.pool.set_lock_timeout(timeout);
    }

    /// Transaction counters (all zero under `CORAL_MVCC=0`).
    pub fn tx_stats(&self) -> TxStats {
        self.pool.tx_stats()
    }

    /// Number of transactions begun and not yet committed/aborted.
    pub fn active_txn_count(&self) -> usize {
        self.state.lock().unwrap().active.len()
    }

    /// Begin a transaction. Under MVCC any number may be open, each
    /// reading a snapshot taken here; in legacy mode at most one.
    pub fn begin(&self) -> StorageResult<u64> {
        let mut state = self.state.lock().unwrap();
        let id = state.next_txn;
        if self.mvcc {
            self.pool.tx_begin(id)?;
        } else {
            self.pool.begin_txn()?;
        }
        state.next_txn += 1;
        state.active.insert(id);
        Ok(id)
    }

    /// Commit transaction `txn`: log after-images, fsync, release.
    ///
    /// The log write happens *before* the pool transaction is closed: if
    /// appending to the log fails, the pool rolls back to the
    /// before-images and the commit returns the error — the caller
    /// observes a clean abort. (Closing the pool transaction first would
    /// leave unlogged dirty pages unpinned and free to reach disk, a
    /// state recovery knows nothing about.)
    ///
    /// Under MVCC, commits are *grouped*: the first session to arrive
    /// becomes the leader and flushes every transaction queued behind it
    /// with one WAL write and one fsync, then installs them in log order
    /// (the commit-ordering barrier: commit timestamps are assigned in
    /// the order the WAL persisted). A validation failure
    /// ([`StorageError::TxnConflict`]) aborts that transaction only; the
    /// caller retries in a fresh transaction.
    ///
    /// Either way the transaction is *over* when this returns: committed
    /// on `Ok`, aborted on `Err`.
    pub fn commit(&self, txn: u64) -> StorageResult<()> {
        {
            let state = self.state.lock().unwrap();
            if !state.active.contains(&txn) {
                return Err(StorageError::UnknownTxn(txn));
            }
        }
        let result = if self.mvcc {
            self.group_commit(txn)
        } else {
            self.legacy_commit(txn)
        };
        self.state.lock().unwrap().active.remove(&txn);
        result
    }

    fn legacy_commit(&self, txn: u64) -> StorageResult<()> {
        let images = self.pool.txn_images()?;
        let logged = {
            let mut state = self.state.lock().unwrap();
            let refs: Vec<(u32, PageId, &[u8])> = images
                .iter()
                .map(|((fid, pid), img)| (fid.0, *pid, img.as_ref()))
                .collect();
            state.wal.log_commit(txn, &refs)
        };
        match logged {
            Ok(()) => {
                self.pool.commit_txn()?;
                Ok(())
            }
            Err(e) => {
                // Roll back; if even that fails, the log error still wins
                // (the caller can only treat both as "commit failed").
                let _ = self.pool.abort_txn();
                Err(e)
            }
        }
    }

    /// Queue `txn` for commit; lead a batch or wait for the leader.
    fn group_commit(&self, txn: u64) -> StorageResult<()> {
        let mut g = self.gc.lock().unwrap();
        g.queue.push(txn);
        while g.leader_active {
            if let Some(res) = g.results.remove(&txn) {
                return res;
            }
            g = self.gc_cv.wait(g).unwrap();
        }
        // The last leader exited; it may already have flushed us.
        if let Some(res) = g.results.remove(&txn) {
            return res;
        }
        g.leader_active = true;
        let mut mine = None;
        while !g.queue.is_empty() {
            let batch = std::mem::take(&mut g.queue);
            drop(g);
            let outcomes = self.commit_batch(&batch);
            g = self.gc.lock().unwrap();
            for (id, res) in outcomes {
                if id == txn {
                    mine = Some(res);
                } else {
                    g.results.insert(id, res);
                }
            }
            self.gc_cv.notify_all();
        }
        g.leader_active = false;
        self.gc_cv.notify_all();
        drop(g);
        mine.unwrap_or_else(|| {
            Err(StorageError::Corrupt(format!(
                "group-commit leader lost its own transaction {txn}"
            )))
        })
    }

    /// Validate, log (one fsync) and install a batch of transactions.
    fn commit_batch(&self, batch: &[u64]) -> Vec<(u64, StorageResult<()>)> {
        // Exclude checkpoint for the whole batch: the WAL must not be
        // truncated between logging these commits and installing them.
        let _ckpt_guard = self.commit_mx.lock().unwrap();
        let mut outcomes = Vec::with_capacity(batch.len());
        let mut batch_written: HashSet<PageKey> = HashSet::new();
        let mut prepared: Vec<(u64, Vec<PageImage>)> = Vec::new();
        for &id in batch {
            match self.pool.tx_prepare(id, &batch_written) {
                Ok(images) => {
                    batch_written.extend(images.iter().map(|(k, _)| *k));
                    prepared.push((id, images));
                }
                Err(e) => {
                    let _ = self.pool.tx_abort(id);
                    outcomes.push((id, Err(e)));
                }
            }
        }
        if prepared.is_empty() {
            return outcomes;
        }
        // Read-only transactions have nothing to redo; skip their log
        // records but still install them (ends the txn, orders it).
        let log_batch: Vec<(u64, crate::wal::TxnPages)> = prepared
            .iter()
            .filter(|(_, images)| !images.is_empty())
            .map(|(id, images)| {
                let pages = images
                    .iter()
                    .map(|((fid, pid), img)| (fid.0, *pid, img.clone()))
                    .collect();
                (*id, pages)
            })
            .collect();
        let logged = if log_batch.is_empty() {
            Ok(())
        } else {
            self.state.lock().unwrap().wal.log_commit_batch(&log_batch)
        };
        match logged {
            Ok(()) => {
                self.pool.note_group_commit(prepared.len() as u64);
                for (id, _) in prepared {
                    outcomes.push((id, self.pool.tx_install(id)));
                }
            }
            Err(e) => {
                // The WAL acknowledged none of the batch: abort all.
                let msg = e.to_string();
                let mut first = Some(e);
                for (id, _) in prepared {
                    let _ = self.pool.tx_abort(id);
                    let err = first.take().unwrap_or_else(|| {
                        StorageError::TxnConflict(format!("group commit failed: {msg}"))
                    });
                    outcomes.push((id, Err(err)));
                }
            }
        }
        outcomes
    }

    /// Abort transaction `txn`, restoring before-images. Errors with
    /// [`StorageError::UnknownTxn`] on an id that was never begun or was
    /// already committed/aborted.
    pub fn abort(&self, txn: u64) -> StorageResult<()> {
        {
            let mut state = self.state.lock().unwrap();
            if !state.active.remove(&txn) {
                return Err(StorageError::UnknownTxn(txn));
            }
        }
        if self.mvcc {
            self.pool.tx_abort(txn)
        } else {
            self.pool.abort_txn()
        }
    }

    /// Flush all data files and truncate the log. Serialized against
    /// group-commit batches: a logged-but-not-installed commit must not
    /// be truncated away.
    pub fn checkpoint(&self) -> StorageResult<()> {
        let _gc_guard = self.commit_mx.lock().unwrap();
        self.pool.flush_all()?;
        self.state.lock().unwrap().wal.checkpoint()
    }

    /// Structural integrity check over every cataloged file (see
    /// [`crate::check`]).
    pub fn check(&self) -> StorageResult<CheckReport> {
        crate::check::check_server(self)
    }

    /// Buffer pool counters.
    pub fn stats(&self) -> BufferStats {
        self.pool.stats()
    }

    /// Zero the buffer pool counters.
    pub fn reset_stats(&self) {
        self.pool.reset_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("coral-server-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn heap_and_btree_roundtrip_through_server() {
        let dir = fresh_dir("basic");
        let srv = StorageServer::open(&dir, 32).unwrap();
        let heap = srv.heap("edges.data").unwrap();
        let rid = heap.insert(b"a->b").unwrap();
        let idx = srv.btree("edges.idx0").unwrap();
        idx.insert(b"a:0").unwrap();
        assert_eq!(heap.get(rid).unwrap(), b"a->b");
        assert!(idx.contains(b"a:0").unwrap());
        assert_eq!(srv.list_files(), vec!["edges.data", "edges.idx0"]);
        assert!(srv.file_exists("edges.data"));
        assert!(!srv.file_exists("nothing"));
    }

    #[test]
    fn data_survives_checkpoint_and_reopen() {
        let dir = fresh_dir("reopen");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            for i in 0..100u32 {
                heap.insert(format!("tuple-{i}").as_bytes()).unwrap();
            }
            srv.checkpoint().unwrap();
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            assert_eq!(heap.scan().count(), 100);
        }
    }

    #[test]
    fn committed_txn_survives_crash_without_checkpoint() {
        let dir = fresh_dir("crash");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let txn = srv.begin().unwrap();
            heap.insert(b"committed-tuple").unwrap();
            srv.commit(txn).unwrap();
            // No checkpoint: dirty pages are only in the pool + WAL.
            // Dropping the server simulates a crash (nothing flushed).
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
            assert_eq!(all, vec![b"committed-tuple".to_vec()]);
        }
    }

    #[test]
    fn aborted_txn_leaves_no_trace() {
        let dir = fresh_dir("abort");
        let srv = StorageServer::open(&dir, 16).unwrap();
        let heap = srv.heap("r.data").unwrap();
        let rid = heap.insert(b"keep").unwrap();
        srv.checkpoint().unwrap();
        let txn = srv.begin().unwrap();
        heap.insert(b"discard").unwrap();
        srv.abort(txn).unwrap();
        let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
        assert_eq!(all, vec![b"keep".to_vec()]);
        assert_eq!(heap.get(rid).unwrap(), b"keep");
    }

    #[test]
    fn uncommitted_txn_lost_on_crash() {
        let dir = fresh_dir("uncommitted");
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            heap.insert(b"base").unwrap();
            srv.checkpoint().unwrap();
            let _txn = srv.begin().unwrap();
            heap.insert(b"in-flight").unwrap();
            // Crash: neither commit nor abort nor checkpoint.
        }
        {
            let srv = StorageServer::open(&dir, 16).unwrap();
            let heap = srv.heap("r.data").unwrap();
            let all: Vec<Vec<u8>> = heap.scan().map(|r| r.unwrap().1).collect();
            assert_eq!(all, vec![b"base".to_vec()]);
        }
    }

    #[test]
    fn file_ids_stable_across_reopen() {
        let dir = fresh_dir("stable");
        let (a1, b1) = {
            let srv = StorageServer::open(&dir, 8).unwrap();
            (srv.file("alpha").unwrap(), srv.file("beta").unwrap())
        };
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert_eq!(srv.file("alpha").unwrap(), a1);
        assert_eq!(srv.file("beta").unwrap(), b1);
        assert_ne!(a1, b1);
    }

    #[test]
    fn bad_file_names_rejected() {
        let dir = fresh_dir("names");
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert!(srv.file("has space").is_err());
        assert!(srv.file("has\nnewline").is_err());
    }

    #[test]
    fn unknown_and_double_abort_rejected() {
        let dir = fresh_dir("abort-ids");
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert!(matches!(srv.abort(42), Err(StorageError::UnknownTxn(42))));
        let txn = srv.begin().unwrap();
        assert_eq!(srv.active_txn_count(), 1);
        srv.abort(txn).unwrap();
        assert_eq!(srv.active_txn_count(), 0);
        assert!(matches!(
            srv.abort(txn),
            Err(StorageError::UnknownTxn(t)) if t == txn
        ));
    }

    #[test]
    fn mismatched_commit_id_rejected() {
        let dir = fresh_dir("commit-ids");
        let srv = StorageServer::open(&dir, 8).unwrap();
        let heap = srv.heap("r.data").unwrap();
        let txn = srv.begin().unwrap();
        heap.insert(b"x").unwrap();
        // Committing a different (never-begun) id must not touch txn.
        assert!(matches!(
            srv.commit(txn + 7),
            Err(StorageError::UnknownTxn(_))
        ));
        srv.commit(txn).unwrap();
        // Double commit.
        assert!(matches!(
            srv.commit(txn),
            Err(StorageError::UnknownTxn(t)) if t == txn
        ));
        assert_eq!(heap.scan().count(), 1);
    }

    #[test]
    fn named_lock_registry_does_not_grow_unboundedly() {
        let dir = fresh_dir("lockgc");
        let srv = StorageServer::open(&dir, 8).unwrap();
        for i in 0..100 {
            let l = srv.named_lock(&format!("rel-{i}"));
            drop(l);
        }
        // All handles dropped: the sweep on the next call clears them.
        assert!(srv.named_lock_count() <= 1);
        let held = srv.named_lock("keep-me");
        assert_eq!(srv.named_lock_count(), 1);
        srv.drop_named_lock("keep-me");
        assert_eq!(srv.named_lock_count(), 0);
        drop(held);
    }

    #[test]
    fn epochs_track_mutations() {
        let dir = fresh_dir("epochs");
        let srv = StorageServer::open(&dir, 8).unwrap();
        assert_eq!(srv.epoch("r"), 0);
        assert_eq!(srv.bump_epoch("r"), 1);
        assert_eq!(srv.bump_epoch("r"), 2);
        assert_eq!(srv.epoch("r"), 2);
        assert_eq!(srv.epoch("other"), 0);
        srv.drop_epoch("r");
        assert_eq!(srv.epoch("r"), 0);
    }

    #[test]
    fn concurrent_txns_on_disjoint_relations_commit() {
        let dir = fresh_dir("mvcc-two");
        let srv =
            StorageServer::open_with_mode(&dir, 32, Arc::new(crate::vfs::StdVfs), true).unwrap();
        let a = srv.heap("a.data").unwrap();
        let b = srv.heap("b.data").unwrap();
        let ta = srv.begin().unwrap();
        let tb = srv.begin().unwrap();
        a.set_txn(Some(ta));
        b.set_txn(Some(tb));
        a.insert(b"alpha").unwrap();
        b.insert(b"beta").unwrap();
        srv.commit(ta).unwrap();
        srv.commit(tb).unwrap();
        a.set_txn(None);
        b.set_txn(None);
        assert_eq!(a.scan().count(), 1);
        assert_eq!(b.scan().count(), 1);
        let stats = srv.tx_stats();
        assert_eq!(stats.committed, 2);
    }

    #[test]
    fn conflicting_txns_one_wins_one_retries() {
        let dir = fresh_dir("mvcc-conflict");
        let srv =
            StorageServer::open_with_mode(&dir, 32, Arc::new(crate::vfs::StdVfs), true).unwrap();
        srv.set_lock_timeout(Duration::from_millis(0));
        let heap = srv.heap("r.data").unwrap();
        heap.insert(b"seed").unwrap(); // bare write, page 0 exists
        let t1 = srv.begin().unwrap();
        let t2 = srv.begin().unwrap();
        heap.set_txn(Some(t1));
        heap.insert(b"from-t1").unwrap();
        heap.set_txn(Some(t2));
        let err = heap.insert(b"from-t2").unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)), "{err}");
        srv.abort(t2).unwrap();
        srv.commit(t1).unwrap();
        heap.set_txn(None);
        assert_eq!(heap.scan().count(), 2);
        assert!(srv.tx_stats().conflicts >= 1);
    }

    #[test]
    fn group_commit_batches_concurrent_committers() {
        let dir = fresh_dir("mvcc-group");
        let srv =
            StorageServer::open_with_mode(&dir, 64, Arc::new(crate::vfs::StdVfs), true).unwrap();
        let threads: Vec<_> = (0..8u32)
            .map(|i| {
                let client: StorageClient = Arc::clone(&srv);
                std::thread::spawn(move || {
                    let heap = client.heap(&format!("g{i}.data")).unwrap();
                    for j in 0..20u32 {
                        let txn = client.begin().unwrap();
                        heap.set_txn(Some(txn));
                        heap.insert(format!("t{i}-{j}").as_bytes()).unwrap();
                        heap.set_txn(None);
                        client.commit(txn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for i in 0..8u32 {
            let heap = srv.heap(&format!("g{i}.data")).unwrap();
            assert_eq!(heap.scan().count(), 20);
        }
        let stats = srv.tx_stats();
        assert_eq!(stats.committed, 160);
        // With 8 threads committing concurrently at least one batch
        // should have carried more than one transaction — but the
        // scheduler makes no promises, so only assert accounting.
        assert_eq!(stats.group_committed_txns, 160);
        assert!(stats.group_commits <= 160);
    }

    #[test]
    fn mvcc_escape_hatch_restores_legacy_path() {
        let dir = fresh_dir("legacy-mode");
        let srv =
            StorageServer::open_with_mode(&dir, 16, Arc::new(crate::vfs::StdVfs), false).unwrap();
        assert!(!srv.mvcc_enabled());
        let heap = srv.heap("r.data").unwrap();
        let txn = srv.begin().unwrap();
        heap.insert(b"x").unwrap();
        srv.commit(txn).unwrap();
        assert_eq!(srv.tx_stats(), TxStats::default());
        // Single-slot: a second concurrent begin fails in legacy mode.
        let t1 = srv.begin().unwrap();
        assert!(srv.begin().is_err());
        srv.abort(t1).unwrap();
    }
}

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::path::PathBuf;
    use std::sync::Arc;

    fn fresh_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coral-server-mt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    /// "Multiple CORAL processes could interact by accessing persistent
    /// data stored using the EXODUS storage manager" (§2): here multiple
    /// threads share one server through cloned client handles.
    #[test]
    fn concurrent_heap_writers_and_readers() {
        let srv = StorageServer::open(&fresh_dir("rw"), 32).unwrap();
        let writers: Vec<_> = (0..4u32)
            .map(|w| {
                let client: StorageClient = Arc::clone(&srv);
                std::thread::spawn(move || {
                    let heap = client.heap(&format!("shard{w}.data")).unwrap();
                    let mut rids = Vec::new();
                    for i in 0..200u32 {
                        rids.push(heap.insert(format!("w{w}-r{i}").as_bytes()).unwrap());
                    }
                    (w, rids)
                })
            })
            .collect();
        let results: Vec<_> = writers.into_iter().map(|h| h.join().unwrap()).collect();
        // Every record is readable with the written content.
        for (w, rids) in results {
            let heap = srv.heap(&format!("shard{w}.data")).unwrap();
            for (i, rid) in rids.iter().enumerate() {
                assert_eq!(heap.get(*rid).unwrap(), format!("w{w}-r{i}").as_bytes());
            }
            assert_eq!(heap.scan().count(), 200);
        }
    }

    #[test]
    fn concurrent_btree_readers() {
        let srv = StorageServer::open(&fresh_dir("bt"), 16).unwrap();
        let tree = srv.btree("shared.bt").unwrap();
        for i in 0..500u32 {
            tree.insert(format!("k{i:05}").as_bytes()).unwrap();
        }
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let client: StorageClient = Arc::clone(&srv);
                std::thread::spawn(move || {
                    let tree = client.btree("shared.bt").unwrap();
                    let mut hits = 0;
                    for i in (0..500u32).step_by(7) {
                        if tree.contains(format!("k{i:05}").as_bytes()).unwrap() {
                            hits += 1;
                        }
                    }
                    hits
                })
            })
            .collect();
        for h in readers {
            assert_eq!(h.join().unwrap(), 72);
        }
    }
}
