//! Virtual file system: the seam between the storage engine and the disk.
//!
//! [`PageFile`](crate::file::PageFile) and [`Wal`](crate::wal::Wal) only
//! need positioned reads/writes, sync, and truncate — exactly the
//! [`StorageFile`] trait. [`Vfs`] is the factory (plus the few whole-file
//! operations the catalog needs). Production code uses [`StdVfs`]; the
//! `coral-sim` crate provides a deterministic in-memory implementation
//! with fault injection (torn writes, fsync failures, hard crash points)
//! for crash-matrix testing.
//!
//! The durability contract implementations must obey:
//!
//! * `write_at`/`truncate` affect the *current* file contents but are not
//!   durable until a subsequent `sync` returns `Ok`.
//! * After a crash, each file reverts to its durable contents plus an
//!   arbitrary prefix of the unsynced operations, where the last surviving
//!   write may itself be torn (a prefix of its bytes).
//! * `replace` (used for the catalog) is atomic: after a crash the file
//!   holds either the old or the new contents, never a mix.

use crate::error::StorageResult;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Positioned I/O on one file. Implementations need not be thread-safe;
/// callers serialize access (the buffer pool holds each file behind its
/// own lock).
pub trait StorageFile: Send {
    /// Current length in bytes.
    fn len(&mut self) -> StorageResult<u64>;
    /// True iff the file is empty.
    fn is_empty(&mut self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }
    /// Read exactly `buf.len()` bytes at `off`.
    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> StorageResult<()>;
    /// Write `data` at `off`, extending the file if needed.
    fn write_at(&mut self, off: u64, data: &[u8]) -> StorageResult<()>;
    /// Make all preceding writes durable.
    fn sync(&mut self) -> StorageResult<()>;
    /// Set the file length to `len` bytes.
    fn truncate(&mut self, len: u64) -> StorageResult<()>;
}

/// File system operations the storage server needs beyond per-file I/O.
pub trait Vfs: Send + Sync {
    /// Create `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> StorageResult<()>;
    /// Open (creating if necessary) the file at `path`.
    fn open(&self, path: &Path) -> StorageResult<Box<dyn StorageFile>>;
    /// Read the whole file as UTF-8, or `None` if it does not exist.
    fn read_to_string(&self, path: &Path) -> StorageResult<Option<String>>;
    /// Atomically replace the contents of `path` with `data`.
    fn replace(&self, path: &Path, data: &[u8]) -> StorageResult<()>;
}

/// The real file system.
pub struct StdVfs;

impl Vfs for StdVfs {
    fn create_dir_all(&self, dir: &Path) -> StorageResult<()> {
        std::fs::create_dir_all(dir)?;
        Ok(())
    }

    fn open(&self, path: &Path) -> StorageResult<Box<dyn StorageFile>> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(Box::new(StdFile { file }))
    }

    fn read_to_string(&self, path: &Path) -> StorageResult<Option<String>> {
        match std::fs::read_to_string(path) {
            Ok(text) => Ok(Some(text)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn replace(&self, path: &Path, data: &[u8]) -> StorageResult<()> {
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, data)?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    }
}

struct StdFile {
    file: File,
}

impl StorageFile for StdFile {
    fn len(&mut self) -> StorageResult<u64> {
        Ok(self.file.metadata()?.len())
    }

    fn read_at(&mut self, off: u64, buf: &mut [u8]) -> StorageResult<()> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_at(&mut self, off: u64, data: &[u8]) -> StorageResult<()> {
        self.file.seek(SeekFrom::Start(off))?;
        self.file.write_all(data)?;
        Ok(())
    }

    fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> StorageResult<()> {
        self.file.set_len(len)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmppath(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coral-vfs-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn std_file_positioned_io() {
        let path = tmppath("pio.bin");
        let vfs = StdVfs;
        let mut f = vfs.open(&path).unwrap();
        assert_eq!(f.len().unwrap(), 0);
        f.write_at(0, b"hello world").unwrap();
        f.write_at(6, b"coral").unwrap();
        f.sync().unwrap();
        let mut buf = [0u8; 11];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello coral");
        f.truncate(5).unwrap();
        assert_eq!(f.len().unwrap(), 5);
        let mut buf = [0u8; 5];
        f.read_at(0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn replace_is_whole_file() {
        let path = tmppath("cat.txt");
        let vfs = StdVfs;
        assert_eq!(vfs.read_to_string(&path).unwrap(), None);
        vfs.replace(&path, b"first version with some length")
            .unwrap();
        vfs.replace(&path, b"second").unwrap();
        assert_eq!(vfs.read_to_string(&path).unwrap().unwrap(), "second");
    }
}
