//! Page files: the on-disk unit managed by the server.
//!
//! A [`PageFile`] is a flat file of [`PAGE_SIZE`] pages addressed by
//! [`PageId`]. All reads and writes go through the buffer pool; this
//! module only provides the raw page I/O.

use crate::error::{StorageError, StorageResult};
use crate::page::PAGE_SIZE;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Identifies an open file within the storage server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within a file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// An open page file.
pub struct PageFile {
    file: File,
    path: PathBuf,
    pages: u64,
}

impl PageFile {
    /// Open (creating if necessary) the page file at `path`.
    pub fn open(path: &Path) -> StorageResult<PageFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::Corrupt(format!(
                "{} has length {} not a multiple of the page size",
                path.display(),
                len
            )));
        }
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: len / PAGE_SIZE as u64,
        })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u64 {
        self.pages
    }

    /// Append a zeroed page, returning its id.
    pub fn allocate(&mut self) -> StorageResult<PageId> {
        let id = PageId(self.pages);
        self.file
            .seek(SeekFrom::Start(self.pages * PAGE_SIZE as u64))?;
        self.file.write_all(&[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    /// Read page `id` into `buf`.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.0 >= self.pages {
            return Err(StorageError::BadPageId);
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    /// Write `buf` to page `id`.
    pub fn write_page(&mut self, id: PageId, buf: &[u8]) -> StorageResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.0 >= self.pages {
            return Err(StorageError::BadPageId);
        }
        self.file.seek(SeekFrom::Start(id.0 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "coral-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn allocate_write_read() {
        let path = tmpdir().join("t1.pages");
        let _ = std::fs::remove_file(&path);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 0);
        let p0 = f.allocate().unwrap();
        let p1 = f.allocate().unwrap();
        assert_eq!((p0, p1), (PageId(0), PageId(1)));
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        f.write_page(p1, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(p1, &mut back).unwrap();
        assert_eq!(back, page);
        f.read_page(p0, &mut back).unwrap();
        assert_eq!(back, vec![0u8; PAGE_SIZE]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpdir().join("t2.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut f = PageFile::open(&path).unwrap();
            let p = f.allocate().unwrap();
            let mut page = vec![7u8; PAGE_SIZE];
            page[42] = 42;
            f.write_page(p, &page).unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = PageFile::open(&path).unwrap();
            assert_eq!(f.num_pages(), 1);
            let mut back = vec![0u8; PAGE_SIZE];
            f.read_page(PageId(0), &mut back).unwrap();
            assert_eq!(back[42], 42);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_page_rejected() {
        let path = tmpdir().join("t3.pages");
        let _ = std::fs::remove_file(&path);
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            f.read_page(PageId(5), &mut buf),
            Err(StorageError::BadPageId)
        ));
        assert!(matches!(
            f.write_page(PageId(0), &buf),
            Err(StorageError::BadPageId)
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
