//! Page files: the on-disk unit managed by the server.
//!
//! A [`PageFile`] is a flat file of [`PAGE_SIZE`] pages addressed by
//! [`PageId`]. All reads and writes go through the buffer pool; this
//! module only provides the raw page I/O, routed through a
//! [`StorageFile`] so tests can substitute a simulated disk.

use crate::error::StorageResult;
use crate::page::PAGE_SIZE;
use crate::vfs::{StdVfs, StorageFile, Vfs};
use std::path::{Path, PathBuf};

/// Identifies an open file within the storage server.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// Identifies a page within a file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageId(pub u64);

/// An open page file.
pub struct PageFile {
    file: Box<dyn StorageFile>,
    path: PathBuf,
    pages: u64,
}

impl PageFile {
    /// Open (creating if necessary) the page file at `path` on the real
    /// file system.
    pub fn open(path: &Path) -> StorageResult<PageFile> {
        Self::open_with(&StdVfs, path)
    }

    /// Open (creating if necessary) the page file at `path` through `vfs`.
    ///
    /// A trailing partial page can only be a torn append that was never
    /// acknowledged (pages are appended zeroed and only then written), so
    /// it is truncated away here rather than treated as corruption.
    pub fn open_with(vfs: &dyn Vfs, path: &Path) -> StorageResult<PageFile> {
        let mut file = vfs.open(path)?;
        let len = file.len()?;
        let rem = len % PAGE_SIZE as u64;
        if rem != 0 {
            file.truncate(len - rem)?;
        }
        Ok(PageFile {
            file,
            path: path.to_path_buf(),
            pages: (len - rem) / PAGE_SIZE as u64,
        })
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u64 {
        self.pages
    }

    /// Append a zeroed page, returning its id.
    pub fn allocate(&mut self) -> StorageResult<PageId> {
        let id = PageId(self.pages);
        self.file
            .write_at(self.pages * PAGE_SIZE as u64, &[0u8; PAGE_SIZE])?;
        self.pages += 1;
        Ok(id)
    }

    /// Read page `id` into `buf`.
    pub fn read_page(&mut self, id: PageId, buf: &mut [u8]) -> StorageResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.0 >= self.pages {
            return Err(crate::error::StorageError::BadPageId);
        }
        self.file.read_at(id.0 * PAGE_SIZE as u64, buf)?;
        Ok(())
    }

    /// Write `buf` to page `id`.
    pub fn write_page(&mut self, id: PageId, buf: &[u8]) -> StorageResult<()> {
        debug_assert_eq!(buf.len(), PAGE_SIZE);
        if id.0 >= self.pages {
            return Err(crate::error::StorageError::BadPageId);
        }
        self.file.write_at(id.0 * PAGE_SIZE as u64, buf)?;
        Ok(())
    }

    /// Flush file contents to stable storage.
    pub fn sync(&mut self) -> StorageResult<()> {
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::StorageError;

    fn tmpdir() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "coral-storage-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn allocate_write_read() {
        let path = tmpdir().join("t1.pages");
        let _ = std::fs::remove_file(&path);
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 0);
        let p0 = f.allocate().unwrap();
        let p1 = f.allocate().unwrap();
        assert_eq!((p0, p1), (PageId(0), PageId(1)));
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        f.write_page(p1, &page).unwrap();
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(p1, &mut back).unwrap();
        assert_eq!(back, page);
        f.read_page(p0, &mut back).unwrap();
        assert_eq!(back, vec![0u8; PAGE_SIZE]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn persists_across_reopen() {
        let path = tmpdir().join("t2.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut f = PageFile::open(&path).unwrap();
            let p = f.allocate().unwrap();
            let mut page = vec![7u8; PAGE_SIZE];
            page[42] = 42;
            f.write_page(p, &page).unwrap();
            f.sync().unwrap();
        }
        {
            let mut f = PageFile::open(&path).unwrap();
            assert_eq!(f.num_pages(), 1);
            let mut back = vec![0u8; PAGE_SIZE];
            f.read_page(PageId(0), &mut back).unwrap();
            assert_eq!(back[42], 42);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_range_page_rejected() {
        let path = tmpdir().join("t3.pages");
        let _ = std::fs::remove_file(&path);
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            f.read_page(PageId(5), &mut buf),
            Err(StorageError::BadPageId)
        ));
        assert!(matches!(
            f.write_page(PageId(0), &buf),
            Err(StorageError::BadPageId)
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_trailing_page_truncated_on_open() {
        let path = tmpdir().join("t4.pages");
        let _ = std::fs::remove_file(&path);
        {
            let mut f = PageFile::open(&path).unwrap();
            let p = f.allocate().unwrap();
            f.write_page(p, &vec![5u8; PAGE_SIZE]).unwrap();
            f.sync().unwrap();
        }
        // Simulate a torn append: half a page of garbage at the tail.
        {
            use std::io::Write;
            let mut raw = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            raw.write_all(&vec![0xEE; PAGE_SIZE / 2]).unwrap();
        }
        let mut f = PageFile::open(&path).unwrap();
        assert_eq!(f.num_pages(), 1, "partial tail page dropped");
        let mut back = vec![0u8; PAGE_SIZE];
        f.read_page(PageId(0), &mut back).unwrap();
        assert_eq!(back[0], 5);
        std::fs::remove_file(&path).unwrap();
    }
}
