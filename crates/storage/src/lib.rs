//! # coral-storage — the persistent-storage substrate
//!
//! CORAL stores persistent data "using the EXODUS storage manager, which
//! has a client-server architecture" (§2): each CORAL process is a client
//! whose buffer pool pages data in from the server on demand, with
//! indexing and scan facilities, and transactions/concurrency handled by
//! the EXODUS toolkit. EXODUS is a closed-source 1990s C toolkit, so this
//! crate is a from-scratch substitute that preserves the behaviour the
//! CORAL engine depends on:
//!
//! * fixed-size **slotted pages** ([`page`]) holding variable-length
//!   records;
//! * a **buffer pool** with clock eviction, pin counts and hit/miss
//!   statistics ([`buffer`]) — a `get-next-tuple` request on a persistent
//!   relation becomes a page-level request here, exactly as §2 describes;
//! * **heap files** of records addressed by `(page, slot)` record ids
//!   ([`heap`]);
//! * a **B+-tree** over byte-string keys for the persistent indices of
//!   §3.3 ([`btree`]);
//! * a minimal **write-ahead log** giving atomic multi-page commit and
//!   crash recovery ([`wal`]) — standing in for the EXODUS transaction
//!   toolkit;
//! * a **storage server** fronted by a cloneable client handle
//!   ([`server`]), preserving Figure 1's client/server boundary as an API
//!   boundary in a single process.
//!
//! The crate is deliberately byte-oriented: term encoding lives in
//! `coral-rel`, keeping this layer reusable and the paper's layering
//! intact.

pub mod btree;
pub mod buffer;
pub mod check;
pub mod error;
pub mod file;
pub mod heap;
pub mod page;
pub mod profile;
pub mod server;
pub mod tx;
pub mod vfs;
pub mod wal;

pub use btree::BTree;
pub use buffer::{BufferPool, BufferStats, SnapshotGuard};
pub use check::CheckReport;
pub use error::{StorageError, StorageResult};
pub use file::{FileId, PageId};
pub use heap::{HeapFile, RecordId};
pub use page::{SlotId, PAGE_SIZE};
pub use server::{StorageClient, StorageServer};
pub use tx::{TxStats, View};
pub use vfs::{StdVfs, StorageFile, Vfs};
