//! Transaction concurrency manager: MVCC snapshots, write latching, and
//! the shared state behind group commit.
//!
//! The paper delegates "transactions and concurrency control" to the
//! EXODUS toolkit (§2); PR 2 substituted a per-relation `RwLock`, which
//! serialises every writer and blocks all readers during bulk loads.
//! This module is the real concurrency manager:
//!
//! * **Page-versioned MVCC snapshots.** A version store layered over the
//!   buffer pool keeps, per page, the committed images newer than the
//!   oldest live snapshot. Readers pin a commit-timestamp snapshot
//!   ([`View::Snapshot`]) and are served the newest version at or below
//!   their timestamp — no relation or page locks, so readers never block
//!   behind writers.
//! * **Fine-grained write latching.** A lock table hands out per-page
//!   write locks held until commit/abort. Acquisition resolves deadlocks
//!   by *wound-or-timeout*: an older transaction wounds a younger lock
//!   holder (the victim's next operation fails retryably); a younger
//!   requester waits up to the configured timeout. Both outcomes surface
//!   as [`StorageError::TxnConflict`], the retryable conflict error.
//! * **First-updater-wins + read validation.** A write to a page
//!   committed after the writer's snapshot conflicts immediately; at
//!   commit the transaction's read set is validated against the commit
//!   timestamps (backward optimistic concurrency control), so the
//!   committed history is serialisable *in commit order* — the property
//!   the coral-sim serialisability oracle replays and checks.
//!
//! The structures here are data only; the buffer pool (which owns the
//! frames the versions shadow) drives them, and the storage server adds
//! group commit on top. The split mirrors krdlab/simpledb's `tx/`
//! (concurrency manager / lock table / recovery manager).

use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageId};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// A page address, the unit of versioning and locking.
pub type PageKey = (FileId, PageId);

/// Which state of the database a page access observes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum View {
    /// The live frames: newest state, including any uncommitted writes.
    /// The compatibility view — single-session callers that predate MVCC
    /// read and write through it (writes are attributed to the sole
    /// active transaction, if any).
    #[default]
    Live,
    /// A frozen commit-timestamp snapshot: committed state as of the
    /// timestamp, uncommitted writes invisible. Never blocks.
    Snapshot(u64),
    /// Inside transaction: own uncommitted writes visible, everything
    /// else as of the transaction's begin snapshot. Reads are recorded
    /// for commit-time validation; writes take page write locks.
    Txn(u64),
}

/// Transaction-manager counters. All remain zero when MVCC is disabled
/// (`CORAL_MVCC=0`) — the acceptance check for the RwLock escape hatch.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct TxStats {
    /// Transactions begun.
    pub begun: u64,
    /// Transactions committed (including read-only).
    pub committed: u64,
    /// Transactions aborted (explicitly or after a conflict).
    pub aborted: u64,
    /// Retryable conflicts surfaced (first-updater, validation, lock
    /// timeout, wounds taking effect).
    pub conflicts: u64,
    /// Wound-or-timeout: younger lock holders wounded by older waiters.
    pub wounds: u64,
    /// Snapshots pinned by readers.
    pub snapshots: u64,
    /// Group-commit batches fsynced.
    pub group_commits: u64,
    /// Transactions carried by those batches (≥ `group_commits`; the
    /// difference is the fsyncs saved by batching).
    pub group_committed_txns: u64,
}

/// Per-transaction bookkeeping while active.
pub(crate) struct TxnState {
    /// Begin order; smaller = older, and older wounds younger.
    pub seq: u64,
    /// Commit timestamp the transaction reads at.
    pub snapshot: u64,
    /// Pages read outside the write set (validated at commit).
    pub read_set: HashSet<PageKey>,
    /// Pages write-locked and dirtied (pinned no-steal until close).
    pub write_set: HashSet<PageKey>,
}

/// One page's committed images, oldest first, each tagged with the
/// commit timestamp that produced it.
pub(crate) type VersionChain = Vec<(u64, Box<[u8]>)>;

/// MVCC state owned by the buffer pool (behind its mutex): the version
/// store, per-page commit timestamps, active transactions, snapshot
/// pins, and counters.
#[derive(Default)]
pub(crate) struct MvccState {
    /// Last assigned commit timestamp (0 = state at server open).
    pub commit_ts: u64,
    /// Begin-sequence source for wound-or-timeout ordering.
    pub next_seq: u64,
    /// Committed page images, oldest first. Every page with an
    /// uncommitted writer has an entry holding its latest committed
    /// image, so "no entry" always means "the frame is committed".
    pub versions: HashMap<PageKey, VersionChain>,
    /// Commit timestamp of each page's newest committed image.
    pub page_ts: HashMap<PageKey, u64>,
    /// Active transactions by id.
    pub active: HashMap<u64, TxnState>,
    /// Snapshot pin counts by timestamp (readers holding iterators).
    pub pins: HashMap<u64, usize>,
    pub stats: TxStats,
}

impl MvccState {
    /// Oldest timestamp any live reader can still demand: versions at or
    /// below the horizon collapse to the newest one.
    pub fn horizon(&self) -> u64 {
        let snaps = self
            .active
            .values()
            .map(|t| t.snapshot)
            .chain(self.pins.keys().copied());
        snaps.min().unwrap_or(self.commit_ts).min(self.commit_ts)
    }

    /// Drop versions of `key` no live or future snapshot can read.
    pub fn gc_page(&mut self, key: PageKey) {
        let horizon = self.horizon();
        if let Some(list) = self.versions.get_mut(&key) {
            let keep_from = list.iter().rposition(|&(ts, _)| ts <= horizon).unwrap_or(0);
            if keep_from > 0 {
                list.drain(..keep_from);
            }
        }
    }

    /// Sweep the whole version store (called at checkpoint).
    pub fn gc_all(&mut self) {
        let keys: Vec<PageKey> = self.versions.keys().copied().collect();
        for k in keys {
            self.gc_page(k);
        }
    }
}

/// What a lock request resolved to.
enum LockOutcome {
    Granted,
    /// Held by another transaction and the timeout is zero: immediate
    /// retryable conflict (the deterministic mode coral-sim runs in).
    Busy,
}

/// The per-page write-lock table with wound-or-timeout resolution.
///
/// Lives beside (not inside) the buffer pool's mutex: waiting on the
/// condition variable must not hold up page traffic of other sessions.
pub(crate) struct LockTable {
    state: Mutex<LockMap>,
    cv: Condvar,
    /// Wait budget in milliseconds; 0 = fail immediately (no wait, no
    /// wound) for deterministic single-threaded schedules.
    timeout_ms: AtomicU64,
    pub conflicts: AtomicU64,
    pub wounds: AtomicU64,
}

#[derive(Default)]
struct LockMap {
    /// Holder and its begin sequence, per locked page.
    holders: HashMap<PageKey, (u64, u64)>,
    /// Transactions wounded by an older waiter; their next lock
    /// acquisition or commit fails retryably.
    wounded: HashSet<u64>,
}

impl LockTable {
    pub fn new(timeout: Duration) -> LockTable {
        LockTable {
            state: Mutex::new(LockMap::default()),
            cv: Condvar::new(),
            timeout_ms: AtomicU64::new(timeout.as_millis() as u64),
            conflicts: AtomicU64::new(0),
            wounds: AtomicU64::new(0),
        }
    }

    pub fn set_timeout(&self, timeout: Duration) {
        self.timeout_ms
            .store(timeout.as_millis() as u64, Ordering::Relaxed);
    }

    fn conflict(&self, msg: String) -> StorageError {
        self.conflicts.fetch_add(1, Ordering::Relaxed);
        StorageError::TxnConflict(msg)
    }

    /// Acquire the write lock on `key` for transaction `txn` (begin
    /// sequence `seq`). Re-entrant. Blocks up to the configured timeout;
    /// an older requester wounds a younger holder while waiting.
    pub fn acquire(&self, txn: u64, seq: u64, key: PageKey) -> StorageResult<()> {
        let mut m = self.state.lock().unwrap();
        let timeout = self.timeout_ms.load(Ordering::Relaxed);
        let deadline = Instant::now() + Duration::from_millis(timeout);
        loop {
            if m.wounded.contains(&txn) {
                return Err(
                    self.conflict(format!("transaction {txn} wounded by an older transaction"))
                );
            }
            match self.try_acquire(&mut m, txn, seq, key) {
                LockOutcome::Granted => return Ok(()),
                LockOutcome::Busy if timeout == 0 => {
                    let holder = m.holders.get(&key).map(|&(h, _)| h).unwrap_or(0);
                    return Err(self.conflict(format!(
                        "page {}:{} write-locked by transaction {holder}",
                        key.0 .0, key.1 .0
                    )));
                }
                LockOutcome::Busy => {
                    let now = Instant::now();
                    if now >= deadline {
                        let holder = m.holders.get(&key).map(|&(h, _)| h).unwrap_or(0);
                        return Err(self.conflict(format!(
                            "timed out after {timeout}ms waiting for page {}:{} \
                             held by transaction {holder}",
                            key.0 .0, key.1 .0
                        )));
                    }
                    let (g, _res) = self.cv.wait_timeout(m, deadline - now).unwrap();
                    m = g;
                }
            }
        }
    }

    /// One non-blocking attempt; wounds a younger holder on behalf of an
    /// older requester.
    fn try_acquire(&self, m: &mut LockMap, txn: u64, seq: u64, key: PageKey) -> LockOutcome {
        match m.holders.get(&key) {
            None => {
                m.holders.insert(key, (txn, seq));
                LockOutcome::Granted
            }
            Some(&(holder, _)) if holder == txn => LockOutcome::Granted,
            Some(&(holder, holder_seq)) => {
                if seq < holder_seq && m.wounded.insert(holder) {
                    self.wounds.fetch_add(1, Ordering::Relaxed);
                    // Wake the victim if it is itself waiting on a lock,
                    // so wound-wait cycles unwind instead of deadlocking.
                    self.cv.notify_all();
                }
                LockOutcome::Busy
            }
        }
    }

    /// True iff `txn` has been wounded (checked again at commit, so a
    /// wound between last write and commit still aborts the victim).
    pub fn is_wounded(&self, txn: u64) -> bool {
        self.state.lock().unwrap().wounded.contains(&txn)
    }

    /// Release every lock held by `txn` and clear its wound flag.
    pub fn release_all(&self, txn: u64) {
        let mut m = self.state.lock().unwrap();
        m.holders.retain(|_, &mut (h, _)| h != txn);
        m.wounded.remove(&txn);
        self.cv.notify_all();
    }

    #[cfg(test)]
    pub fn held(&self) -> usize {
        self.state.lock().unwrap().holders.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::{FileId, PageId};
    use std::sync::Arc;

    fn key(p: u64) -> PageKey {
        (FileId(0), PageId(p))
    }

    #[test]
    fn reentrant_and_release() {
        let lt = LockTable::new(Duration::from_millis(0));
        lt.acquire(1, 1, key(0)).unwrap();
        lt.acquire(1, 1, key(0)).unwrap();
        lt.acquire(1, 1, key(1)).unwrap();
        assert_eq!(lt.held(), 2);
        lt.release_all(1);
        assert_eq!(lt.held(), 0);
        lt.acquire(2, 2, key(0)).unwrap();
    }

    #[test]
    fn zero_timeout_fails_immediately() {
        let lt = LockTable::new(Duration::from_millis(0));
        lt.acquire(1, 1, key(0)).unwrap();
        let err = lt.acquire(2, 2, key(0)).unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)), "{err}");
        // Zero-timeout mode never wounds: deterministic for the sim.
        assert!(!lt.is_wounded(1));
        assert_eq!(lt.wounds.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn younger_requester_times_out() {
        let lt = LockTable::new(Duration::from_millis(20));
        lt.acquire(1, 1, key(0)).unwrap();
        let err = lt.acquire(2, 2, key(0)).unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)));
        assert!(!lt.is_wounded(1), "younger requester must not wound");
    }

    #[test]
    fn older_requester_wounds_younger_holder() {
        let lt = Arc::new(LockTable::new(Duration::from_millis(5000)));
        lt.acquire(2, 2, key(0)).unwrap();
        let lt2 = Arc::clone(&lt);
        let waiter = std::thread::spawn(move || lt2.acquire(1, 1, key(0)));
        // The older waiter wounds txn 2; once 2 aborts (releases), 1
        // gets the lock.
        while !lt.is_wounded(2) {
            std::thread::yield_now();
        }
        lt.release_all(2);
        waiter.join().unwrap().unwrap();
        assert!(!lt.is_wounded(2), "release clears the wound");
    }

    #[test]
    fn wounded_txn_fails_next_acquisition() {
        let lt = Arc::new(LockTable::new(Duration::from_millis(5000)));
        lt.acquire(2, 2, key(0)).unwrap();
        let lt2 = Arc::clone(&lt);
        let waiter = std::thread::spawn(move || lt2.acquire(1, 1, key(0)));
        while !lt.is_wounded(2) {
            std::thread::yield_now();
        }
        let err = lt.acquire(2, 2, key(1)).unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)));
        lt.release_all(2);
        waiter.join().unwrap().unwrap();
    }

    #[test]
    fn horizon_gc_keeps_needed_versions() {
        let mut st = MvccState {
            commit_ts: 10,
            ..Default::default()
        };
        let k = key(0);
        st.versions.insert(
            k,
            vec![
                (0, vec![0u8; 4].into_boxed_slice()),
                (3, vec![3u8; 4].into_boxed_slice()),
                (7, vec![7u8; 4].into_boxed_slice()),
            ],
        );
        // A pinned snapshot at 5 needs the ts=3 image.
        st.pins.insert(5, 1);
        st.gc_page(k);
        let list = &st.versions[&k];
        assert_eq!(
            list.iter().map(|&(ts, _)| ts).collect::<Vec<_>>(),
            vec![3, 7]
        );
        // No pins: everything below the newest collapses.
        st.pins.clear();
        st.gc_page(k);
        assert_eq!(st.versions[&k].len(), 1);
        assert_eq!(st.versions[&k][0].0, 7);
    }
}
