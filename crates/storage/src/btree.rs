//! B+-tree over byte-string items.
//!
//! "B-tree indices for persistent relations are currently available in
//! the CORAL system" (§3.3). This tree indexes *items* — arbitrary byte
//! strings ordered lexicographically — because the relation layer encodes
//! `key ‖ record-id` with an order-preserving encoding, turning exact-key
//! lookups into prefix ranges and making duplicates unambiguous.
//!
//! Structure: one meta page (page 0) holding the root pointer and item
//! count; internal nodes map separator items to children; leaves hold the
//! items and are chained left-to-right for range scans. All node access
//! goes through the buffer pool, node content is copied out before
//! descending (the pool's closure API must not nest), deletes do not
//! rebalance (empty leaves stay in the sibling chain).
//!
//! **Concurrency contract:** the buffer pool serializes access *per
//! page* only, while inserts (splits especially) are multi-page
//! read-copy-modify-write sequences. Callers with concurrent mutators
//! of the same tree must serialize them externally — the relation layer
//! does so by holding the write side of
//! [`StorageServer::named_lock`](crate::StorageServer::named_lock)
//! across every mutation of a persistent relation. Under MVCC,
//! transactional mutators are additionally serialized by the page lock
//! on the meta page (every insert/delete touches it through
//! `bump_len`), so two transactions mutating the same tree always
//! conflict and one retries; *readers* go through snapshot views and
//! neither block nor take any lock.

use crate::buffer::{BufferPool, SnapshotGuard};
use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageId};
use crate::page::SlottedPage;
use crate::tx::View;
use std::sync::{Arc, Mutex};

/// Maximum item size; guarantees a node can always hold ≥ 2 items so
/// splits make progress.
pub const MAX_ITEM: usize = 1024;

const META_MAGIC: &[u8; 8] = b"CORALBT1";
const NO_SIBLING: u64 = u64::MAX;

struct Node {
    is_leaf: bool,
    /// Right-sibling pid for leaves, leftmost-child pid for internals.
    extra: u64,
    /// Slot 1.. contents, in key order. For internal nodes each entry is
    /// `[child: u64 LE][separator bytes]`.
    entries: Vec<Vec<u8>>,
}

impl Node {
    fn entry_sep(entry: &[u8]) -> &[u8] {
        &entry[8..]
    }
    fn entry_child(entry: &[u8]) -> u64 {
        u64::from_le_bytes(entry[0..8].try_into().unwrap())
    }
    fn make_entry(child: u64, sep: &[u8]) -> Vec<u8> {
        let mut e = Vec::with_capacity(8 + sep.len());
        e.extend_from_slice(&child.to_le_bytes());
        e.extend_from_slice(sep);
        e
    }
}

/// A B+-tree of byte strings in one page file.
pub struct BTree {
    pool: Arc<BufferPool>,
    fid: FileId,
    /// The MVCC view every access goes through (`Live` by default; the
    /// relation layer points it at a transaction or a snapshot).
    view: Mutex<View>,
}

impl BTree {
    /// Open the tree in file `fid` (registered with `pool`), initializing
    /// it if the file is empty.
    pub fn open(pool: Arc<BufferPool>, fid: FileId) -> StorageResult<BTree> {
        Self::open_with_view(pool, fid, View::Live)
    }

    /// Open the tree with its accesses — *including* the meta/root
    /// initialization of a brand-new file — routed through `view`. A
    /// transaction creating a tree must use this: initializing through
    /// `Live` while other transactions are active is an ambiguous
    /// unattributable write, and the pages would not roll back with the
    /// transaction.
    pub fn open_with_view(pool: Arc<BufferPool>, fid: FileId, view: View) -> StorageResult<BTree> {
        let t = BTree {
            pool,
            fid,
            view: Mutex::new(view),
        };
        let n = t.pool.num_pages(fid)?;
        let initialized = n > 0
            && t.pool
                .with_page(fid, PageId(0), |d| &d[0..8] == META_MAGIC)?;
        if !initialized {
            // Either a brand-new file, or one whose pages were allocated
            // (zero-extended) by a transaction that crashed before commit.
            // In the latter case nothing in the file was ever committed —
            // a committed meta page would have been restored from the WAL
            // before we got here — so the zeros can be formatted in place.
            // Anything else on page 0 is real corruption.
            if n > 0 {
                let zeroed = t
                    .pool
                    .with_page(fid, PageId(0), |d| d.iter().all(|&b| b == 0))?;
                if !zeroed {
                    return Err(StorageError::Corrupt("bad B-tree meta page".into()));
                }
            }
            let meta = if n == 0 {
                t.pool.allocate_page(fid)?
            } else {
                PageId(0)
            };
            debug_assert_eq!(meta, PageId(0));
            let root = if n <= 1 {
                t.pool.allocate_page(fid)?
            } else {
                PageId(1)
            };
            t.write_node(
                root,
                &Node {
                    is_leaf: true,
                    extra: NO_SIBLING,
                    entries: Vec::new(),
                },
            )?;
            t.pool.with_page_mut_view(fid, PageId(0), t.view(), |d| {
                d[0..8].copy_from_slice(META_MAGIC);
                d[8..16].copy_from_slice(&root.0.to_le_bytes());
                d[16..24].copy_from_slice(&0u64.to_le_bytes());
            })?;
        }
        Ok(t)
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// The view subsequent accesses use.
    pub fn view(&self) -> View {
        *self.view.lock().unwrap()
    }

    /// Route subsequent accesses through `view`.
    pub fn set_view(&self, view: View) {
        *self.view.lock().unwrap() = view;
    }

    /// Attach this handle to a transaction (`None` = back to `Live`).
    pub fn set_txn(&self, txn: Option<u64>) {
        self.set_view(txn.map_or(View::Live, View::Txn));
    }

    fn root(&self) -> StorageResult<PageId> {
        self.pool
            .with_page_view(self.fid, PageId(0), self.view(), |d| {
                PageId(u64::from_le_bytes(d[8..16].try_into().unwrap()))
            })
    }

    fn set_root(&self, pid: PageId) -> StorageResult<()> {
        self.pool
            .with_page_mut_view(self.fid, PageId(0), self.view(), |d| {
                d[8..16].copy_from_slice(&pid.0.to_le_bytes());
            })
    }

    /// Number of items in the tree.
    pub fn len(&self) -> StorageResult<u64> {
        self.pool
            .with_page_view(self.fid, PageId(0), self.view(), |d| {
                u64::from_le_bytes(d[16..24].try_into().unwrap())
            })
    }

    /// True iff the tree holds no items.
    pub fn is_empty(&self) -> StorageResult<bool> {
        Ok(self.len()? == 0)
    }

    fn bump_len(&self, delta: i64) -> StorageResult<()> {
        self.pool
            .with_page_mut_view(self.fid, PageId(0), self.view(), |d| {
                let n = u64::from_le_bytes(d[16..24].try_into().unwrap());
                let n = n.checked_add_signed(delta).ok_or_else(|| {
                    StorageError::Corrupt("B-tree length counter underflow".into())
                })?;
                d[16..24].copy_from_slice(&n.to_le_bytes());
                Ok(())
            })?
    }

    /// Parse one node's bytes. A page that does not parse — possible
    /// only through external corruption, never a crash the WAL protocol
    /// covers — yields `StorageError::Corrupt` rather than a panic, so
    /// the request that hit it fails instead of the process.
    fn parse_node(pid: PageId, d: &[u8]) -> StorageResult<Node> {
        let mut copy = d.to_vec();
        let p = SlottedPage::attach(&mut copy);
        let corrupt = |what: &str| StorageError::Corrupt(format!("B-tree node {}: {what}", pid.0));
        p.validate().map_err(|e| corrupt(&e))?;
        let hdr = p.get(0).ok_or_else(|| corrupt("missing header"))?;
        if hdr.len() < 9 {
            return Err(corrupt("short header"));
        }
        let is_leaf = hdr[0] == 1;
        let extra = u64::from_le_bytes(hdr[1..9].try_into().unwrap());
        let mut entries = Vec::with_capacity(p.n_slots().saturating_sub(1) as usize);
        for i in 1..p.n_slots() {
            let e = p.get(i).ok_or_else(|| corrupt("slot gap"))?;
            if !is_leaf && e.len() < 8 {
                return Err(corrupt("internal entry shorter than a child pointer"));
            }
            entries.push(e.to_vec());
        }
        Ok(Node {
            is_leaf,
            extra,
            entries,
        })
    }

    fn read_node(&self, pid: PageId) -> StorageResult<Node> {
        self.pool
            .with_page_view(self.fid, pid, self.view(), |d| Self::parse_node(pid, d))?
    }

    fn write_node(&self, pid: PageId, node: &Node) -> StorageResult<()> {
        self.pool
            .with_page_mut_view(self.fid, pid, self.view(), |d| {
                let mut p = SlottedPage::format(d);
                let mut hdr = [0u8; 9];
                hdr[0] = node.is_leaf as u8;
                hdr[1..9].copy_from_slice(&node.extra.to_le_bytes());
                if p.insert(&hdr)?.is_none() {
                    return Err(StorageError::Corrupt(
                        "B-tree node header does not fit".into(),
                    ));
                }
                for (i, e) in node.entries.iter().enumerate() {
                    if !p.insert_at(i as u16 + 1, e)? {
                        return Err(StorageError::Corrupt(
                            "B-tree node overflow while rewriting".into(),
                        ));
                    }
                }
                Ok(())
            })?
    }

    /// Try to insert an entry at slot position `idx+1` in place; `false`
    /// if the page is full.
    fn node_insert_at(&self, pid: PageId, idx: usize, entry: &[u8]) -> StorageResult<bool> {
        self.pool
            .with_page_mut_view(self.fid, pid, self.view(), |d| {
                SlottedPage::attach(d).insert_at(idx as u16 + 1, entry)
            })?
    }

    /// Insert `item`; returns `true` if it was not already present.
    pub fn insert(&self, item: &[u8]) -> StorageResult<bool> {
        if item.len() > MAX_ITEM {
            return Err(StorageError::RecordTooLarge {
                size: item.len(),
                max: MAX_ITEM,
            });
        }
        let root = self.root()?;
        match self.insert_rec(root, item)? {
            InsertOutcome::Duplicate => Ok(false),
            InsertOutcome::Done => {
                self.bump_len(1)?;
                Ok(true)
            }
            InsertOutcome::Split(sep, right) => {
                // Grow the tree: fresh root with the old root as child0.
                let new_root = self.pool.allocate_page(self.fid)?;
                self.write_node(
                    new_root,
                    &Node {
                        is_leaf: false,
                        extra: root.0,
                        entries: vec![Node::make_entry(right, &sep)],
                    },
                )?;
                self.set_root(new_root)?;
                self.bump_len(1)?;
                Ok(true)
            }
        }
    }

    fn insert_rec(&self, pid: PageId, item: &[u8]) -> StorageResult<InsertOutcome> {
        let node = self.read_node(pid)?;
        if node.is_leaf {
            let pos = match node.entries.binary_search_by(|e| e.as_slice().cmp(item)) {
                Ok(_) => return Ok(InsertOutcome::Duplicate),
                Err(p) => p,
            };
            if self.node_insert_at(pid, pos, item)? {
                return Ok(InsertOutcome::Done);
            }
            // Split the leaf.
            let mut entries = node.entries;
            entries.insert(pos, item.to_vec());
            let mid = entries.len() / 2;
            let right_entries = entries.split_off(mid);
            let right_pid = self.pool.allocate_page(self.fid)?;
            let sep = right_entries[0].clone();
            self.write_node(
                right_pid,
                &Node {
                    is_leaf: true,
                    extra: node.extra,
                    entries: right_entries,
                },
            )?;
            self.write_node(
                pid,
                &Node {
                    is_leaf: true,
                    extra: right_pid.0,
                    entries,
                },
            )?;
            Ok(InsertOutcome::Split(sep, right_pid.0))
        } else {
            let (child_idx, child) = Self::choose_child(&node, item);
            match self.insert_rec(PageId(child), item)? {
                InsertOutcome::Duplicate => Ok(InsertOutcome::Duplicate),
                InsertOutcome::Done => Ok(InsertOutcome::Done),
                InsertOutcome::Split(sep, right) => {
                    let entry = Node::make_entry(right, &sep);
                    // Entry for `right` goes just after the chosen child.
                    let pos = child_idx;
                    if self.node_insert_at(pid, pos, &entry)? {
                        return Ok(InsertOutcome::Done);
                    }
                    // Split this internal node; the middle separator moves up.
                    let mut entries = node.entries;
                    entries.insert(pos, entry);
                    let mid = entries.len() / 2;
                    let promoted = entries[mid].clone();
                    let right_entries = entries.split_off(mid + 1);
                    entries.pop(); // remove the promoted entry from the left
                    let right_pid = self.pool.allocate_page(self.fid)?;
                    self.write_node(
                        right_pid,
                        &Node {
                            is_leaf: false,
                            extra: Node::entry_child(&promoted),
                            entries: right_entries,
                        },
                    )?;
                    self.write_node(
                        pid,
                        &Node {
                            is_leaf: false,
                            extra: node.extra,
                            entries,
                        },
                    )?;
                    Ok(InsertOutcome::Split(
                        Node::entry_sep(&promoted).to_vec(),
                        right_pid.0,
                    ))
                }
            }
        }
    }

    /// Index of the entry whose child should hold `item` (the slot *after*
    /// which a promoted sibling would be inserted), and the child pid.
    fn choose_child(node: &Node, item: &[u8]) -> (usize, u64) {
        // Last entry with separator <= item; if none, leftmost child.
        let pos = node.entries.partition_point(|e| Node::entry_sep(e) <= item);
        if pos == 0 {
            (0, node.extra)
        } else {
            (pos, Node::entry_child(&node.entries[pos - 1]))
        }
    }

    /// True iff `item` is present.
    pub fn contains(&self, item: &[u8]) -> StorageResult<bool> {
        let mut pid = self.root()?;
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                return Ok(node
                    .entries
                    .binary_search_by(|e| e.as_slice().cmp(item))
                    .is_ok());
            }
            pid = PageId(Self::choose_child(&node, item).1);
        }
    }

    /// Remove `item`; returns `true` if it was present.
    pub fn delete(&self, item: &[u8]) -> StorageResult<bool> {
        let mut pid = self.root()?;
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                match node.entries.binary_search_by(|e| e.as_slice().cmp(item)) {
                    Ok(pos) => {
                        self.pool
                            .with_page_mut_view(self.fid, pid, self.view(), |d| {
                                SlottedPage::attach(d).remove_at(pos as u16 + 1);
                            })?;
                        self.bump_len(-1)?;
                        return Ok(true);
                    }
                    Err(_) => return Ok(false),
                }
            }
            pid = PageId(Self::choose_child(&node, item).1);
        }
    }

    /// Scan items in `lo..hi` (`hi = None` scans to the end).
    pub fn range(&self, lo: &[u8], hi: Option<&[u8]>) -> StorageResult<BTreeRange> {
        // Descend to the leaf that could hold `lo`.
        let mut pid = self.root()?;
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                let start = node.entries.partition_point(|e| e.as_slice() < lo);
                let mut scan = BTreeRange {
                    tree_pool: Arc::clone(&self.pool),
                    fid: self.fid,
                    view: self.view(),
                    _guard: None,
                    hi: hi.map(|h| h.to_vec()),
                    buffered: node.entries,
                    pos: start,
                    next_leaf: node.extra,
                    done: false,
                };
                scan.clip();
                return Ok(scan);
            }
            pid = PageId(Self::choose_child(&node, lo).1);
        }
    }

    /// Scan all items with the given prefix.
    pub fn scan_prefix(&self, prefix: &[u8]) -> StorageResult<BTreeRange> {
        let hi = prefix_successor(prefix);
        self.range(prefix, hi.as_deref())
    }

    /// Scan the whole tree in order.
    pub fn scan_all(&self) -> StorageResult<BTreeRange> {
        self.range(&[], None)
    }

    /// Structural integrity check: walks the whole tree verifying that
    /// every node parses, keys are strictly ordered and within their
    /// parent's separator bounds, all leaves sit at one depth, the leaf
    /// sibling chain matches the in-order leaf sequence, no page is
    /// reachable twice, and the meta item counter equals the number of
    /// items found. Read-only; returns the violations (empty = clean).
    /// I/O errors still propagate as `Err` — a violation is a property of
    /// the bytes, not of the disk.
    pub fn check(&self) -> StorageResult<Vec<String>> {
        let mut problems = Vec::new();
        let total_pages = self.pool.num_pages(self.fid)?;
        if total_pages == 0 {
            problems.push("B-tree file has no meta page".into());
            return Ok(problems);
        }
        let magic_ok = self
            .pool
            .with_page_view(self.fid, PageId(0), self.view(), |d| &d[0..8] == META_MAGIC)?;
        if !magic_ok {
            problems.push("meta page magic mismatch".into());
            return Ok(problems);
        }
        let root = self.root()?;
        let mut walk = CheckWalk {
            total_pages,
            visited: std::collections::HashSet::new(),
            leaves: Vec::new(),
            items: 0,
            leaf_depth: None,
            problems,
        };
        self.check_rec(root, 1, None, None, &mut walk)?;
        // The sibling chain must thread the leaves exactly in key order.
        for w in walk.leaves.windows(2) {
            let ((pid, extra), (next, _)) = (w[0], w[1]);
            if extra != next.0 {
                walk.problems.push(format!(
                    "leaf {} sibling pointer {} skips in-order successor {}",
                    pid.0, extra, next.0
                ));
            }
        }
        if let Some(&(last, extra)) = walk.leaves.last() {
            if extra != NO_SIBLING {
                walk.problems.push(format!(
                    "last leaf {} has a dangling sibling {extra}",
                    last.0
                ));
            }
        }
        let len = self.len()?;
        if len != walk.items {
            walk.problems.push(format!(
                "meta item count {len} != {} items found in leaves",
                walk.items
            ));
        }
        Ok(walk.problems)
    }

    fn check_rec(
        &self,
        pid: PageId,
        depth: usize,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        walk: &mut CheckWalk,
    ) -> StorageResult<()> {
        if pid.0 == 0 || pid.0 >= walk.total_pages {
            walk.problems
                .push(format!("child pointer {} outside file", pid.0));
            return Ok(());
        }
        if !walk.visited.insert(pid.0) {
            walk.problems.push(format!(
                "page {} reachable twice (cycle or shared child)",
                pid.0
            ));
            return Ok(());
        }
        let node = match self.read_node(pid) {
            Ok(n) => n,
            Err(StorageError::Corrupt(msg)) => {
                walk.problems.push(msg);
                return Ok(());
            }
            Err(e) => return Err(e),
        };
        let keys: Vec<&[u8]> = if node.is_leaf {
            node.entries.iter().map(|e| e.as_slice()).collect()
        } else {
            node.entries.iter().map(|e| Node::entry_sep(e)).collect()
        };
        for w in keys.windows(2) {
            if w[0] >= w[1] {
                walk.problems
                    .push(format!("node {}: entries out of order", pid.0));
                break;
            }
        }
        for k in &keys {
            if lo.is_some_and(|lo| *k < lo) || hi.is_some_and(|hi| *k >= hi) {
                walk.problems.push(format!(
                    "node {}: entry outside parent separator bounds",
                    pid.0
                ));
                break;
            }
        }
        if node.is_leaf {
            match walk.leaf_depth {
                None => walk.leaf_depth = Some(depth),
                Some(d) if d != depth => {
                    walk.problems
                        .push(format!("leaf {} at depth {depth}, expected {d}", pid.0));
                }
                Some(_) => {}
            }
            walk.items += node.entries.len() as u64;
            walk.leaves.push((pid, node.extra));
        } else {
            let seps: Vec<Vec<u8>> = node
                .entries
                .iter()
                .map(|e| Node::entry_sep(e).to_vec())
                .collect();
            let first_hi = seps.first().map(|s| s.as_slice()).or(hi);
            self.check_rec(PageId(node.extra), depth + 1, lo, first_hi, walk)?;
            for (i, e) in node.entries.iter().enumerate() {
                let child_lo = Some(seps[i].as_slice());
                let child_hi = seps.get(i + 1).map(|s| s.as_slice()).or(hi);
                self.check_rec(
                    PageId(Node::entry_child(e)),
                    depth + 1,
                    child_lo,
                    child_hi,
                    walk,
                )?;
            }
        }
        Ok(())
    }

    /// Depth of the tree (1 = root is a leaf); for tests and diagnostics.
    pub fn depth(&self) -> StorageResult<usize> {
        let mut pid = self.root()?;
        let mut d = 1;
        loop {
            let node = self.read_node(pid)?;
            if node.is_leaf {
                return Ok(d);
            }
            pid = PageId(node.extra);
            d += 1;
        }
    }
}

enum InsertOutcome {
    Duplicate,
    Done,
    Split(Vec<u8>, u64),
}

/// Accumulator for [`BTree::check`]'s tree walk.
struct CheckWalk {
    total_pages: u64,
    visited: std::collections::HashSet<u64>,
    /// `(pid, sibling)` per leaf, in key order.
    leaves: Vec<(PageId, u64)>,
    items: u64,
    leaf_depth: Option<usize>,
    problems: Vec<String>,
}

/// The smallest byte string greater than every string with `prefix`
/// (`None` if the prefix is all-0xFF or empty).
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut s = prefix.to_vec();
    while let Some(&last) = s.last() {
        if last == 0xFF {
            s.pop();
        } else {
            *s.last_mut().unwrap() += 1;
            return Some(s);
        }
    }
    None
}

/// In-order iterator over a key range.
pub struct BTreeRange {
    tree_pool: Arc<BufferPool>,
    fid: FileId,
    view: View,
    /// Keeps the snapshot this scan reads through pinned.
    _guard: Option<Arc<SnapshotGuard>>,
    hi: Option<Vec<u8>>,
    buffered: Vec<Vec<u8>>,
    pos: usize,
    next_leaf: u64,
    done: bool,
}

impl BTreeRange {
    /// Hold `guard` for the iterator's lifetime (snapshot scans).
    pub fn with_guard(mut self, guard: Arc<SnapshotGuard>) -> BTreeRange {
        self._guard = Some(guard);
        self
    }

    /// Drop buffered entries at/after `hi` and mark done if we hit it.
    fn clip(&mut self) {
        if let Some(hi) = &self.hi {
            let end = self
                .buffered
                .partition_point(|e| e.as_slice() < hi.as_slice());
            if end < self.buffered.len() {
                self.buffered.truncate(end);
                self.done = true;
            }
        }
    }
}

impl Iterator for BTreeRange {
    type Item = StorageResult<Vec<u8>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.pos < self.buffered.len() {
                let item = self.buffered[self.pos].clone();
                self.pos += 1;
                return Some(Ok(item));
            }
            if self.done || self.next_leaf == NO_SIBLING {
                return None;
            }
            let pid = PageId(self.next_leaf);
            let res = self
                .tree_pool
                .with_page_view(self.fid, pid, self.view, |d| BTree::parse_node(pid, d))
                .and_then(|r| r.map(|n| (n.extra, n.entries)));
            match res {
                Ok((sibling, entries)) => {
                    self.next_leaf = sibling;
                    self.buffered = entries;
                    self.pos = 0;
                    self.clip();
                }
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFile;
    use std::path::PathBuf;

    fn tree(name: &str, frames: usize) -> BTree {
        let d = std::env::temp_dir().join(format!("coral-btree-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p: PathBuf = d.join(name);
        let _ = std::fs::remove_file(&p);
        let pool = Arc::new(BufferPool::new(frames));
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&p).unwrap());
        BTree::open(pool, fid).unwrap()
    }

    fn key(i: u32) -> Vec<u8> {
        format!("key-{i:08}").into_bytes()
    }

    #[test]
    fn insert_contains_small() {
        let t = tree("small.bt", 8);
        assert!(t.insert(b"b").unwrap());
        assert!(t.insert(b"a").unwrap());
        assert!(t.insert(b"c").unwrap());
        assert!(!t.insert(b"b").unwrap(), "duplicate rejected");
        assert!(t.contains(b"a").unwrap());
        assert!(t.contains(b"b").unwrap());
        assert!(!t.contains(b"d").unwrap());
        assert_eq!(t.len().unwrap(), 3);
    }

    #[test]
    fn thousands_of_items_split_and_scan_in_order() {
        let t = tree("big.bt", 64);
        // Insert in a scrambled order.
        let n = 5000u32;
        let mut order: Vec<u32> = (0..n).collect();
        // Deterministic shuffle.
        let mut state = 0x12345678u64;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        for i in &order {
            assert!(t.insert(&key(*i)).unwrap());
        }
        assert_eq!(t.len().unwrap(), n as u64);
        assert!(t.depth().unwrap() >= 2, "tree actually split");
        let all: Vec<Vec<u8>> = t.scan_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(all.len(), n as usize);
        let expect: Vec<Vec<u8>> = (0..n).map(key).collect();
        assert_eq!(all, expect, "in-order scan");
        for i in (0..n).step_by(97) {
            assert!(t.contains(&key(i)).unwrap());
        }
        assert!(!t.contains(b"key-99999999").unwrap());
    }

    #[test]
    fn range_scans() {
        let t = tree("range.bt", 16);
        for i in 0..1000u32 {
            t.insert(&key(i)).unwrap();
        }
        let got: Vec<Vec<u8>> = t
            .range(&key(100), Some(&key(110)))
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(got, (100..110).map(key).collect::<Vec<_>>());
        // Empty range.
        assert_eq!(t.range(&key(50), Some(&key(50))).unwrap().count(), 0);
        // Open-ended.
        assert_eq!(t.range(&key(990), None).unwrap().count(), 10);
        // Below the smallest key.
        assert_eq!(t.range(b"a", Some(b"kex")).unwrap().count(), 0);
    }

    #[test]
    fn prefix_scans() {
        let t = tree("prefix.bt", 16);
        for (k, v) in [("app", 1), ("apple", 2), ("apply", 3), ("banana", 4)] {
            let mut item = k.as_bytes().to_vec();
            item.push(v as u8);
            t.insert(&item).unwrap();
        }
        let hits = t.scan_prefix(b"appl").unwrap().count();
        assert_eq!(hits, 2);
        let hits = t.scan_prefix(b"app").unwrap().count();
        assert_eq!(hits, 3);
        assert_eq!(t.scan_prefix(b"zzz").unwrap().count(), 0);
    }

    #[test]
    fn prefix_successor_edge_cases() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(&[0x61, 0xFF]), Some(vec![0x62]));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn delete_items() {
        let t = tree("del.bt", 16);
        for i in 0..500u32 {
            t.insert(&key(i)).unwrap();
        }
        for i in (0..500).step_by(2) {
            assert!(t.delete(&key(i)).unwrap());
        }
        assert!(!t.delete(&key(0)).unwrap(), "double delete");
        assert_eq!(t.len().unwrap(), 250);
        let left: Vec<Vec<u8>> = t.scan_all().unwrap().map(|r| r.unwrap()).collect();
        assert_eq!(
            left,
            (0..500).filter(|i| i % 2 == 1).map(key).collect::<Vec<_>>()
        );
        for i in 0..500u32 {
            assert_eq!(t.contains(&key(i)).unwrap(), i % 2 == 1);
        }
    }

    #[test]
    fn persists_across_reopen() {
        let d = std::env::temp_dir().join(format!("coral-btree-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join("reopen.bt");
        let _ = std::fs::remove_file(&p);
        {
            let pool = Arc::new(BufferPool::new(16));
            pool.register_file(FileId(0), PageFile::open(&p).unwrap());
            let t = BTree::open(Arc::clone(&pool), FileId(0)).unwrap();
            for i in 0..300u32 {
                t.insert(&key(i)).unwrap();
            }
            pool.flush_all().unwrap();
        }
        {
            let pool = Arc::new(BufferPool::new(16));
            pool.register_file(FileId(0), PageFile::open(&p).unwrap());
            let t = BTree::open(pool, FileId(0)).unwrap();
            assert_eq!(t.len().unwrap(), 300);
            assert!(t.contains(&key(299)).unwrap());
            assert_eq!(t.scan_all().unwrap().count(), 300);
        }
    }

    #[test]
    fn oversized_item_rejected() {
        let t = tree("oversize.bt", 8);
        assert!(matches!(
            t.insert(&vec![0u8; MAX_ITEM + 1]),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn large_items_force_splits() {
        let t = tree("largeitems.bt", 32);
        for i in 0..100u32 {
            let mut item = vec![b'x'; 900];
            item.extend_from_slice(&key(i));
            assert!(t.insert(&item).unwrap());
        }
        assert_eq!(t.len().unwrap(), 100);
        assert_eq!(t.scan_all().unwrap().count(), 100);
        assert!(t.depth().unwrap() >= 2);
    }
}
