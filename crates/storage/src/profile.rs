//! Storage-layer profiling counters.
//!
//! Mirrors the per-pool [`crate::buffer::BufferStats`] into the engine's
//! thread-local profiling stream so `EngineProfile` can report buffer
//! traffic alongside the term/relation/core counters. Same design as the
//! other layers' `profile` modules: a thread-local `Cell`, compiled out
//! without the `profile` feature.

/// Whether counters are compiled in (`profile` cargo feature).
pub const AVAILABLE: bool = cfg!(feature = "profile");

/// Storage-layer counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct Counters {
    /// Buffer-pool fixes satisfied from memory.
    pub pool_hits: u64,
    /// Buffer-pool fixes that read from disk.
    pub pool_misses: u64,
    /// Pages evicted to make room.
    pub pool_evictions: u64,
    /// Write-ahead-log records appended.
    pub wal_appends: u64,
}

impl Counters {
    /// All-zero counters (usable in const-initialized thread-locals).
    pub const ZERO: Counters = Counters {
        pool_hits: 0,
        pool_misses: 0,
        pool_evictions: 0,
        wal_appends: 0,
    };
}

#[cfg(feature = "profile")]
mod imp {
    use super::Counters;
    use std::cell::Cell;

    // Const-initialized, Drop-free cells: access is a direct TLS load
    // with no lazy-init branch, and the disabled path never copies the
    // counter block.
    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static COUNTERS: Cell<Counters> = const { Cell::new(Counters::ZERO) };
    }

    #[inline]
    pub(crate) fn bump(f: impl FnOnce(&mut Counters)) {
        if ENABLED.with(|e| e.get()) {
            COUNTERS.with(|c| {
                let mut v = c.get();
                f(&mut v);
                c.set(v);
            });
        }
    }

    pub fn set_enabled(on: bool) {
        ENABLED.with(|e| e.set(on));
    }

    pub fn enabled() -> bool {
        ENABLED.with(|e| e.get())
    }

    pub fn reset() {
        COUNTERS.with(|c| c.set(Counters::ZERO));
    }

    pub fn snapshot() -> Counters {
        COUNTERS.with(|c| c.get())
    }
}

#[cfg(feature = "profile")]
pub(crate) use imp::bump;
#[cfg(feature = "profile")]
pub use imp::{enabled, reset, set_enabled, snapshot};

#[cfg(not(feature = "profile"))]
mod imp_off {
    use super::Counters;

    #[inline(always)]
    pub(crate) fn bump(_f: impl FnOnce(&mut Counters)) {}

    pub fn set_enabled(_on: bool) {}

    pub fn enabled() -> bool {
        false
    }

    pub fn reset() {}

    pub fn snapshot() -> Counters {
        Counters::default()
    }
}

#[cfg(not(feature = "profile"))]
pub(crate) use imp_off::bump;
#[cfg(not(feature = "profile"))]
pub use imp_off::{enabled, reset, set_enabled, snapshot};
