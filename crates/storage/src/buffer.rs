//! The buffer pool.
//!
//! "Data stored using the EXODUS storage manager is paged into EXODUS
//! buffers on demand … the data can be accessed purely out of pages in
//! the EXODUS buffer pool" (§2). This pool caches pages of registered
//! [`PageFile`]s in a fixed number of frames with CLOCK (second-chance)
//! eviction, write-back of dirty frames, pin counts, and hit/miss
//! statistics — the statistics are what experiment E9 observes.
//!
//! Access is closure-scoped: [`BufferPool::with_page`] pins the frame for
//! the duration of the closure. Calls must not nest (the pool is behind a
//! single mutex); callers copy what they need out of the page instead of
//! holding two pages at once. Explicit [`BufferPool::pin`]/
//! [`BufferPool::unpin`] exist for transactions, which pin the pages they
//! dirty until commit (a no-steal policy that keeps the write-ahead log
//! redo-only).
//!
//! ## MVCC
//!
//! A pool opened with [`BufferPool::new_mvcc`] layers the [`crate::tx`]
//! concurrency manager over the frames. Every page access then carries a
//! [`View`]:
//!
//! * `Live` reads the frame (newest state); a `Live` *write* is
//!   attributed to the sole active transaction if exactly one is open
//!   (the single-session compatibility path), is a bare versioned write
//!   when none is, and is refused as ambiguous otherwise.
//! * `Snapshot(ts)` serves the newest committed image at or below `ts`
//!   from the version store, a zero page for pages born later, or the
//!   frame when the page has no versions (then the frame *is* the
//!   committed state — every page with an uncommitted writer has its
//!   latest committed image in the store). Snapshot reads never block
//!   and never take locks.
//! * `Txn(id)` reads the transaction's own writes from the frames and
//!   everything else as of its begin snapshot, recording the read set;
//!   writes acquire per-page write locks (wound-or-timeout) and check
//!   first-updater-wins, pinning dirtied frames until commit/abort.
//!
//! Commit is split for group commit: [`BufferPool::tx_prepare`]
//! validates the read set and peeks the after-images (the storage
//! server logs them), then [`BufferPool::tx_install`] assigns the commit
//! timestamp, publishes the new versions and releases the locks — in
//! WAL order, which is what makes commit timestamps a serialisation
//! order.

use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageFile, PageId};
use crate::page::PAGE_SIZE;
use crate::tx::{LockTable, MvccState, PageKey, TxStats, TxnState, View};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Buffer pool counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Physical page reads.
    pub page_reads: u64,
    /// Physical page writes.
    pub page_writes: u64,
}

/// A page's address and contents, as returned by [`BufferPool::commit_txn`].
pub type PageImage = ((FileId, PageId), Box<[u8]>);

/// Before-images of the pages dirtied by the open transaction.
type TxnImages = HashMap<(FileId, PageId), Box<[u8]>>;

/// The image served for a page that did not exist at a snapshot's
/// timestamp (files only grow; trailing pages read as empty).
static ZERO_PAGE: [u8; PAGE_SIZE] = [0u8; PAGE_SIZE];

struct Frame {
    key: Option<(FileId, PageId)>,
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    files: HashMap<FileId, PageFile>,
    hand: usize,
    stats: BufferStats,
    /// Before-images of pages dirtied by the active transaction, if one
    /// is open (`None` = no transaction). The single-slot design matches
    /// the paper's single-user client (§2); the MVCC pool replaces it
    /// with `mvcc` and refuses this API.
    txn: Option<TxnImages>,
    /// Multi-transaction MVCC state (`None` = legacy single-slot mode,
    /// the `CORAL_MVCC=0` escape hatch).
    mvcc: Option<MvccState>,
}

/// A fixed-capacity page cache over a set of registered files.
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
    /// Per-page write locks (wound-or-timeout). Lives outside `inner`:
    /// waiting for a lock must not block other sessions' page traffic.
    locks: LockTable,
}

/// Refcounted snapshot pin: holds a commit-timestamp snapshot alive for
/// the lifetime of lazy iterators reading through it.
pub struct SnapshotGuard {
    pool: Arc<BufferPool>,
    ts: u64,
}

impl SnapshotGuard {
    /// Pin the current committed state; reads through
    /// [`View::Snapshot`]`(guard.ts())` stay repeatable until dropped.
    pub fn pin(pool: &Arc<BufferPool>) -> Arc<SnapshotGuard> {
        Arc::new(SnapshotGuard {
            pool: Arc::clone(pool),
            ts: pool.pin_snapshot(),
        })
    }

    /// The pinned commit timestamp.
    pub fn ts(&self) -> u64 {
        self.ts
    }
}

impl Drop for SnapshotGuard {
    fn drop(&mut self) {
        self.pool.release_snapshot(self.ts);
    }
}

impl BufferPool {
    /// Create a pool with `capacity` frames (at least 1) in legacy
    /// single-transaction mode.
    pub fn new(capacity: usize) -> BufferPool {
        Self::build(capacity, false)
    }

    /// Create a pool with the MVCC concurrency manager enabled.
    pub fn new_mvcc(capacity: usize) -> BufferPool {
        Self::build(capacity, true)
    }

    fn build(capacity: usize, mvcc: bool) -> BufferPool {
        let capacity = capacity.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                pins: 0,
                referenced: false,
            })
            .collect();
        BufferPool {
            inner: Mutex::new(Inner {
                frames,
                map: HashMap::new(),
                files: HashMap::new(),
                hand: 0,
                stats: BufferStats::default(),
                txn: None,
                mvcc: mvcc.then(MvccState::default),
            }),
            capacity,
            locks: LockTable::new(Duration::from_millis(200)),
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// True iff the MVCC concurrency manager is enabled.
    pub fn mvcc_enabled(&self) -> bool {
        self.inner.lock().unwrap().mvcc.is_some()
    }

    /// Set the write-lock wait budget. Zero makes contended acquisitions
    /// fail immediately with [`StorageError::TxnConflict`] — the
    /// deterministic mode the simulator runs in.
    pub fn set_lock_timeout(&self, timeout: Duration) {
        self.locks.set_timeout(timeout);
    }

    /// Register an open file under `fid`.
    pub fn register_file(&self, fid: FileId, file: PageFile) {
        let mut inner = self.inner.lock().unwrap();
        inner.files.insert(fid, file);
    }

    /// Flush and forget all cached pages of `fid`, returning the file.
    pub fn unregister_file(&self, fid: FileId) -> StorageResult<Option<PageFile>> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_file_locked(&mut inner, fid)?;
        for f in inner.frames.iter_mut() {
            if matches!(f.key, Some((k, _)) if k == fid) {
                f.key = None;
                f.dirty = false;
                f.pins = 0;
            }
        }
        inner.map.retain(|(k, _), _| *k != fid);
        if let Some(m) = inner.mvcc.as_mut() {
            m.versions.retain(|(k, _), _| *k != fid);
            m.page_ts.retain(|(k, _), _| *k != fid);
        }
        Ok(inner.files.remove(&fid))
    }

    /// Number of pages in a registered file.
    pub fn num_pages(&self, fid: FileId) -> StorageResult<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .files
            .get(&fid)
            .map(|f| f.num_pages())
            .ok_or(StorageError::BadFileId)
    }

    /// Append a fresh zeroed page to `fid` and cache it.
    pub fn allocate_page(&self, fid: FileId) -> StorageResult<PageId> {
        let mut inner = self.inner.lock().unwrap();
        let pid = inner
            .files
            .get_mut(&fid)
            .ok_or(StorageError::BadFileId)?
            .allocate()?;
        inner.stats.page_writes += 1; // the zero-fill write
        let frame = self.find_frame(&mut inner, fid, pid, false)?;
        inner.frames[frame].data.fill(0);
        inner.frames[frame].dirty = false;
        Ok(pid)
    }

    fn find_frame(
        &self,
        inner: &mut Inner,
        fid: FileId,
        pid: PageId,
        load: bool,
    ) -> StorageResult<usize> {
        if let Some(&idx) = inner.map.get(&(fid, pid)) {
            inner.stats.hits += 1;
            crate::profile::bump(|c| c.pool_hits += 1);
            inner.frames[idx].referenced = true;
            return Ok(idx);
        }
        inner.stats.misses += 1;
        crate::profile::bump(|c| c.pool_misses += 1);
        // CLOCK sweep for a victim (unpinned frame; clear ref bits as we
        // pass). Two full sweeps guarantee progress unless all pinned.
        let cap = inner.frames.len();
        let mut victim = None;
        for _ in 0..2 * cap {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % cap;
            let f = &mut inner.frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.key.is_none() || !f.referenced {
                victim = Some(i);
                break;
            }
            f.referenced = false;
        }
        let idx = victim.ok_or_else(|| {
            StorageError::Corrupt("buffer pool exhausted: all frames pinned".into())
        })?;
        // Write back the evicted page if dirty. On an I/O error the
        // frame's buffer is restored and the frame stays mapped and
        // dirty, so the error costs this one request, not pool
        // integrity (the write can be retried or the txn aborted).
        // Transaction-dirtied pages are pinned (no-steal), so a dirty
        // victim always holds committed bytes.
        if let Some((efid, epid)) = inner.frames[idx].key {
            if inner.frames[idx].dirty {
                let data = std::mem::take(&mut inner.frames[idx].data);
                let res = inner
                    .files
                    .get_mut(&efid)
                    .ok_or(StorageError::BadFileId)
                    .and_then(|f| f.write_page(epid, &data));
                inner.frames[idx].data = data;
                res?;
                inner.stats.page_writes += 1;
            }
            inner.map.remove(&(efid, epid));
            inner.stats.evictions += 1;
            crate::profile::bump(|c| c.pool_evictions += 1);
        }
        if load {
            let mut data = std::mem::take(&mut inner.frames[idx].data);
            let res = inner
                .files
                .get_mut(&fid)
                .ok_or(StorageError::BadFileId)
                .and_then(|f| f.read_page(pid, &mut data));
            inner.frames[idx].data = data;
            if let Err(e) = res {
                // The old occupant is already unmapped; leaving its key
                // on the frame would later remove a *reloaded* copy's
                // map entry. Mark the frame free before bailing.
                let f = &mut inner.frames[idx];
                f.key = None;
                f.dirty = false;
                f.pins = 0;
                return Err(e);
            }
            inner.stats.page_reads += 1;
        }
        let f = &mut inner.frames[idx];
        f.key = Some((fid, pid));
        f.dirty = false;
        f.pins = 0;
        f.referenced = true;
        inner.map.insert((fid, pid), idx);
        Ok(idx)
    }

    /// Run `body` with read access to the page through the live view.
    /// Do not nest `with_page*` calls.
    pub fn with_page<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&[u8]) -> R,
    ) -> StorageResult<R> {
        self.with_page_view(fid, pid, View::Live, body)
    }

    /// Run `body` with read access to the page as seen by `view`. Do not
    /// nest `with_page*` calls.
    pub fn with_page_view<R>(
        &self,
        fid: FileId,
        pid: PageId,
        view: View,
        body: impl FnOnce(&[u8]) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock().unwrap();
        let snapshot = match (view, inner.mvcc.as_mut()) {
            (View::Live, _) | (_, None) => None,
            (View::Snapshot(s), Some(_)) => Some(s),
            (View::Txn(id), Some(m)) => {
                let st = m.active.get_mut(&id).ok_or(StorageError::UnknownTxn(id))?;
                if st.write_set.contains(&(fid, pid)) {
                    None // own uncommitted write: read the frame
                } else {
                    st.read_set.insert((fid, pid));
                    Some(st.snapshot)
                }
            }
        };
        if let Some(s) = snapshot {
            let m = inner.mvcc.as_ref().unwrap();
            let found = m
                .versions
                .get(&(fid, pid))
                .map(|list| list.iter().rposition(|&(ts, _)| ts <= s));
            match found {
                Some(Some(i)) => {
                    crate::profile::bump(|c| c.pool_hits += 1);
                    let bytes = &m.versions[&(fid, pid)][i].1;
                    return Ok(body(bytes));
                }
                // Versions exist but all postdate the snapshot: the page
                // was born after it. Files only grow, so serve "empty".
                Some(None) => return Ok(body(&ZERO_PAGE)),
                // No versions: the frame holds committed bytes.
                None => {}
            }
        }
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        Ok(body(&inner.frames[idx].data))
    }

    /// Run `body` with write access to the page through the live view;
    /// the frame is marked dirty. Do not nest `with_page*` calls.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        self.with_page_mut_view(fid, pid, View::Live, body)
    }

    /// Run `body` with write access to the page on behalf of `view`.
    /// Under MVCC a transactional write acquires the page write lock
    /// (blocking up to the lock timeout, wound-or-timeout on contention),
    /// checks first-updater-wins against the writer's snapshot, saves the
    /// committed before-image into the version store, and pins the frame
    /// until commit/abort. Do not nest `with_page*` calls.
    pub fn with_page_mut_view<R>(
        &self,
        fid: FileId,
        pid: PageId,
        view: View,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        // Resolve the writer first; a lock wait must not hold the pool
        // mutex.
        enum Mode {
            Legacy,
            Bare,
            Tx(u64, u64),
        }
        let mode = {
            let inner = self.inner.lock().unwrap();
            match inner.mvcc.as_ref() {
                None => Mode::Legacy,
                Some(m) => match view {
                    View::Snapshot(_) => {
                        return Err(StorageError::Corrupt(
                            "write through a read-only snapshot view".into(),
                        ))
                    }
                    View::Txn(id) => {
                        let st = m.active.get(&id).ok_or(StorageError::UnknownTxn(id))?;
                        Mode::Tx(id, st.seq)
                    }
                    View::Live => {
                        // Single-session compatibility: attribute to the
                        // sole active transaction, if any.
                        if m.active.len() == 1 {
                            let (&id, st) = m.active.iter().next().unwrap();
                            Mode::Tx(id, st.seq)
                        } else if m.active.is_empty() {
                            Mode::Bare
                        } else {
                            return Err(StorageError::Corrupt(
                                "ambiguous write outside a transaction: multiple \
                                 transactions active (use an explicit txn view)"
                                    .into(),
                            ));
                        }
                    }
                },
            }
        };
        match mode {
            Mode::Legacy => self.with_page_mut_legacy(fid, pid, body),
            Mode::Tx(id, seq) => self.txn_page_write(fid, pid, id, seq, body),
            Mode::Bare => self.bare_page_write(fid, pid, body),
        }
    }

    /// The pre-MVCC write path: single-slot transaction before-images.
    fn with_page_mut_legacy<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        // First write under an open transaction: save the before-image and
        // pin the frame until commit/abort (no-steal).
        if let Some(txn) = inner.txn.take() {
            let mut txn = txn;
            if let std::collections::hash_map::Entry::Vacant(e) = txn.entry((fid, pid)) {
                e.insert(inner.frames[idx].data.clone());
                inner.frames[idx].pins += 1;
            }
            inner.txn = Some(txn);
        }
        inner.frames[idx].dirty = true;
        Ok(body(&mut inner.frames[idx].data))
    }

    /// A transactional write: lock, first-updater check, before-image,
    /// pin, mutate.
    fn txn_page_write<R>(
        &self,
        fid: FileId,
        pid: PageId,
        id: u64,
        seq: u64,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        let key = (fid, pid);
        // May block (wound-or-timeout); on conflict the caller aborts the
        // transaction, which releases whatever it already holds.
        self.locks.acquire(id, seq, key)?;
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        let Inner { frames, mvcc, .. } = &mut *inner;
        let m = mvcc.as_mut().expect("txn write on non-MVCC pool");
        let st = m.active.get_mut(&id).ok_or(StorageError::UnknownTxn(id))?;
        let cur_ts = m.page_ts.get(&key).copied().unwrap_or(0);
        if !st.write_set.contains(&key) {
            // First-updater-wins: a commit after our snapshot beat us.
            if cur_ts > st.snapshot {
                m.stats.conflicts += 1;
                return Err(StorageError::TxnConflict(format!(
                    "page {}:{} committed at ts {cur_ts} after snapshot {}",
                    fid.0, pid.0, st.snapshot
                )));
            }
            // Publish the committed before-image so snapshot readers
            // (and our abort path) can still see it.
            let list = m.versions.entry(key).or_default();
            if list.last().map(|&(ts, _)| ts) != Some(cur_ts) {
                list.push((cur_ts, frames[idx].data.clone()));
            }
            st.write_set.insert(key);
            frames[idx].pins += 1; // no-steal until commit/abort
        }
        frames[idx].dirty = true;
        Ok(body(&mut frames[idx].data))
    }

    /// A write with no transaction open anywhere: applied in place. If
    /// live snapshots exist the old image is preserved and the new state
    /// published as a committed version, so pinned readers stay
    /// repeatable; otherwise the page's stale versions are dropped (the
    /// frame is the committed truth).
    fn bare_page_write<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        let key = (fid, pid);
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        let Inner { frames, mvcc, .. } = &mut *inner;
        let m = mvcc.as_mut().expect("bare write on non-MVCC pool");
        // A transaction may have begun since the mode was resolved.
        if m.active.values().any(|t| t.write_set.contains(&key)) {
            m.stats.conflicts += 1;
            return Err(StorageError::TxnConflict(format!(
                "unattributed write raced a transaction holding page {}:{}",
                fid.0, pid.0
            )));
        }
        if m.active.is_empty() && m.pins.is_empty() {
            m.versions.remove(&key);
            m.page_ts.remove(&key);
            frames[idx].dirty = true;
            return Ok(body(&mut frames[idx].data));
        }
        let cur_ts = m.page_ts.get(&key).copied().unwrap_or(0);
        let list = m.versions.entry(key).or_default();
        if list.last().map(|&(ts, _)| ts) != Some(cur_ts) {
            list.push((cur_ts, frames[idx].data.clone()));
        }
        frames[idx].dirty = true;
        let r = body(&mut frames[idx].data);
        m.commit_ts += 1;
        let ts = m.commit_ts;
        m.versions
            .get_mut(&key)
            .unwrap()
            .push((ts, frames[idx].data.clone()));
        m.page_ts.insert(key, ts);
        m.gc_page(key);
        Ok(r)
    }

    // -----------------------------------------------------------------
    // MVCC transactions.
    // -----------------------------------------------------------------

    /// Begin transaction `id` (id allocation is the server's job): its
    /// snapshot is the current commit timestamp.
    pub fn tx_begin(&self, id: u64) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let m = inner
            .mvcc
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("MVCC disabled".into()))?;
        m.next_seq += 1;
        let st = TxnState {
            seq: m.next_seq,
            snapshot: m.commit_ts,
            read_set: HashSet::new(),
            write_set: HashSet::new(),
        };
        if m.active.insert(id, st).is_some() {
            return Err(StorageError::Corrupt(format!(
                "transaction {id} already active"
            )));
        }
        m.stats.begun += 1;
        Ok(())
    }

    /// Validate `id` for commit and peek its after-images without closing
    /// it. Backward validation: every page read outside the write set
    /// must still carry a commit timestamp at or below the transaction's
    /// snapshot, and must not have been written by an earlier transaction
    /// of the same group-commit batch (`batch_written`) — those commits
    /// are ordered before ours but not yet installed. Locks stay held; a
    /// conflict leaves the transaction active for [`Self::tx_abort`].
    pub fn tx_prepare(
        &self,
        id: u64,
        batch_written: &HashSet<PageKey>,
    ) -> StorageResult<Vec<PageImage>> {
        if self.locks.is_wounded(id) {
            self.locks.conflicts.fetch_add(1, Ordering::Relaxed);
            return Err(StorageError::TxnConflict(format!(
                "transaction {id} wounded by an older transaction"
            )));
        }
        let mut inner = self.inner.lock().unwrap();
        let Inner {
            frames, map, mvcc, ..
        } = &mut *inner;
        let m = mvcc
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("MVCC disabled".into()))?;
        let st = m.active.get(&id).ok_or(StorageError::UnknownTxn(id))?;
        for key in &st.read_set {
            if st.write_set.contains(key) {
                continue;
            }
            let committed_after = m.page_ts.get(key).copied().unwrap_or(0) > st.snapshot;
            if committed_after || batch_written.contains(key) {
                m.stats.conflicts += 1;
                return Err(StorageError::TxnConflict(format!(
                    "read page {}:{} modified by a transaction committing after \
                     snapshot {}",
                    key.0 .0, key.1 .0, st.snapshot
                )));
            }
        }
        let mut images = Vec::with_capacity(st.write_set.len());
        for &key in &st.write_set {
            let idx = *map.get(&key).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            images.push((key, frames[idx].data.clone()));
        }
        images.sort_by_key(|(k, _)| *k);
        Ok(images)
    }

    /// Install `id`'s writes as committed: assign the next commit
    /// timestamp, publish the after-images as versions, unpin, release
    /// locks. Must be called in WAL order (the group-commit leader's
    /// ordering barrier) so commit timestamps agree with the log.
    pub fn tx_install(&self, id: u64) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let Inner {
            frames, map, mvcc, ..
        } = &mut *inner;
        let m = mvcc
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("MVCC disabled".into()))?;
        let st = m.active.remove(&id).ok_or(StorageError::UnknownTxn(id))?;
        m.commit_ts += 1;
        let ts = m.commit_ts;
        let mut pages: Vec<PageKey> = st.write_set.into_iter().collect();
        pages.sort();
        for &key in &pages {
            let idx = *map.get(&key).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            m.versions
                .entry(key)
                .or_default()
                .push((ts, frames[idx].data.clone()));
            m.page_ts.insert(key, ts);
            frames[idx].pins = frames[idx].pins.saturating_sub(1);
        }
        for key in pages {
            m.gc_page(key);
        }
        m.stats.committed += 1;
        drop(inner);
        self.locks.release_all(id);
        Ok(())
    }

    /// Roll transaction `id` back: restore the committed before-images
    /// into the frames, unpin, release locks.
    pub fn tx_abort(&self, id: u64) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let Inner {
            frames, map, mvcc, ..
        } = &mut *inner;
        let m = mvcc
            .as_mut()
            .ok_or_else(|| StorageError::Corrupt("MVCC disabled".into()))?;
        let st = m.active.remove(&id).ok_or(StorageError::UnknownTxn(id))?;
        let mut broken = None;
        for key in &st.write_set {
            let (Some(&idx), Some((_, image))) =
                (map.get(key), m.versions.get(key).and_then(|l| l.last()))
            else {
                broken = Some(*key);
                continue;
            };
            frames[idx].data.copy_from_slice(image);
            frames[idx].dirty = true;
            frames[idx].pins = frames[idx].pins.saturating_sub(1);
        }
        m.stats.aborted += 1;
        drop(inner);
        self.locks.release_all(id);
        match broken {
            Some((fid, pid)) => Err(StorageError::Corrupt(format!(
                "no before-image for aborted page {}:{}",
                fid.0, pid.0
            ))),
            None => Ok(()),
        }
    }

    /// Pin the current committed state; returns the snapshot timestamp.
    pub fn pin_snapshot(&self) -> u64 {
        let mut inner = self.inner.lock().unwrap();
        match inner.mvcc.as_mut() {
            Some(m) => {
                let ts = m.commit_ts;
                *m.pins.entry(ts).or_insert(0) += 1;
                m.stats.snapshots += 1;
                ts
            }
            None => 0,
        }
    }

    /// Release one pin of snapshot `ts`.
    pub fn release_snapshot(&self, ts: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(m) = inner.mvcc.as_mut() {
            if let Some(n) = m.pins.get_mut(&ts) {
                *n -= 1;
                if *n == 0 {
                    m.pins.remove(&ts);
                }
            }
        }
    }

    /// Number of active MVCC transactions.
    pub fn active_txn_count(&self) -> usize {
        self.inner
            .lock()
            .unwrap()
            .mvcc
            .as_ref()
            .map_or(0, |m| m.active.len())
    }

    /// The sole active transaction, if exactly one is open (the
    /// single-session attribution target).
    pub fn sole_active_txn(&self) -> Option<u64> {
        let inner = self.inner.lock().unwrap();
        let m = inner.mvcc.as_ref()?;
        if m.active.len() == 1 {
            m.active.keys().next().copied()
        } else {
            None
        }
    }

    /// Transaction counters (all zero in legacy mode and after
    /// `CORAL_MVCC=0`).
    pub fn tx_stats(&self) -> TxStats {
        let inner = self.inner.lock().unwrap();
        let mut s = inner.mvcc.as_ref().map(|m| m.stats).unwrap_or_default();
        s.conflicts += self.locks.conflicts.load(Ordering::Relaxed);
        s.wounds += self.locks.wounds.load(Ordering::Relaxed);
        s
    }

    /// Record one group-commit batch of `txns` transactions.
    pub fn note_group_commit(&self, txns: u64) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(m) = inner.mvcc.as_mut() {
            m.stats.group_commits += 1;
            m.stats.group_committed_txns += txns;
        }
    }

    // -----------------------------------------------------------------
    // Legacy single-slot transaction (CORAL_MVCC=0).
    // -----------------------------------------------------------------

    /// Open a transaction: subsequent page writes save before-images and
    /// pin their frames until [`Self::commit_txn`] or [`Self::abort_txn`].
    /// Only one transaction may be open (the single-user model of §2);
    /// unavailable on an MVCC pool.
    pub fn begin_txn(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.mvcc.is_some() {
            return Err(StorageError::Corrupt(
                "single-slot transaction API unavailable in MVCC mode".into(),
            ));
        }
        if inner.txn.is_some() {
            return Err(StorageError::Corrupt("transaction already open".into()));
        }
        inner.txn = Some(HashMap::new());
        Ok(())
    }

    /// True iff a legacy transaction is open.
    pub fn in_txn(&self) -> bool {
        self.inner.lock().unwrap().txn.is_some()
    }

    /// After-images of the pages dirtied so far by the open transaction,
    /// *without* closing it. The commit protocol peeks the images here,
    /// writes them to the log, and only then finalizes with
    /// [`Self::commit_txn`] (on log success) or [`Self::abort_txn`] (on
    /// log failure) — so a failed log write rolls the pool back instead
    /// of leaving unlogged dirty pages free to reach disk.
    pub fn txn_images(&self) -> StorageResult<Vec<PageImage>> {
        let inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .as_ref()
            .ok_or_else(|| StorageError::Corrupt("no open transaction".into()))?;
        let mut images = Vec::with_capacity(txn.len());
        for &(fid, pid) in txn.keys() {
            let idx = *inner.map.get(&(fid, pid)).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            images.push(((fid, pid), inner.frames[idx].data.clone()));
        }
        images.sort_by_key(|(k, _)| *k);
        Ok(images)
    }

    /// Close the transaction, unpinning its pages. Returns the
    /// after-images as `(location, bytes)` pairs.
    pub fn commit_txn(&self) -> StorageResult<Vec<PageImage>> {
        let mut inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .take()
            .ok_or_else(|| StorageError::Corrupt("commit without open transaction".into()))?;
        let mut images = Vec::with_capacity(txn.len());
        for ((fid, pid), _) in txn {
            let idx = *inner.map.get(&(fid, pid)).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            images.push(((fid, pid), inner.frames[idx].data.clone()));
            inner.frames[idx].pins = inner.frames[idx].pins.saturating_sub(1);
        }
        images.sort_by_key(|(k, _)| *k);
        Ok(images)
    }

    /// Roll the transaction back: restore before-images and unpin.
    pub fn abort_txn(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .take()
            .ok_or_else(|| StorageError::Corrupt("abort without open transaction".into()))?;
        let mut missing = false;
        for ((fid, pid), before) in txn {
            let Some(&idx) = inner.map.get(&(fid, pid)) else {
                missing = true;
                continue;
            };
            inner.frames[idx].data = before;
            inner.frames[idx].pins = inner.frames[idx].pins.saturating_sub(1);
            inner.frames[idx].dirty = true;
        }
        if missing {
            return Err(StorageError::Corrupt(
                "transaction page evicted despite pin".into(),
            ));
        }
        Ok(())
    }

    /// Pin a page so it cannot be evicted (loads it if absent).
    pub fn pin(&self, fid: FileId, pid: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        inner.frames[idx].pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&self, fid: FileId, pid: PageId) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&idx) = inner.map.get(&(fid, pid)) {
            let f = &mut inner.frames[idx];
            debug_assert!(f.pins > 0, "unpin without pin");
            f.pins = f.pins.saturating_sub(1);
        }
    }

    fn flush_file_locked(&self, inner: &mut Inner, fid: FileId) -> StorageResult<()> {
        // Pages write-locked by active transactions hold uncommitted
        // bytes; flush their latest *committed* image from the version
        // store instead, leaving the frame dirty for the eventual
        // commit/abort outcome.
        let locked: HashSet<PageKey> = inner
            .mvcc
            .as_ref()
            .map(|m| {
                m.active
                    .values()
                    .flat_map(|t| t.write_set.iter().copied())
                    .filter(|k| k.0 == fid)
                    .collect()
            })
            .unwrap_or_default();
        for i in 0..inner.frames.len() {
            if let Some((k, pid)) = inner.frames[i].key {
                if k == fid && inner.frames[i].dirty {
                    if locked.contains(&(k, pid)) {
                        let Inner { files, mvcc, .. } = &mut *inner;
                        let image = mvcc
                            .as_ref()
                            .and_then(|m| m.versions.get(&(k, pid)))
                            .and_then(|l| l.last())
                            .map(|(_, img)| img)
                            .ok_or_else(|| {
                                StorageError::Corrupt(
                                    "write-locked page has no committed image".into(),
                                )
                            })?;
                        files
                            .get_mut(&fid)
                            .ok_or(StorageError::BadFileId)?
                            .write_page(pid, image)?;
                        inner.stats.page_writes += 1;
                        // Frame stays dirty: it still holds the
                        // uncommitted bytes.
                    } else {
                        let data = std::mem::take(&mut inner.frames[i].data);
                        let res = inner
                            .files
                            .get_mut(&fid)
                            .ok_or(StorageError::BadFileId)
                            .and_then(|f| f.write_page(pid, &data));
                        inner.frames[i].data = data;
                        res?;
                        inner.frames[i].dirty = false;
                        inner.stats.page_writes += 1;
                    }
                }
            }
        }
        if let Some(f) = inner.files.get_mut(&fid) {
            f.sync()?;
        }
        Ok(())
    }

    /// Write back every dirty frame of `fid` and sync it.
    pub fn flush_file(&self, fid: FileId) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_file_locked(&mut inner, fid)
    }

    /// Write back every dirty frame and sync all files. Also sweeps the
    /// version store down to what live snapshots still need.
    pub fn flush_all(&self) -> StorageResult<()> {
        let fids: Vec<FileId> = {
            let inner = self.inner.lock().unwrap();
            inner.files.keys().copied().collect()
        };
        for fid in fids {
            self.flush_file(fid)?;
        }
        let mut inner = self.inner.lock().unwrap();
        if let Some(m) = inner.mvcc.as_mut() {
            m.gc_all();
        }
        Ok(())
    }

    /// Flush and drop every unpinned frame (cold-cache experiment setup).
    pub fn evict_all(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut inner = self.inner.lock().unwrap();
        for f in inner.frames.iter_mut() {
            if f.pins == 0 {
                f.key = None;
                f.dirty = false;
                f.referenced = false;
            }
        }
        let keep: Vec<(FileId, PageId)> = inner
            .frames
            .iter()
            .filter(|f| f.pins > 0)
            .filter_map(|f| f.key)
            .collect();
        inner.map.retain(|k, _| keep.contains(k));
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().unwrap().stats
    }

    /// Zero the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().unwrap().stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coral-buffer-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pool_with_file(name: &str, frames: usize, pages: u64) -> (BufferPool, FileId) {
        let pool = BufferPool::new(frames);
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&tmpfile(name)).unwrap());
        for _ in 0..pages {
            pool.allocate_page(fid).unwrap();
        }
        pool.evict_all().unwrap();
        pool.reset_stats();
        (pool, fid)
    }

    fn mvcc_pool(name: &str, frames: usize, pages: u64) -> (BufferPool, FileId) {
        let pool = BufferPool::new_mvcc(frames);
        pool.set_lock_timeout(Duration::from_millis(0));
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&tmpfile(name)).unwrap());
        for _ in 0..pages {
            pool.allocate_page(fid).unwrap();
        }
        (pool, fid)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, fid) = pool_with_file("hits.pages", 4, 2);
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn writes_survive_eviction() {
        let (pool, fid) = pool_with_file("evict.pages", 2, 8);
        for i in 0..8u64 {
            pool.with_page_mut(fid, PageId(i), |d| d[0] = i as u8 + 1)
                .unwrap();
        }
        // Working set exceeds capacity: pages 0..6 were evicted.
        for i in 0..8u64 {
            let v = pool.with_page(fid, PageId(i), |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        assert!(pool.stats().evictions >= 6);
    }

    #[test]
    fn small_working_set_all_hits() {
        let (pool, fid) = pool_with_file("wset.pages", 8, 4);
        for _ in 0..10 {
            for i in 0..4u64 {
                pool.with_page(fid, PageId(i), |_| ()).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4, "one miss per page");
        assert_eq!(s.hits, 36);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, fid) = pool_with_file("pin.pages", 2, 4);
        pool.pin(fid, PageId(0)).unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[1] = 99).unwrap();
        // Touch the other pages, forcing eviction pressure on frame 2.
        for i in 1..4u64 {
            pool.with_page(fid, PageId(i), |_| ()).unwrap();
        }
        // Page 0 must still be resident: reading it is a hit.
        let before = pool.stats().hits;
        let v = pool.with_page(fid, PageId(0), |d| d[1]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(pool.stats().hits, before + 1);
        pool.unpin(fid, PageId(0));
    }

    #[test]
    fn all_pinned_pool_errors() {
        let (pool, fid) = pool_with_file("full.pages", 2, 3);
        pool.pin(fid, PageId(0)).unwrap();
        pool.pin(fid, PageId(1)).unwrap();
        assert!(pool.with_page(fid, PageId(2), |_| ()).is_err());
        pool.unpin(fid, PageId(1));
        assert!(pool.with_page(fid, PageId(2), |_| ()).is_ok());
    }

    #[test]
    fn flush_writes_dirty_pages() {
        let path = tmpfile("flush.pages");
        let pool = BufferPool::new(4);
        let fid = FileId(3);
        pool.register_file(fid, PageFile::open(&path).unwrap());
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |d| d[7] = 77).unwrap();
        pool.flush_file(fid).unwrap();
        // Read the file directly, bypassing the pool.
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_page(pid, &mut buf).unwrap();
        assert_eq!(buf[7], 77);
    }

    #[test]
    fn txn_abort_restores_before_images() {
        let (pool, fid) = pool_with_file("txn.pages", 4, 2);
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 1).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 2).unwrap();
        pool.with_page_mut(fid, PageId(1), |d| d[0] = 3).unwrap();
        pool.abort_txn().unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 1);
        assert_eq!(pool.with_page(fid, PageId(1), |d| d[0]).unwrap(), 0);
    }

    #[test]
    fn txn_commit_returns_after_images() {
        let (pool, fid) = pool_with_file("txn2.pages", 4, 2);
        pool.begin_txn().unwrap();
        assert!(pool.in_txn());
        pool.with_page_mut(fid, PageId(1), |d| d[9] = 9).unwrap();
        pool.with_page_mut(fid, PageId(1), |d| d[10] = 10).unwrap();
        let images = pool.commit_txn().unwrap();
        assert!(!pool.in_txn());
        assert_eq!(images.len(), 1, "one touched page, logged once");
        assert_eq!(images[0].0, (fid, PageId(1)));
        assert_eq!(images[0].1[9], 9);
        assert_eq!(images[0].1[10], 10);
    }

    #[test]
    fn nested_txn_rejected() {
        let (pool, _) = pool_with_file("txn3.pages", 4, 1);
        pool.begin_txn().unwrap();
        assert!(pool.begin_txn().is_err());
        pool.commit_txn().unwrap();
        assert!(pool.commit_txn().is_err());
        assert!(pool.abort_txn().is_err());
    }

    #[test]
    fn unknown_file_is_an_error() {
        let pool = BufferPool::new(2);
        assert!(matches!(
            pool.with_page(FileId(9), PageId(0), |_| ()),
            Err(StorageError::BadFileId)
        ));
        assert!(matches!(
            pool.allocate_page(FileId(9)),
            Err(StorageError::BadFileId)
        ));
    }

    // -------------------------- MVCC ---------------------------------

    #[test]
    fn snapshot_does_not_see_uncommitted_writes() {
        let (pool, fid) = mvcc_pool("mv-snap.pages", 8, 2);
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 1).unwrap(); // bare
        pool.tx_begin(1).unwrap();
        let snap = pool.pin_snapshot();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(1), |d| d[0] = 2)
            .unwrap();
        // Snapshot still sees the committed value; the txn sees its own.
        let s = pool
            .with_page_view(fid, PageId(0), View::Snapshot(snap), |d| d[0])
            .unwrap();
        assert_eq!(s, 1);
        let t = pool
            .with_page_view(fid, PageId(0), View::Txn(1), |d| d[0])
            .unwrap();
        assert_eq!(t, 2);
        pool.tx_install(1).unwrap();
        // The pinned snapshot still reads the old image after commit.
        let s = pool
            .with_page_view(fid, PageId(0), View::Snapshot(snap), |d| d[0])
            .unwrap();
        assert_eq!(s, 1);
        // A fresh snapshot sees the commit.
        let snap2 = pool.pin_snapshot();
        let s2 = pool
            .with_page_view(fid, PageId(0), View::Snapshot(snap2), |d| d[0])
            .unwrap();
        assert_eq!(s2, 2);
        pool.release_snapshot(snap);
        pool.release_snapshot(snap2);
    }

    #[test]
    fn abort_restores_committed_image_and_releases_locks() {
        let (pool, fid) = mvcc_pool("mv-abort.pages", 8, 2);
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 7).unwrap();
        pool.tx_begin(1).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(1), |d| d[0] = 8)
            .unwrap();
        pool.tx_abort(1).unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 7);
        // The lock is free again.
        pool.tx_begin(2).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(2), |d| d[0] = 9)
            .unwrap();
        pool.tx_install(2).unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 9);
    }

    #[test]
    fn write_write_conflict_is_retryable() {
        let (pool, fid) = mvcc_pool("mv-ww.pages", 8, 2);
        pool.tx_begin(1).unwrap();
        pool.tx_begin(2).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(1), |d| d[0] = 1)
            .unwrap();
        let err = pool
            .with_page_mut_view(fid, PageId(0), View::Txn(2), |d| d[0] = 2)
            .unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)), "{err}");
        pool.tx_abort(2).unwrap();
        pool.tx_install(1).unwrap();
        let stats = pool.tx_stats();
        assert_eq!(stats.committed, 1);
        assert_eq!(stats.aborted, 1);
        assert!(stats.conflicts >= 1);
    }

    #[test]
    fn first_updater_wins_after_snapshot() {
        let (pool, fid) = mvcc_pool("mv-fuw.pages", 8, 2);
        pool.tx_begin(1).unwrap();
        // Txn 2 commits a write to page 0 after txn 1's snapshot.
        pool.tx_begin(2).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(2), |d| d[0] = 2)
            .unwrap();
        pool.tx_install(2).unwrap();
        let err = pool
            .with_page_mut_view(fid, PageId(0), View::Txn(1), |d| d[0] = 1)
            .unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)));
        pool.tx_abort(1).unwrap();
    }

    #[test]
    fn read_validation_catches_rw_conflict() {
        let (pool, fid) = mvcc_pool("mv-bocc.pages", 8, 2);
        pool.tx_begin(1).unwrap();
        // Txn 1 reads page 0.
        pool.with_page_view(fid, PageId(0), View::Txn(1), |_| ())
            .unwrap();
        // Txn 1 writes page 1 (so it has something to commit).
        pool.with_page_mut_view(fid, PageId(1), View::Txn(1), |d| d[0] = 1)
            .unwrap();
        // Txn 2 writes page 0 and commits first.
        pool.tx_begin(2).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(2), |d| d[0] = 2)
            .unwrap();
        pool.tx_install(2).unwrap();
        // Txn 1's validation must fail: its read is stale in commit order.
        let err = pool.tx_prepare(1, &HashSet::new()).unwrap_err();
        assert!(matches!(err, StorageError::TxnConflict(_)));
        pool.tx_abort(1).unwrap();
    }

    #[test]
    fn live_write_attributed_to_sole_txn() {
        let (pool, fid) = mvcc_pool("mv-attr.pages", 8, 2);
        pool.tx_begin(9).unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 5).unwrap();
        // The write joined txn 9: aborting undoes it.
        pool.tx_abort(9).unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 0);
    }

    #[test]
    fn checkpoint_flushes_committed_image_under_active_writer() {
        let path = tmpfile("mv-ckpt.pages");
        let pool = BufferPool::new_mvcc(8);
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&path).unwrap());
        pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 1).unwrap(); // committed (bare)
        pool.tx_begin(1).unwrap();
        pool.with_page_mut_view(fid, PageId(0), View::Txn(1), |d| d[0] = 2)
            .unwrap();
        pool.flush_all().unwrap();
        // Disk has the committed value, not the uncommitted one.
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 1);
        // The txn's bytes survived the flush in the frame.
        pool.tx_install(1).unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 2);
    }

    #[test]
    fn snapshot_of_page_born_later_reads_zeros() {
        let (pool, fid) = mvcc_pool("mv-born.pages", 8, 1);
        let snap = pool.pin_snapshot();
        pool.tx_begin(1).unwrap();
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut_view(fid, pid, View::Txn(1), |d| d[0] = 9)
            .unwrap();
        pool.tx_install(1).unwrap();
        let v = pool
            .with_page_view(fid, pid, View::Snapshot(snap), |d| d[0])
            .unwrap();
        assert_eq!(v, 0, "page postdates the snapshot");
        pool.release_snapshot(snap);
    }

    #[test]
    fn legacy_pool_has_zero_tx_stats() {
        let (pool, fid) = pool_with_file("legacy-zero.pages", 4, 1);
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 1).unwrap();
        assert_eq!(pool.tx_stats(), TxStats::default());
        assert!(!pool.mvcc_enabled());
        assert!(pool.tx_begin(1).is_err());
    }
}
