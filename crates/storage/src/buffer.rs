//! The buffer pool.
//!
//! "Data stored using the EXODUS storage manager is paged into EXODUS
//! buffers on demand … the data can be accessed purely out of pages in
//! the EXODUS buffer pool" (§2). This pool caches pages of registered
//! [`PageFile`]s in a fixed number of frames with CLOCK (second-chance)
//! eviction, write-back of dirty frames, pin counts, and hit/miss
//! statistics — the statistics are what experiment E9 observes.
//!
//! Access is closure-scoped: [`BufferPool::with_page`] pins the frame for
//! the duration of the closure. Calls must not nest (the pool is behind a
//! single mutex); callers copy what they need out of the page instead of
//! holding two pages at once. Explicit [`BufferPool::pin`]/
//! [`BufferPool::unpin`] exist for transactions, which pin the pages they
//! dirty until commit (a no-steal policy that keeps the write-ahead log
//! redo-only).

use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageFile, PageId};
use crate::page::PAGE_SIZE;
use std::collections::HashMap;
use std::sync::Mutex;

/// Buffer pool counters.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BufferStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Physical page reads.
    pub page_reads: u64,
    /// Physical page writes.
    pub page_writes: u64,
}

/// A page's address and contents, as returned by [`BufferPool::commit_txn`].
pub type PageImage = ((FileId, PageId), Box<[u8]>);

/// Before-images of the pages dirtied by the open transaction.
type TxnImages = HashMap<(FileId, PageId), Box<[u8]>>;

struct Frame {
    key: Option<(FileId, PageId)>,
    data: Box<[u8]>,
    dirty: bool,
    pins: u32,
    referenced: bool,
}

struct Inner {
    frames: Vec<Frame>,
    map: HashMap<(FileId, PageId), usize>,
    files: HashMap<FileId, PageFile>,
    hand: usize,
    stats: BufferStats,
    /// Before-images of pages dirtied by the active transaction, if one
    /// is open (`None` = no transaction). The single-slot design matches
    /// the paper's single-user client (§2).
    txn: Option<TxnImages>,
}

/// A fixed-capacity page cache over a set of registered files.
pub struct BufferPool {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BufferPool {
    /// Create a pool with `capacity` frames (at least 1).
    pub fn new(capacity: usize) -> BufferPool {
        let capacity = capacity.max(1);
        let frames = (0..capacity)
            .map(|_| Frame {
                key: None,
                data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
                dirty: false,
                pins: 0,
                referenced: false,
            })
            .collect();
        BufferPool {
            inner: Mutex::new(Inner {
                frames,
                map: HashMap::new(),
                files: HashMap::new(),
                hand: 0,
                stats: BufferStats::default(),
                txn: None,
            }),
            capacity,
        }
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Register an open file under `fid`.
    pub fn register_file(&self, fid: FileId, file: PageFile) {
        let mut inner = self.inner.lock().unwrap();
        inner.files.insert(fid, file);
    }

    /// Flush and forget all cached pages of `fid`, returning the file.
    pub fn unregister_file(&self, fid: FileId) -> StorageResult<Option<PageFile>> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_file_locked(&mut inner, fid)?;
        for f in inner.frames.iter_mut() {
            if matches!(f.key, Some((k, _)) if k == fid) {
                f.key = None;
                f.dirty = false;
                f.pins = 0;
            }
        }
        inner.map.retain(|(k, _), _| *k != fid);
        Ok(inner.files.remove(&fid))
    }

    /// Number of pages in a registered file.
    pub fn num_pages(&self, fid: FileId) -> StorageResult<u64> {
        let inner = self.inner.lock().unwrap();
        inner
            .files
            .get(&fid)
            .map(|f| f.num_pages())
            .ok_or(StorageError::BadFileId)
    }

    /// Append a fresh zeroed page to `fid` and cache it.
    pub fn allocate_page(&self, fid: FileId) -> StorageResult<PageId> {
        let mut inner = self.inner.lock().unwrap();
        let pid = inner
            .files
            .get_mut(&fid)
            .ok_or(StorageError::BadFileId)?
            .allocate()?;
        inner.stats.page_writes += 1; // the zero-fill write
        let frame = self.find_frame(&mut inner, fid, pid, false)?;
        inner.frames[frame].data.fill(0);
        inner.frames[frame].dirty = false;
        Ok(pid)
    }

    fn find_frame(
        &self,
        inner: &mut Inner,
        fid: FileId,
        pid: PageId,
        load: bool,
    ) -> StorageResult<usize> {
        if let Some(&idx) = inner.map.get(&(fid, pid)) {
            inner.stats.hits += 1;
            crate::profile::bump(|c| c.pool_hits += 1);
            inner.frames[idx].referenced = true;
            return Ok(idx);
        }
        inner.stats.misses += 1;
        crate::profile::bump(|c| c.pool_misses += 1);
        // CLOCK sweep for a victim (unpinned frame; clear ref bits as we
        // pass). Two full sweeps guarantee progress unless all pinned.
        let cap = inner.frames.len();
        let mut victim = None;
        for _ in 0..2 * cap {
            let i = inner.hand;
            inner.hand = (inner.hand + 1) % cap;
            let f = &mut inner.frames[i];
            if f.pins > 0 {
                continue;
            }
            if f.key.is_none() || !f.referenced {
                victim = Some(i);
                break;
            }
            f.referenced = false;
        }
        let idx = victim.ok_or_else(|| {
            StorageError::Corrupt("buffer pool exhausted: all frames pinned".into())
        })?;
        // Write back the evicted page if dirty. On an I/O error the
        // frame's buffer is restored and the frame stays mapped and
        // dirty, so the error costs this one request, not pool
        // integrity (the write can be retried or the txn aborted).
        if let Some((efid, epid)) = inner.frames[idx].key {
            if inner.frames[idx].dirty {
                let data = std::mem::take(&mut inner.frames[idx].data);
                let res = inner
                    .files
                    .get_mut(&efid)
                    .ok_or(StorageError::BadFileId)
                    .and_then(|f| f.write_page(epid, &data));
                inner.frames[idx].data = data;
                res?;
                inner.stats.page_writes += 1;
            }
            inner.map.remove(&(efid, epid));
            inner.stats.evictions += 1;
            crate::profile::bump(|c| c.pool_evictions += 1);
        }
        if load {
            let mut data = std::mem::take(&mut inner.frames[idx].data);
            let res = inner
                .files
                .get_mut(&fid)
                .ok_or(StorageError::BadFileId)
                .and_then(|f| f.read_page(pid, &mut data));
            inner.frames[idx].data = data;
            if let Err(e) = res {
                // The old occupant is already unmapped; leaving its key
                // on the frame would later remove a *reloaded* copy's
                // map entry. Mark the frame free before bailing.
                let f = &mut inner.frames[idx];
                f.key = None;
                f.dirty = false;
                f.pins = 0;
                return Err(e);
            }
            inner.stats.page_reads += 1;
        }
        let f = &mut inner.frames[idx];
        f.key = Some((fid, pid));
        f.dirty = false;
        f.pins = 0;
        f.referenced = true;
        inner.map.insert((fid, pid), idx);
        Ok(idx)
    }

    /// Run `body` with read access to the page. Do not nest `with_page*`
    /// calls.
    pub fn with_page<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&[u8]) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        Ok(body(&inner.frames[idx].data))
    }

    /// Run `body` with write access to the page; the frame is marked
    /// dirty. Do not nest `with_page*` calls.
    pub fn with_page_mut<R>(
        &self,
        fid: FileId,
        pid: PageId,
        body: impl FnOnce(&mut [u8]) -> R,
    ) -> StorageResult<R> {
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        // First write under an open transaction: save the before-image and
        // pin the frame until commit/abort (no-steal).
        if let Some(txn) = inner.txn.take() {
            let mut txn = txn;
            if let std::collections::hash_map::Entry::Vacant(e) = txn.entry((fid, pid)) {
                e.insert(inner.frames[idx].data.clone());
                inner.frames[idx].pins += 1;
            }
            inner.txn = Some(txn);
        }
        inner.frames[idx].dirty = true;
        Ok(body(&mut inner.frames[idx].data))
    }

    /// Open a transaction: subsequent page writes save before-images and
    /// pin their frames until [`Self::commit_txn`] or [`Self::abort_txn`].
    /// Only one transaction may be open (the single-user model of §2).
    pub fn begin_txn(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        if inner.txn.is_some() {
            return Err(StorageError::Corrupt("transaction already open".into()));
        }
        inner.txn = Some(HashMap::new());
        Ok(())
    }

    /// True iff a transaction is open.
    pub fn in_txn(&self) -> bool {
        self.inner.lock().unwrap().txn.is_some()
    }

    /// After-images of the pages dirtied so far by the open transaction,
    /// *without* closing it. The commit protocol peeks the images here,
    /// writes them to the log, and only then finalizes with
    /// [`Self::commit_txn`] (on log success) or [`Self::abort_txn`] (on
    /// log failure) — so a failed log write rolls the pool back instead
    /// of leaving unlogged dirty pages free to reach disk.
    pub fn txn_images(&self) -> StorageResult<Vec<PageImage>> {
        let inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .as_ref()
            .ok_or_else(|| StorageError::Corrupt("no open transaction".into()))?;
        let mut images = Vec::with_capacity(txn.len());
        for &(fid, pid) in txn.keys() {
            let idx = *inner.map.get(&(fid, pid)).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            images.push(((fid, pid), inner.frames[idx].data.clone()));
        }
        images.sort_by_key(|(k, _)| *k);
        Ok(images)
    }

    /// Close the transaction, unpinning its pages. Returns the
    /// after-images as `(location, bytes)` pairs.
    pub fn commit_txn(&self) -> StorageResult<Vec<PageImage>> {
        let mut inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .take()
            .ok_or_else(|| StorageError::Corrupt("commit without open transaction".into()))?;
        let mut images = Vec::with_capacity(txn.len());
        for ((fid, pid), _) in txn {
            let idx = *inner.map.get(&(fid, pid)).ok_or_else(|| {
                StorageError::Corrupt("transaction page evicted despite pin".into())
            })?;
            images.push(((fid, pid), inner.frames[idx].data.clone()));
            inner.frames[idx].pins = inner.frames[idx].pins.saturating_sub(1);
        }
        images.sort_by_key(|(k, _)| *k);
        Ok(images)
    }

    /// Roll the transaction back: restore before-images and unpin.
    pub fn abort_txn(&self) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let txn = inner
            .txn
            .take()
            .ok_or_else(|| StorageError::Corrupt("abort without open transaction".into()))?;
        let mut missing = false;
        for ((fid, pid), before) in txn {
            let Some(&idx) = inner.map.get(&(fid, pid)) else {
                missing = true;
                continue;
            };
            inner.frames[idx].data = before;
            inner.frames[idx].pins = inner.frames[idx].pins.saturating_sub(1);
            inner.frames[idx].dirty = true;
        }
        if missing {
            return Err(StorageError::Corrupt(
                "transaction page evicted despite pin".into(),
            ));
        }
        Ok(())
    }

    /// Pin a page so it cannot be evicted (loads it if absent).
    pub fn pin(&self, fid: FileId, pid: PageId) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        let idx = self.find_frame(&mut inner, fid, pid, true)?;
        inner.frames[idx].pins += 1;
        Ok(())
    }

    /// Release one pin.
    pub fn unpin(&self, fid: FileId, pid: PageId) {
        let mut inner = self.inner.lock().unwrap();
        if let Some(&idx) = inner.map.get(&(fid, pid)) {
            let f = &mut inner.frames[idx];
            debug_assert!(f.pins > 0, "unpin without pin");
            f.pins = f.pins.saturating_sub(1);
        }
    }

    fn flush_file_locked(&self, inner: &mut Inner, fid: FileId) -> StorageResult<()> {
        for i in 0..inner.frames.len() {
            if let Some((k, pid)) = inner.frames[i].key {
                if k == fid && inner.frames[i].dirty {
                    let data = std::mem::take(&mut inner.frames[i].data);
                    let res = inner
                        .files
                        .get_mut(&fid)
                        .ok_or(StorageError::BadFileId)
                        .and_then(|f| f.write_page(pid, &data));
                    inner.frames[i].data = data;
                    res?;
                    inner.frames[i].dirty = false;
                    inner.stats.page_writes += 1;
                }
            }
        }
        if let Some(f) = inner.files.get_mut(&fid) {
            f.sync()?;
        }
        Ok(())
    }

    /// Write back all dirty frames of `fid` and sync it.
    pub fn flush_file(&self, fid: FileId) -> StorageResult<()> {
        let mut inner = self.inner.lock().unwrap();
        self.flush_file_locked(&mut inner, fid)
    }

    /// Write back every dirty frame and sync all files.
    pub fn flush_all(&self) -> StorageResult<()> {
        let fids: Vec<FileId> = {
            let inner = self.inner.lock().unwrap();
            inner.files.keys().copied().collect()
        };
        for fid in fids {
            self.flush_file(fid)?;
        }
        Ok(())
    }

    /// Flush and drop every unpinned frame (cold-cache experiment setup).
    pub fn evict_all(&self) -> StorageResult<()> {
        self.flush_all()?;
        let mut inner = self.inner.lock().unwrap();
        for f in inner.frames.iter_mut() {
            if f.pins == 0 {
                f.key = None;
                f.dirty = false;
                f.referenced = false;
            }
        }
        let keep: Vec<(FileId, PageId)> = inner
            .frames
            .iter()
            .filter(|f| f.pins > 0)
            .filter_map(|f| f.key)
            .collect();
        inner.map.retain(|k, _| keep.contains(k));
        Ok(())
    }

    /// Current counters.
    pub fn stats(&self) -> BufferStats {
        self.inner.lock().unwrap().stats
    }

    /// Zero the counters (between experiment phases).
    pub fn reset_stats(&self) {
        self.inner.lock().unwrap().stats = BufferStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("coral-buffer-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p = d.join(name);
        let _ = std::fs::remove_file(&p);
        p
    }

    fn pool_with_file(name: &str, frames: usize, pages: u64) -> (BufferPool, FileId) {
        let pool = BufferPool::new(frames);
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&tmpfile(name)).unwrap());
        for _ in 0..pages {
            pool.allocate_page(fid).unwrap();
        }
        pool.evict_all().unwrap();
        pool.reset_stats();
        (pool, fid)
    }

    #[test]
    fn hit_after_miss() {
        let (pool, fid) = pool_with_file("hits.pages", 4, 2);
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        pool.with_page(fid, PageId(0), |_| ()).unwrap();
        let s = pool.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn writes_survive_eviction() {
        let (pool, fid) = pool_with_file("evict.pages", 2, 8);
        for i in 0..8u64 {
            pool.with_page_mut(fid, PageId(i), |d| d[0] = i as u8 + 1)
                .unwrap();
        }
        // Working set exceeds capacity: pages 0..6 were evicted.
        for i in 0..8u64 {
            let v = pool.with_page(fid, PageId(i), |d| d[0]).unwrap();
            assert_eq!(v, i as u8 + 1);
        }
        assert!(pool.stats().evictions >= 6);
    }

    #[test]
    fn small_working_set_all_hits() {
        let (pool, fid) = pool_with_file("wset.pages", 8, 4);
        for _ in 0..10 {
            for i in 0..4u64 {
                pool.with_page(fid, PageId(i), |_| ()).unwrap();
            }
        }
        let s = pool.stats();
        assert_eq!(s.misses, 4, "one miss per page");
        assert_eq!(s.hits, 36);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn pinned_pages_are_not_evicted() {
        let (pool, fid) = pool_with_file("pin.pages", 2, 4);
        pool.pin(fid, PageId(0)).unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[1] = 99).unwrap();
        // Touch the other pages, forcing eviction pressure on frame 2.
        for i in 1..4u64 {
            pool.with_page(fid, PageId(i), |_| ()).unwrap();
        }
        // Page 0 must still be resident: reading it is a hit.
        let before = pool.stats().hits;
        let v = pool.with_page(fid, PageId(0), |d| d[1]).unwrap();
        assert_eq!(v, 99);
        assert_eq!(pool.stats().hits, before + 1);
        pool.unpin(fid, PageId(0));
    }

    #[test]
    fn all_pinned_pool_errors() {
        let (pool, fid) = pool_with_file("full.pages", 2, 3);
        pool.pin(fid, PageId(0)).unwrap();
        pool.pin(fid, PageId(1)).unwrap();
        assert!(pool.with_page(fid, PageId(2), |_| ()).is_err());
        pool.unpin(fid, PageId(1));
        assert!(pool.with_page(fid, PageId(2), |_| ()).is_ok());
    }

    #[test]
    fn flush_writes_dirty_pages() {
        let path = tmpfile("flush.pages");
        let pool = BufferPool::new(4);
        let fid = FileId(3);
        pool.register_file(fid, PageFile::open(&path).unwrap());
        let pid = pool.allocate_page(fid).unwrap();
        pool.with_page_mut(fid, pid, |d| d[7] = 77).unwrap();
        pool.flush_file(fid).unwrap();
        // Read the file directly, bypassing the pool.
        let mut f = PageFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        f.read_page(pid, &mut buf).unwrap();
        assert_eq!(buf[7], 77);
    }

    #[test]
    fn txn_abort_restores_before_images() {
        let (pool, fid) = pool_with_file("txn.pages", 4, 2);
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 1).unwrap();
        pool.begin_txn().unwrap();
        pool.with_page_mut(fid, PageId(0), |d| d[0] = 2).unwrap();
        pool.with_page_mut(fid, PageId(1), |d| d[0] = 3).unwrap();
        pool.abort_txn().unwrap();
        assert_eq!(pool.with_page(fid, PageId(0), |d| d[0]).unwrap(), 1);
        assert_eq!(pool.with_page(fid, PageId(1), |d| d[0]).unwrap(), 0);
    }

    #[test]
    fn txn_commit_returns_after_images() {
        let (pool, fid) = pool_with_file("txn2.pages", 4, 2);
        pool.begin_txn().unwrap();
        assert!(pool.in_txn());
        pool.with_page_mut(fid, PageId(1), |d| d[9] = 9).unwrap();
        pool.with_page_mut(fid, PageId(1), |d| d[10] = 10).unwrap();
        let images = pool.commit_txn().unwrap();
        assert!(!pool.in_txn());
        assert_eq!(images.len(), 1, "one touched page, logged once");
        assert_eq!(images[0].0, (fid, PageId(1)));
        assert_eq!(images[0].1[9], 9);
        assert_eq!(images[0].1[10], 10);
    }

    #[test]
    fn nested_txn_rejected() {
        let (pool, _) = pool_with_file("txn3.pages", 4, 1);
        pool.begin_txn().unwrap();
        assert!(pool.begin_txn().is_err());
        pool.commit_txn().unwrap();
        assert!(pool.commit_txn().is_err());
        assert!(pool.abort_txn().is_err());
    }

    #[test]
    fn unknown_file_is_an_error() {
        let pool = BufferPool::new(2);
        assert!(matches!(
            pool.with_page(FileId(9), PageId(0), |_| ()),
            Err(StorageError::BadFileId)
        ));
        assert!(matches!(
            pool.allocate_page(FileId(9)),
            Err(StorageError::BadFileId)
        ));
    }
}
