//! Slotted pages.
//!
//! The unit of transfer between disk and the buffer pool is a fixed-size
//! page holding variable-length records behind a slot directory, so
//! records can move within the page (compaction) without changing their
//! externally visible `(page, slot)` address.
//!
//! Layout (little-endian):
//!
//! ```text
//! 0..2    n_slots: u16          number of slot directory entries
//! 2..4    heap_start: u16       lowest offset used by record data
//! 4..4+4n slot directory        (offset: u16, len: u16) per slot;
//!                               offset == 0xFFFF marks a dead slot
//! heap_start..PAGE_SIZE         record data, growing downward
//! ```

use crate::error::{StorageError, StorageResult};

/// Size of a disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

/// Index of a record within its page.
pub type SlotId = u16;

const HDR: usize = 4;
const SLOT_BYTES: usize = 4;
const DEAD: u16 = 0xFFFF;

/// Maximum record payload a single page can hold.
pub const MAX_RECORD: usize = PAGE_SIZE - HDR - SLOT_BYTES;

/// A typed view over one page's bytes.
///
/// The view borrows the frame owned by the buffer pool; all multi-byte
/// fields are little-endian so pages are portable across runs.
pub struct SlottedPage<'a> {
    data: &'a mut [u8],
}

impl<'a> SlottedPage<'a> {
    /// Wrap an existing, already-formatted page.
    pub fn attach(data: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        SlottedPage { data }
    }

    /// Format a fresh page in place and wrap it.
    pub fn format(data: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        data[0..2].copy_from_slice(&0u16.to_le_bytes());
        data[2..4].copy_from_slice(&(PAGE_SIZE as u16).to_le_bytes());
        SlottedPage { data }
    }

    fn get_u16(&self, off: usize) -> u16 {
        u16::from_le_bytes([self.data[off], self.data[off + 1]])
    }

    fn put_u16(&mut self, off: usize, v: u16) {
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Number of slots (including dead ones).
    pub fn n_slots(&self) -> u16 {
        self.get_u16(0)
    }

    fn heap_start(&self) -> u16 {
        self.get_u16(2)
    }

    fn slot(&self, s: SlotId) -> (u16, u16) {
        let base = HDR + s as usize * SLOT_BYTES;
        (self.get_u16(base), self.get_u16(base + 2))
    }

    fn set_slot(&mut self, s: SlotId, off: u16, len: u16) {
        let base = HDR + s as usize * SLOT_BYTES;
        self.put_u16(base, off);
        self.put_u16(base + 2, len);
    }

    /// Contiguous free space available for one more record (slot entry
    /// included).
    pub fn free_space(&self) -> usize {
        let dir_end = HDR + self.n_slots() as usize * SLOT_BYTES;
        let heap = self.heap_start() as usize;
        (heap - dir_end).saturating_sub(SLOT_BYTES)
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        (0..self.n_slots()).filter_map(|s| self.get(s)).count()
    }

    /// True iff slot `s`'s directory entry lies within the page.
    fn dir_entry_in_bounds(&self, s: SlotId) -> bool {
        HDR + (s as usize + 1) * SLOT_BYTES <= PAGE_SIZE
    }

    /// Check structural sanity of the page without touching record
    /// contents. Returns a description of the first violation found, if
    /// any. Pages written by this module always validate; a failure means
    /// the page bytes were corrupted (torn write, stray write) rather
    /// than produced by a crash the WAL protocol covers.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.n_slots() as usize;
        // An all-zero header is a page that was allocated (the file was
        // extended with zeros) but never formatted — e.g. extended by a
        // transaction that crashed before commit. It holds no records
        // and is reformatted on next use, so it is not corruption.
        if n == 0 && self.heap_start() == 0 {
            return Ok(());
        }
        let dir_end = HDR + n * SLOT_BYTES;
        if dir_end > PAGE_SIZE {
            return Err(format!("slot directory overflows page: {n} slots"));
        }
        let heap = self.heap_start() as usize;
        if heap < dir_end || heap > PAGE_SIZE {
            return Err(format!(
                "heap_start {heap} outside [{dir_end}, {PAGE_SIZE}]"
            ));
        }
        for s in 0..n as u16 {
            let (off, len) = self.slot(s);
            if off == DEAD {
                continue;
            }
            let (off, len) = (off as usize, len as usize);
            if off < heap || off + len > PAGE_SIZE {
                return Err(format!(
                    "slot {s}: record [{off}, {}) outside heap [{heap}, {PAGE_SIZE})",
                    off + len
                ));
            }
        }
        Ok(())
    }

    /// Insert a record, returning its slot. Reuses dead slots. Fails with
    /// `RecordTooLarge` if the record can never fit in a page, `None`-like
    /// `Ok(None)` if this page is merely full.
    pub fn insert(&mut self, rec: &[u8]) -> StorageResult<Option<SlotId>> {
        if rec.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: rec.len(),
                max: MAX_RECORD,
            });
        }
        // Prefer reusing a dead slot (no directory growth).
        let dead = (0..self.n_slots()).find(|&s| self.slot(s).0 == DEAD);
        let dir_end = HDR + self.n_slots() as usize * SLOT_BYTES;
        let need_dir = if dead.is_some() { 0 } else { SLOT_BYTES };
        let heap = self.heap_start() as usize;
        if heap < dir_end + need_dir + rec.len() {
            return Ok(None);
        }
        let new_heap = heap - rec.len();
        self.data[new_heap..heap].copy_from_slice(rec);
        self.put_u16(2, new_heap as u16);
        let slot = match dead {
            Some(s) => s,
            None => {
                let s = self.n_slots();
                self.put_u16(0, s + 1);
                s
            }
        };
        self.set_slot(slot, new_heap as u16, rec.len() as u16);
        Ok(Some(slot))
    }

    /// Read the record in `slot`, if live. Out-of-bounds directory
    /// entries (possible only on a corrupted page) read as dead rather
    /// than panicking; [`Self::validate`] reports them.
    pub fn get(&self, slot: SlotId) -> Option<&[u8]> {
        if slot >= self.n_slots() || !self.dir_entry_in_bounds(slot) {
            return None;
        }
        let (off, len) = self.slot(slot);
        if off == DEAD {
            return None;
        }
        let (off, len) = (off as usize, len as usize);
        if off + len > PAGE_SIZE {
            return None;
        }
        Some(&self.data[off..off + len])
    }

    /// Delete the record in `slot`. Space is reclaimed by [`Self::compact`].
    pub fn delete(&mut self, slot: SlotId) -> bool {
        if slot >= self.n_slots() || self.slot(slot).0 == DEAD {
            return false;
        }
        self.set_slot(slot, DEAD, 0);
        true
    }

    /// Iterate `(slot, record)` pairs over live records.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, &[u8])> {
        (0..self.n_slots()).filter_map(move |s| self.get(s).map(|r| (s, r)))
    }

    /// Rewrite the data heap to squeeze out dead space, preserving slot
    /// ids. Returns bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let before = self.heap_start() as usize;
        let live: Vec<(SlotId, Vec<u8>)> = self.iter().map(|(s, r)| (s, r.to_vec())).collect();
        let mut heap = PAGE_SIZE;
        for (s, rec) in &live {
            heap -= rec.len();
            self.data[heap..heap + rec.len()].copy_from_slice(rec);
            self.set_slot(*s, heap as u16, rec.len() as u16);
        }
        // Trim trailing dead slots from the directory.
        let mut n = self.n_slots();
        while n > 0 && self.slot(n - 1).0 == DEAD {
            n -= 1;
        }
        self.put_u16(0, n);
        self.put_u16(2, heap as u16);
        heap - before
    }

    /// Insert a record *at* directory position `idx`, shifting later slot
    /// entries right. Used by the B+-tree, which keeps entries ordered by
    /// key. Unlike [`Self::insert`], dead slots are not reused (the tree
    /// deletes by shifting, so none exist).
    pub fn insert_at(&mut self, idx: u16, rec: &[u8]) -> StorageResult<bool> {
        if rec.len() > MAX_RECORD {
            return Err(StorageError::RecordTooLarge {
                size: rec.len(),
                max: MAX_RECORD,
            });
        }
        let n = self.n_slots();
        debug_assert!(idx <= n);
        let dir_end = HDR + n as usize * SLOT_BYTES;
        let heap = self.heap_start() as usize;
        if heap < dir_end + SLOT_BYTES + rec.len() {
            return Ok(false);
        }
        let new_heap = heap - rec.len();
        self.data[new_heap..heap].copy_from_slice(rec);
        self.put_u16(2, new_heap as u16);
        // Shift slot entries [idx..n) right by one.
        let src = HDR + idx as usize * SLOT_BYTES;
        self.data.copy_within(src..dir_end, src + SLOT_BYTES);
        self.put_u16(0, n + 1);
        self.set_slot(idx, new_heap as u16, rec.len() as u16);
        Ok(true)
    }

    /// Remove the record at directory position `idx`, shifting later slot
    /// entries left (B+-tree style ordered delete).
    pub fn remove_at(&mut self, idx: u16) {
        let n = self.n_slots();
        debug_assert!(idx < n);
        let src = HDR + (idx as usize + 1) * SLOT_BYTES;
        let dir_end = HDR + n as usize * SLOT_BYTES;
        self.data.copy_within(src..dir_end, src - SLOT_BYTES);
        self.put_u16(0, n - 1);
    }

    /// Replace the record at directory position `idx` (must fit without
    /// compaction if larger; returns false when full).
    pub fn replace_at(&mut self, idx: u16, rec: &[u8]) -> StorageResult<bool> {
        let (_, old_len) = self.slot(idx);
        if rec.len() as u16 <= old_len {
            let (off, _) = self.slot(idx);
            self.data[off as usize..off as usize + rec.len()].copy_from_slice(rec);
            self.set_slot(idx, off, rec.len() as u16);
            return Ok(true);
        }
        self.remove_at(idx);
        if self.insert_at(idx, rec)? {
            Ok(true)
        } else {
            // Try again after compaction.
            self.compact();
            self.insert_at(idx, rec)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Vec<u8> {
        vec![0u8; PAGE_SIZE]
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let a = p.insert(b"hello").unwrap().unwrap();
        let b = p.insert(b"world!").unwrap().unwrap();
        assert_eq!(p.get(a), Some(&b"hello"[..]));
        assert_eq!(p.get(b), Some(&b"world!"[..]));
        assert_ne!(a, b);
        assert_eq!(p.live_count(), 2);
    }

    #[test]
    fn delete_and_slot_reuse() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let a = p.insert(b"one").unwrap().unwrap();
        let _b = p.insert(b"two").unwrap().unwrap();
        assert!(p.delete(a));
        assert!(!p.delete(a), "double delete");
        assert_eq!(p.get(a), None);
        let c = p.insert(b"three").unwrap().unwrap();
        assert_eq!(c, a, "dead slot reused");
        assert_eq!(p.get(c), Some(&b"three"[..]));
    }

    #[test]
    fn fills_up_then_rejects() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let rec = [7u8; 100];
        let mut n = 0;
        while p.insert(&rec).unwrap().is_some() {
            n += 1;
        }
        assert!(n >= 38, "expected ~39 100-byte records, got {n}");
        assert!(p.free_space() < rec.len() + 4);
    }

    #[test]
    fn oversized_record_is_an_error() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let huge = vec![0u8; PAGE_SIZE];
        assert!(matches!(
            p.insert(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let slots: Vec<_> = (0..20)
            .map(|i| p.insert(&[i as u8; 150]).unwrap().unwrap())
            .collect();
        for s in slots.iter().step_by(2) {
            p.delete(*s);
        }
        let live_before: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        let reclaimed = p.compact();
        assert!(reclaimed >= 10 * 150, "reclaimed {reclaimed}");
        let live_after: Vec<_> = p.iter().map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(live_before, live_after, "slot ids and data preserved");
    }

    #[test]
    fn ordered_insert_and_remove() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        assert!(p.insert_at(0, b"b").unwrap());
        assert!(p.insert_at(0, b"a").unwrap());
        assert!(p.insert_at(2, b"d").unwrap());
        assert!(p.insert_at(2, b"c").unwrap());
        let all: Vec<_> = (0..p.n_slots())
            .map(|i| p.get(i).unwrap().to_vec())
            .collect();
        assert_eq!(
            all,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        p.remove_at(1);
        let all: Vec<_> = (0..p.n_slots())
            .map(|i| p.get(i).unwrap().to_vec())
            .collect();
        assert_eq!(all, vec![b"a".to_vec(), b"c".to_vec(), b"d".to_vec()]);
    }

    #[test]
    fn replace_at_grows_and_shrinks() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        assert!(p.insert_at(0, b"aaaa").unwrap());
        assert!(p.insert_at(1, b"bbbb").unwrap());
        assert!(p.replace_at(0, b"xy").unwrap());
        assert_eq!(p.get(0), Some(&b"xy"[..]));
        assert!(p.replace_at(0, b"longer-than-before").unwrap());
        assert_eq!(p.get(0), Some(&b"longer-than-before"[..]));
        assert_eq!(p.get(1), Some(&b"bbbb"[..]));
    }

    #[test]
    fn validate_accepts_valid_and_rejects_garbage() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        p.insert(b"fine").unwrap().unwrap();
        assert!(p.validate().is_ok());

        // Garbage slot count: directory would overflow the page.
        let mut buf = fresh();
        buf[0..2].copy_from_slice(&0xFFF0u16.to_le_bytes());
        let p = SlottedPage::attach(&mut buf);
        assert!(p.validate().is_err());
        // Reads of out-of-bounds directory entries are guarded, not panics.
        assert_eq!(p.get(5000), None);
        let _ = p.live_count();

        // Record pointing outside the page.
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        p.insert(b"x").unwrap().unwrap();
        let heap = u16::from_le_bytes([buf[2], buf[3]]);
        buf[4..6].copy_from_slice(&(PAGE_SIZE as u16 - 1).to_le_bytes());
        buf[6..8].copy_from_slice(&100u16.to_le_bytes());
        let p = SlottedPage::attach(&mut buf);
        assert!(p.validate().is_err(), "heap_start {heap}");
        assert_eq!(p.get(0), None);
    }

    #[test]
    fn iter_skips_dead() {
        let mut buf = fresh();
        let mut p = SlottedPage::format(&mut buf);
        let a = p.insert(b"a").unwrap().unwrap();
        let _ = p.insert(b"b").unwrap().unwrap();
        p.delete(a);
        let recs: Vec<_> = p.iter().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(recs, vec![b"b".to_vec()]);
    }
}
