//! Storage-layer errors.

use std::fmt;
use std::io;

/// Errors from the storage substrate.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying file I/O failure.
    Io(io::Error),
    /// A record larger than a page's usable space.
    RecordTooLarge { size: usize, max: usize },
    /// A record id that does not name a live record.
    BadRecordId,
    /// A page id beyond the end of its file.
    BadPageId,
    /// An unknown file id (never created or already dropped).
    BadFileId,
    /// The write-ahead log is corrupt (torn record, bad checksum).
    CorruptLog(String),
    /// A catalog/format violation.
    Corrupt(String),
    /// A transaction lost a concurrency race (write-write conflict,
    /// lock wait timeout, or wound by an older transaction). The
    /// transaction was or must be aborted; the operation is safe to
    /// retry in a fresh transaction.
    TxnConflict(String),
    /// A transaction id that is not currently active (never begun,
    /// already committed, or already aborted).
    UnknownTxn(u64),
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds page capacity {max}")
            }
            StorageError::BadRecordId => f.write_str("dangling record id"),
            StorageError::BadPageId => f.write_str("page id out of range"),
            StorageError::BadFileId => f.write_str("unknown file id"),
            StorageError::CorruptLog(m) => write!(f, "corrupt write-ahead log: {m}"),
            StorageError::Corrupt(m) => write!(f, "corrupt storage: {m}"),
            StorageError::TxnConflict(m) => write!(f, "transaction conflict (retryable): {m}"),
            StorageError::UnknownTxn(id) => write!(f, "unknown transaction id {id}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> StorageError {
        StorageError::Io(e)
    }
}
