//! Storage integrity checking.
//!
//! [`check_server`] walks every file in a server's catalog and runs the
//! structural check appropriate to its format: files whose page 0 carries
//! the B+-tree magic get the full tree walk ([`crate::BTree::check`]),
//! everything else is checked page-by-page as a heap file
//! ([`crate::HeapFile::check`]). The result is a [`CheckReport`] listing
//! every violation found — an empty report after crash recovery is the
//! oracle the `coral-sim` crash matrix asserts, and the `:check` REPL
//! command prints the same report for operators.
//!
//! Checks are read-only. I/O errors propagate as `Err`; a *violation* is
//! a property of the bytes on disk, reported in the `problems` list.

use crate::btree::BTree;
use crate::error::StorageResult;
use crate::file::PageId;
use crate::heap::HeapFile;
use crate::server::StorageServer;

const BTREE_MAGIC: &[u8; 8] = b"CORALBT1";

/// Outcome of a storage integrity check.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Files examined, with the format each was checked as.
    pub checked: Vec<(String, FileKind)>,
    /// Violations found, each prefixed with the file name.
    pub problems: Vec<String>,
}

/// How a catalog file was classified for checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Page 0 carries the B+-tree magic.
    BTree,
    /// Checked as slotted heap pages.
    Heap,
    /// Zero pages allocated; nothing to check.
    Empty,
}

impl CheckReport {
    /// True iff no violations were found.
    pub fn is_clean(&self) -> bool {
        self.problems.is_empty()
    }

    /// Human-readable rendering (the `:check` command's output).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, kind) in &self.checked {
            let kind = match kind {
                FileKind::BTree => "btree",
                FileKind::Heap => "heap",
                FileKind::Empty => "empty",
            };
            out.push_str(&format!("checked {name} ({kind})\n"));
        }
        if self.is_clean() {
            out.push_str(&format!("ok: {} files, no problems\n", self.checked.len()));
        } else {
            for p in &self.problems {
                out.push_str(&format!("PROBLEM: {p}\n"));
            }
            out.push_str(&format!(
                "FAILED: {} problem(s) in {} files\n",
                self.problems.len(),
                self.checked.len()
            ));
        }
        out
    }
}

/// Check every file in the server's catalog. See the module docs.
pub fn check_server(server: &StorageServer) -> StorageResult<CheckReport> {
    let mut report = CheckReport::default();
    for name in server.list_files() {
        let fid = server.file(&name)?;
        let pool = server.pool();
        if pool.num_pages(fid)? == 0 {
            report.checked.push((name, FileKind::Empty));
            continue;
        }
        let is_btree = pool.with_page(fid, PageId(0), |d| &d[0..8] == BTREE_MAGIC)?;
        let problems = if is_btree {
            report.checked.push((name.clone(), FileKind::BTree));
            BTree::open(std::sync::Arc::clone(pool), fid)?.check()?
        } else {
            report.checked.push((name.clone(), FileKind::Heap));
            HeapFile::new(std::sync::Arc::clone(pool), fid).check()?
        };
        report
            .problems
            .extend(problems.into_iter().map(|p| format!("{name}: {p}")));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn fresh_dir(name: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("coral-check-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn clean_server_checks_clean() {
        let dir = fresh_dir("clean");
        let srv = StorageServer::open(&dir, 32).unwrap();
        let heap = srv.heap("r.data").unwrap();
        for i in 0..300u32 {
            heap.insert(format!("rec{i}").as_bytes()).unwrap();
        }
        let tree = srv.btree("r.pk").unwrap();
        for i in 0..300u32 {
            tree.insert(format!("key{i:06}").as_bytes()).unwrap();
        }
        let report = check_server(&srv).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.checked.len(), 2);
        assert!(report
            .checked
            .iter()
            .any(|(n, k)| n == "r.pk" && *k == FileKind::BTree));
        assert!(report
            .checked
            .iter()
            .any(|(n, k)| n == "r.data" && *k == FileKind::Heap));
        assert!(report.render().contains("no problems"));
    }

    #[test]
    fn corrupted_btree_page_is_reported() {
        let dir = fresh_dir("corrupt");
        let srv = StorageServer::open(&dir, 32).unwrap();
        let tree = srv.btree("t.pk").unwrap();
        for i in 0..2000u32 {
            tree.insert(format!("key{i:06}").as_bytes()).unwrap();
        }
        // Smash an interior byte of page 2 (some node of the tree).
        let fid = tree.file_id();
        srv.pool()
            .with_page_mut(fid, PageId(2), |d| {
                d[0..64].fill(0xEE);
            })
            .unwrap();
        let report = check_server(&srv).unwrap();
        assert!(!report.is_clean());
        assert!(report.render().contains("PROBLEM"));
        assert!(report.problems.iter().all(|p| p.starts_with("t.pk")));
    }

    #[test]
    fn corrupted_heap_slot_directory_is_reported() {
        let dir = fresh_dir("heapbad");
        let srv = StorageServer::open(&dir, 32).unwrap();
        let heap = srv.heap("h.data").unwrap();
        for i in 0..50u32 {
            heap.insert(format!("rec{i}").as_bytes()).unwrap();
        }
        let fid = heap.file_id();
        srv.pool()
            .with_page_mut(fid, PageId(0), |d| {
                // Garbage slot count.
                d[0..2].copy_from_slice(&0xFFF0u16.to_le_bytes());
            })
            .unwrap();
        let report = check_server(&srv).unwrap();
        assert!(!report.is_clean());
        assert!(report.problems[0].contains("h.data"));
    }
}
