//! Heap files: unordered record storage.
//!
//! A [`HeapFile`] stores variable-length records in slotted pages and
//! addresses them by [`RecordId`] `(page, slot)`. Persistent CORAL
//! relations keep their tuples in a heap file and index them with B+-trees
//! (§3.2); a relation scan walks the heap page by page through the buffer
//! pool — each `get-next-tuple` request that crosses a page boundary
//! becomes a page-level I/O request, exactly as §2 describes.

use crate::buffer::{BufferPool, SnapshotGuard};
use crate::error::{StorageError, StorageResult};
use crate::file::{FileId, PageId};
use crate::page::{SlotId, SlottedPage};
use crate::tx::View;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Address of a record in a heap file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct RecordId {
    /// The page holding the record.
    pub page: PageId,
    /// The slot within the page.
    pub slot: SlotId,
}

/// An unordered file of records over the buffer pool.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    fid: FileId,
    /// Insertion hint: the page most recently found to have space.
    hint: AtomicU64,
    /// The MVCC view every access goes through (`Live` by default; the
    /// relation layer points it at a transaction or a snapshot).
    view: Mutex<View>,
}

impl HeapFile {
    /// Wrap file `fid` (already registered with `pool`) as a heap file.
    pub fn new(pool: Arc<BufferPool>, fid: FileId) -> HeapFile {
        HeapFile {
            pool,
            fid,
            hint: AtomicU64::new(0),
            view: Mutex::new(View::Live),
        }
    }

    /// The underlying file id.
    pub fn file_id(&self) -> FileId {
        self.fid
    }

    /// The view subsequent accesses use.
    pub fn view(&self) -> View {
        *self.view.lock().unwrap()
    }

    /// Route subsequent accesses through `view`.
    pub fn set_view(&self, view: View) {
        *self.view.lock().unwrap() = view;
    }

    /// Attach this handle to a transaction (`None` = back to `Live`).
    pub fn set_txn(&self, txn: Option<u64>) {
        self.set_view(txn.map_or(View::Live, View::Txn));
    }

    /// Number of pages.
    pub fn num_pages(&self) -> StorageResult<u64> {
        self.pool.num_pages(self.fid)
    }

    /// Insert a record, returning its id.
    pub fn insert(&self, rec: &[u8]) -> StorageResult<RecordId> {
        let pages = self.pool.num_pages(self.fid)?;
        let hint = self
            .hint
            .load(Ordering::Relaxed)
            .min(pages.saturating_sub(1));
        // Try the hint page, then the last page, then allocate.
        let mut candidates = vec![];
        if pages > 0 {
            candidates.push(PageId(hint));
            if hint != pages - 1 {
                candidates.push(PageId(pages - 1));
            }
        }
        let view = self.view();
        for pid in candidates {
            let slot = self.pool.with_page_mut_view(self.fid, pid, view, |data| {
                SlottedPage::attach(data).insert(rec)
            })??;
            if let Some(slot) = slot {
                self.hint.store(pid.0, Ordering::Relaxed);
                return Ok(RecordId { page: pid, slot });
            }
        }
        let pid = self.pool.allocate_page(self.fid)?;
        let slot = self.pool.with_page_mut_view(self.fid, pid, view, |data| {
            SlottedPage::format(data).insert(rec)
        })??;
        match slot {
            Some(slot) => {
                self.hint.store(pid.0, Ordering::Relaxed);
                Ok(RecordId { page: pid, slot })
            }
            None => Err(StorageError::RecordTooLarge {
                size: rec.len(),
                max: crate::page::MAX_RECORD,
            }),
        }
    }

    /// Read a record by id.
    pub fn get(&self, rid: RecordId) -> StorageResult<Vec<u8>> {
        self.pool
            .with_page_view(self.fid, rid.page, self.view(), |data| {
                let mut copy = data.to_vec();
                let page = SlottedPage::attach(&mut copy);
                page.get(rid.slot).map(|r| r.to_vec())
            })?
            .ok_or(StorageError::BadRecordId)
    }

    /// Delete a record by id.
    pub fn delete(&self, rid: RecordId) -> StorageResult<()> {
        let ok = self
            .pool
            .with_page_mut_view(self.fid, rid.page, self.view(), |data| {
                SlottedPage::attach(data).delete(rid.slot)
            })?;
        if ok {
            Ok(())
        } else {
            Err(StorageError::BadRecordId)
        }
    }

    /// Structural integrity check: every page's slot directory and record
    /// extents must validate (see [`SlottedPage::validate`]). Read-only;
    /// returns the violations (empty = clean).
    pub fn check(&self) -> StorageResult<Vec<String>> {
        let mut problems = Vec::new();
        for pid in 0..self.pool.num_pages(self.fid)? {
            let res = self
                .pool
                .with_page_view(self.fid, PageId(pid), self.view(), |data| {
                    let mut copy = data.to_vec();
                    SlottedPage::attach(&mut copy).validate().err()
                })?;
            if let Some(err) = res {
                problems.push(format!("heap page {pid}: {err}"));
            }
        }
        Ok(problems)
    }

    /// Scan all records. The iterator copies one page's records at a time
    /// out of the buffer pool, so the page is touched exactly once per
    /// pass (and re-reads after eviction show up in pool statistics).
    pub fn scan(&self) -> HeapScan {
        self.scan_with(self.view(), None)
    }

    /// Scan through an explicit view, optionally holding a snapshot pin
    /// alive for the iterator's lifetime.
    pub fn scan_with(&self, view: View, guard: Option<Arc<SnapshotGuard>>) -> HeapScan {
        HeapScan {
            pool: Arc::clone(&self.pool),
            fid: self.fid,
            view,
            _guard: guard,
            next_page: 0,
            buffered: Vec::new(),
            buf_pos: 0,
            failed: false,
        }
    }
}

/// Iterator over a heap file's records.
pub struct HeapScan {
    pool: Arc<BufferPool>,
    fid: FileId,
    view: View,
    /// Keeps the snapshot this scan reads through pinned.
    _guard: Option<Arc<SnapshotGuard>>,
    next_page: u64,
    buffered: Vec<(RecordId, Vec<u8>)>,
    buf_pos: usize,
    failed: bool,
}

impl Iterator for HeapScan {
    type Item = StorageResult<(RecordId, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        loop {
            if self.buf_pos < self.buffered.len() {
                let item = self.buffered[self.buf_pos].clone();
                self.buf_pos += 1;
                return Some(Ok(item));
            }
            let pages = match self.pool.num_pages(self.fid) {
                Ok(p) => p,
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            };
            if self.next_page >= pages {
                return None;
            }
            let pid = PageId(self.next_page);
            self.next_page += 1;
            let res = self.pool.with_page_view(self.fid, pid, self.view, |data| {
                let mut copy = data.to_vec();
                let page = SlottedPage::attach(&mut copy);
                page.iter()
                    .map(|(slot, rec)| (RecordId { page: pid, slot }, rec.to_vec()))
                    .collect::<Vec<_>>()
            });
            match res {
                Ok(recs) => {
                    self.buffered = recs;
                    self.buf_pos = 0;
                }
                Err(e) => {
                    self.failed = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::PageFile;
    use std::path::PathBuf;

    fn heap(name: &str, frames: usize) -> HeapFile {
        let d = std::env::temp_dir().join(format!("coral-heap-test-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        let p: PathBuf = d.join(name);
        let _ = std::fs::remove_file(&p);
        let pool = Arc::new(BufferPool::new(frames));
        let fid = FileId(0);
        pool.register_file(fid, PageFile::open(&p).unwrap());
        HeapFile::new(pool, fid)
    }

    #[test]
    fn insert_get_delete() {
        let h = heap("igd.heap", 4);
        let a = h.insert(b"alpha").unwrap();
        let b = h.insert(b"beta").unwrap();
        assert_eq!(h.get(a).unwrap(), b"alpha");
        assert_eq!(h.get(b).unwrap(), b"beta");
        h.delete(a).unwrap();
        assert!(matches!(h.get(a), Err(StorageError::BadRecordId)));
        assert!(matches!(h.delete(a), Err(StorageError::BadRecordId)));
        assert_eq!(h.get(b).unwrap(), b"beta");
    }

    #[test]
    fn spans_many_pages() {
        let h = heap("many.heap", 4);
        let rids: Vec<_> = (0..500u32)
            .map(|i| h.insert(format!("record-{i:05}").as_bytes()).unwrap())
            .collect();
        assert!(h.num_pages().unwrap() > 1);
        for (i, rid) in rids.iter().enumerate() {
            assert_eq!(h.get(*rid).unwrap(), format!("record-{i:05}").as_bytes());
        }
    }

    #[test]
    fn scan_sees_all_live_records() {
        let h = heap("scan.heap", 4);
        let rids: Vec<_> = (0..200u32)
            .map(|i| h.insert(format!("r{i}").as_bytes()).unwrap())
            .collect();
        for rid in rids.iter().step_by(3) {
            h.delete(*rid).unwrap();
        }
        let seen: Vec<Vec<u8>> = h.scan().map(|r| r.unwrap().1).collect();
        let expect: Vec<Vec<u8>> = (0..200u32)
            .filter(|i| i % 3 != 0)
            .map(|i| format!("r{i}").into_bytes())
            .collect();
        let mut seen_sorted = seen.clone();
        seen_sorted.sort();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort();
        assert_eq!(seen_sorted, expect_sorted);
    }

    #[test]
    fn scan_of_empty_heap_is_empty() {
        let h = heap("empty.heap", 2);
        assert_eq!(h.scan().count(), 0);
    }

    #[test]
    fn large_records_fill_pages() {
        let h = heap("large.heap", 4);
        let rec = vec![9u8; 1500];
        let rids: Vec<_> = (0..10).map(|_| h.insert(&rec).unwrap()).collect();
        // Two 1500-byte records per 4 KiB page.
        assert!(h.num_pages().unwrap() >= 5);
        for rid in rids {
            assert_eq!(h.get(rid).unwrap().len(), 1500);
        }
        let huge = vec![1u8; crate::page::MAX_RECORD + 1];
        assert!(matches!(
            h.insert(&huge),
            Err(StorageError::RecordTooLarge { .. })
        ));
    }

    #[test]
    fn deleted_space_reused_on_hint_page() {
        let h = heap("reuse.heap", 4);
        let rid = h.insert(&[1u8; 1000]).unwrap();
        h.delete(rid).unwrap();
        let rid2 = h.insert(&[2u8; 1000]).unwrap();
        assert_eq!(rid.page, rid2.page, "hint page space reused");
    }
}
